//! Hierarchical spans: intervals on the shared clock, tagged with the
//! stack layer that produced them.

use crate::counters::CounterSet;
use std::fmt;

/// The stack layer a span belongs to.
///
/// Layers map to Perfetto/Chrome-trace *processes* (`pid`), so a loaded
/// trace shows one lane group per layer: a serving request at the top,
/// the session and operator segments under it, and the per-group
/// kernel/DMA intervals of the simulator at the bottom — all on one
/// clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// The serving engine: requests, batches, admission, scaling.
    Serving,
    /// The runtime session wrapping one compiled program execution.
    Session,
    /// Per-operator segments synthesized by the attribution pass.
    Operator,
    /// Compiler phases (host time, on their own track).
    Compiler,
    /// The chip simulator: kernels, DMA, code loads, sync waits.
    Sim,
}

impl Layer {
    /// All layers, top of the stack first.
    pub const ALL: [Layer; 5] = [
        Layer::Serving,
        Layer::Session,
        Layer::Operator,
        Layer::Compiler,
        Layer::Sim,
    ];

    /// Stable process id used in trace exports.
    pub fn pid(self) -> u32 {
        match self {
            Layer::Serving => 1,
            Layer::Session => 2,
            Layer::Operator => 3,
            Layer::Compiler => 4,
            Layer::Sim => 5,
        }
    }

    /// Human-readable layer name (the Perfetto process name).
    pub fn name(self) -> &'static str {
        match self {
            Layer::Serving => "serving",
            Layer::Session => "session",
            Layer::Operator => "operator",
            Layer::Compiler => "compiler",
            Layer::Sim => "sim",
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What kind of work a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One serving request, arrival to completion.
    Request,
    /// One dispatched batch in service.
    Batch,
    /// One end-to-end program execution on the chip.
    Session,
    /// One operator's attributed wall-clock segment.
    Operator,
    /// One compiler phase.
    Compile,
    /// Kernel execution on a group's cores.
    Kernel,
    /// A DMA transfer.
    Dma,
    /// Kernel-code load stall (instruction-cache miss).
    CodeLoad,
    /// Synchronisation wait.
    SyncWait,
    /// An injected fault's effect window (or instant).
    Fault,
    /// An instantaneous event (shed, scale decision).
    Marker,
    /// A generative prefill step (prompt ingestion + first token).
    Prefill,
    /// A generative decode step (one token per running sequence).
    Decode,
}

impl SpanKind {
    /// Short category name used in trace exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Batch => "batch",
            SpanKind::Session => "session",
            SpanKind::Operator => "operator",
            SpanKind::Compile => "compile",
            SpanKind::Kernel => "kernel",
            SpanKind::Dma => "dma",
            SpanKind::CodeLoad => "code-load",
            SpanKind::SyncWait => "sync-wait",
            SpanKind::Fault => "fault",
            SpanKind::Marker => "marker",
            SpanKind::Prefill => "prefill",
            SpanKind::Decode => "decode",
        }
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded interval (or instant, for [`SpanKind::Marker`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Work kind.
    pub kind: SpanKind,
    /// Producing layer (the export process).
    pub layer: Layer,
    /// Track within the layer: the flat processing-group index for sim
    /// spans, the tenant index for serving spans (the export thread).
    pub track: u32,
    /// Human-readable label (kernel name, request id, phase name).
    pub label: String,
    /// Operator identity for attribution (the compiler's kernel id),
    /// when the span belongs to one operator.
    pub op: Option<u64>,
    /// Start on the shared clock, ns.
    pub start_ns: f64,
    /// End on the shared clock, ns.
    pub end_ns: f64,
    /// Core frequency over the interval, MHz (0 when not applicable).
    pub freq_mhz: u32,
    /// Counter deltas attributed to this span (empty when none).
    pub counters: CounterSet,
}

impl Span {
    /// Creates a span with no operator tag, frequency, or counters.
    pub fn new(
        kind: SpanKind,
        layer: Layer,
        track: u32,
        label: impl Into<String>,
        start_ns: f64,
        end_ns: f64,
    ) -> Self {
        Span {
            kind,
            layer,
            track,
            label: label.into(),
            op: None,
            start_ns,
            end_ns,
            freq_mhz: 0,
            counters: CounterSet::new(),
        }
    }

    /// An instantaneous marker at `at_ns`.
    pub fn marker(layer: Layer, track: u32, label: impl Into<String>, at_ns: f64) -> Self {
        Span::new(SpanKind::Marker, layer, track, label, at_ns, at_ns)
    }

    /// Tags the span with an operator id (builder-style).
    pub fn with_op(mut self, op: u64) -> Self {
        self.op = Some(op);
        self
    }

    /// Sets the interval's core frequency (builder-style).
    pub fn with_freq(mut self, freq_mhz: u32) -> Self {
        self.freq_mhz = freq_mhz;
        self
    }

    /// Attaches counter deltas (builder-style).
    pub fn with_counters(mut self, counters: CounterSet) -> Self {
        self.counters = counters;
        self
    }

    /// Interval length, ns.
    pub fn duration_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counter;

    #[test]
    fn builder_and_duration() {
        let mut cs = CounterSet::new();
        cs.add(Counter::Macs, 10.0);
        let s = Span::new(SpanKind::Kernel, Layer::Sim, 3, "k", 5.0, 15.0)
            .with_op(7)
            .with_freq(1400)
            .with_counters(cs);
        assert_eq!(s.duration_ns(), 10.0);
        assert_eq!(s.op, Some(7));
        assert_eq!(s.freq_mhz, 1400);
        assert_eq!(s.counters.get(Counter::Macs), 10.0);
    }

    #[test]
    fn layer_pids_are_distinct() {
        let mut pids: Vec<u32> = Layer::ALL.iter().map(|l| l.pid()).collect();
        pids.sort_unstable();
        pids.dedup();
        assert_eq!(pids.len(), Layer::ALL.len());
    }

    #[test]
    fn marker_is_zero_length() {
        let m = Span::marker(Layer::Serving, 0, "shed", 9.0);
        assert_eq!(m.duration_ns(), 0.0);
        assert_eq!(m.kind, SpanKind::Marker);
    }
}
