//! The typed counter registry.
//!
//! Every quantity the stack counts has one [`Counter`] identity with a
//! fixed name, unit, and help string — the registry is the closed enum
//! itself, so a counter cannot be misspelled at a call site and every
//! exporter renders the same metric names. [`CounterSet`] is a small
//! sorted map from counter to value used both for chip-wide snapshots
//! and for the per-span deltas the attribution pass consumes.

use std::fmt;

/// Unit of a counter's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless event count.
    Count,
    /// Simulated nanoseconds.
    Nanoseconds,
    /// Bytes.
    Bytes,
    /// Picojoules.
    Picojoules,
    /// MHz·ns frequency–time product (DVFS residency).
    MhzNs,
}

impl Unit {
    /// Suffix used in exported metric names.
    pub fn suffix(self) -> &'static str {
        match self {
            Unit::Count => "total",
            Unit::Nanoseconds => "ns",
            Unit::Bytes => "bytes",
            Unit::Picojoules => "pj",
            Unit::MhzNs => "mhz_ns",
        }
    }
}

/// Every counter the stack records.
///
/// The discriminant order is the storage and export order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    /// Kernel launches executed.
    KernelLaunches,
    /// Multiply-accumulate operations retired.
    Macs,
    /// Non-MAC vector ALU operations.
    VectorOps,
    /// SFU transcendental evaluations.
    SfuOps,
    /// DMA transfers executed.
    DmaTransfers,
    /// Bytes that crossed the interconnect.
    DmaWireBytes,
    /// DMA configuration time.
    DmaConfigNs,
    /// Instruction-cache hits.
    IcacheHits,
    /// Instruction-cache misses.
    IcacheMisses,
    /// Core time stalled on kernel-code loads.
    CodeLoadStallNs,
    /// Core time busy computing.
    ComputeBusyNs,
    /// Core time waiting on data (L2/L3).
    MemoryStallNs,
    /// Core time waiting on sync events.
    SyncWaitNs,
    /// LPME-inserted power-throttle stall time.
    PowerStallNs,
    /// Sync operations processed.
    SyncOps,
    /// Fixed kernel-dispatch overhead time.
    LaunchOverheadNs,
    /// Bytes moved through L2 on behalf of kernels.
    L2Bytes,
    /// Bytes moved over HBM (L3) on behalf of kernels.
    L3Bytes,
    /// Dynamic energy.
    DynamicEnergyPj,
    /// Static (leakage) energy.
    StaticEnergyPj,
    /// Frequency–time product (divide by active time for the mean DVFS
    /// point; the residency view of governor activity).
    FreqResidencyMhzNs,
    /// Time the track was active (denominator for residency).
    ActiveTimeNs,
    /// Compiled-session cache lookups answered without recompiling.
    SessionCacheHits,
    /// Compiled-session cache lookups that compiled a fresh program.
    SessionCacheMisses,
    /// Fault events injected by a fault plan (ECC, DMA, thermal, …).
    FaultsInjected,
    /// Stall time added by injected faults (scrubs, DMA slowdowns).
    FaultStallNs,
    /// Request/launch retries performed by recovery layers.
    FaultRetries,
    /// Resource-group remaps after permanent core failures.
    GroupRemaps,
    /// Routing cells assigned by the fleet's cross-chip router.
    FleetRoutedCells,
    /// Replica placements moved to surviving chips after a chip loss.
    FleetReplicaMoves,
    /// Whole chips lost to injected failures during a fleet run.
    FleetChipsLost,
    /// Prompt tokens processed by generative prefill steps.
    PrefillTokens,
    /// Output tokens emitted by generative decode steps.
    DecodeTokens,
    /// KV-cache pages allocated by the paged allocator.
    KvPagesAllocated,
    /// KV-cache bytes streamed from L3 because the decode working set
    /// exceeded the L2-resident page budget.
    KvSpillBytes,
    /// Running sequences preempted on KV-cache exhaustion.
    KvPreemptions,
    /// KV-page reservations refused because the pool was exhausted.
    KvExhaustions,
}

impl Counter {
    /// Every counter, in storage order.
    pub const ALL: [Counter; 37] = [
        Counter::KernelLaunches,
        Counter::Macs,
        Counter::VectorOps,
        Counter::SfuOps,
        Counter::DmaTransfers,
        Counter::DmaWireBytes,
        Counter::DmaConfigNs,
        Counter::IcacheHits,
        Counter::IcacheMisses,
        Counter::CodeLoadStallNs,
        Counter::ComputeBusyNs,
        Counter::MemoryStallNs,
        Counter::SyncWaitNs,
        Counter::PowerStallNs,
        Counter::SyncOps,
        Counter::LaunchOverheadNs,
        Counter::L2Bytes,
        Counter::L3Bytes,
        Counter::DynamicEnergyPj,
        Counter::StaticEnergyPj,
        Counter::FreqResidencyMhzNs,
        Counter::ActiveTimeNs,
        Counter::SessionCacheHits,
        Counter::SessionCacheMisses,
        Counter::FaultsInjected,
        Counter::FaultStallNs,
        Counter::FaultRetries,
        Counter::GroupRemaps,
        Counter::FleetRoutedCells,
        Counter::FleetReplicaMoves,
        Counter::FleetChipsLost,
        Counter::PrefillTokens,
        Counter::DecodeTokens,
        Counter::KvPagesAllocated,
        Counter::KvSpillBytes,
        Counter::KvPreemptions,
        Counter::KvExhaustions,
    ];

    /// Stable metric base name (snake_case, no unit suffix).
    pub fn base_name(self) -> &'static str {
        match self {
            Counter::KernelLaunches => "kernel_launches",
            Counter::Macs => "macs",
            Counter::VectorOps => "vector_ops",
            Counter::SfuOps => "sfu_ops",
            Counter::DmaTransfers => "dma_transfers",
            Counter::DmaWireBytes => "dma_wire",
            Counter::DmaConfigNs => "dma_config",
            Counter::IcacheHits => "icache_hits",
            Counter::IcacheMisses => "icache_misses",
            Counter::CodeLoadStallNs => "code_load_stall",
            Counter::ComputeBusyNs => "compute_busy",
            Counter::MemoryStallNs => "memory_stall",
            Counter::SyncWaitNs => "sync_wait",
            Counter::PowerStallNs => "power_stall",
            Counter::SyncOps => "sync_ops",
            Counter::LaunchOverheadNs => "launch_overhead",
            Counter::L2Bytes => "l2",
            Counter::L3Bytes => "l3",
            Counter::DynamicEnergyPj => "dynamic_energy",
            Counter::StaticEnergyPj => "static_energy",
            Counter::FreqResidencyMhzNs => "freq_residency",
            Counter::ActiveTimeNs => "active_time",
            Counter::SessionCacheHits => "session_cache_hits",
            Counter::SessionCacheMisses => "session_cache_misses",
            Counter::FaultsInjected => "faults_injected",
            Counter::FaultStallNs => "fault_stall",
            Counter::FaultRetries => "fault_retries",
            Counter::GroupRemaps => "group_remaps",
            Counter::FleetRoutedCells => "fleet_routed_cells",
            Counter::FleetReplicaMoves => "fleet_replica_moves",
            Counter::FleetChipsLost => "fleet_chips_lost",
            Counter::PrefillTokens => "prefill_tokens",
            Counter::DecodeTokens => "decode_tokens",
            Counter::KvPagesAllocated => "kv_pages_allocated",
            Counter::KvSpillBytes => "kv_spill",
            Counter::KvPreemptions => "kv_preemptions",
            Counter::KvExhaustions => "kv_exhaustions",
        }
    }

    /// The counter's unit.
    pub fn unit(self) -> Unit {
        match self {
            Counter::KernelLaunches
            | Counter::Macs
            | Counter::VectorOps
            | Counter::SfuOps
            | Counter::DmaTransfers
            | Counter::IcacheHits
            | Counter::IcacheMisses
            | Counter::SyncOps
            | Counter::SessionCacheHits
            | Counter::SessionCacheMisses
            | Counter::FaultsInjected
            | Counter::FaultRetries
            | Counter::GroupRemaps
            | Counter::FleetRoutedCells
            | Counter::FleetReplicaMoves
            | Counter::FleetChipsLost
            | Counter::PrefillTokens
            | Counter::DecodeTokens
            | Counter::KvPagesAllocated
            | Counter::KvPreemptions
            | Counter::KvExhaustions => Unit::Count,
            Counter::DmaConfigNs
            | Counter::FaultStallNs
            | Counter::CodeLoadStallNs
            | Counter::ComputeBusyNs
            | Counter::MemoryStallNs
            | Counter::SyncWaitNs
            | Counter::PowerStallNs
            | Counter::LaunchOverheadNs
            | Counter::ActiveTimeNs => Unit::Nanoseconds,
            Counter::DmaWireBytes | Counter::L2Bytes | Counter::L3Bytes | Counter::KvSpillBytes => {
                Unit::Bytes
            }
            Counter::DynamicEnergyPj | Counter::StaticEnergyPj => Unit::Picojoules,
            Counter::FreqResidencyMhzNs => Unit::MhzNs,
        }
    }

    /// Full exported metric name, `dtu_<base>_<unit-suffix>`.
    pub fn metric_name(self) -> String {
        format!("dtu_{}_{}", self.base_name(), self.unit().suffix())
    }

    /// One-line help string for the text exposition.
    pub fn help(self) -> &'static str {
        match self {
            Counter::KernelLaunches => "Kernel launches executed",
            Counter::Macs => "Multiply-accumulate operations retired",
            Counter::VectorOps => "Non-MAC vector ALU operations",
            Counter::SfuOps => "SFU transcendental evaluations",
            Counter::DmaTransfers => "DMA transfers executed",
            Counter::DmaWireBytes => "Bytes that crossed the interconnect",
            Counter::DmaConfigNs => "DMA configuration time",
            Counter::IcacheHits => "Instruction-cache hits",
            Counter::IcacheMisses => "Instruction-cache misses",
            Counter::CodeLoadStallNs => "Core time stalled on kernel-code loads",
            Counter::ComputeBusyNs => "Core time busy computing",
            Counter::MemoryStallNs => "Core time waiting on data",
            Counter::SyncWaitNs => "Core time waiting on sync events",
            Counter::PowerStallNs => "LPME-inserted power-throttle stalls",
            Counter::SyncOps => "Sync operations processed",
            Counter::LaunchOverheadNs => "Fixed kernel-dispatch overhead",
            Counter::L2Bytes => "Bytes moved through L2 for kernels",
            Counter::L3Bytes => "Bytes moved over HBM for kernels",
            Counter::DynamicEnergyPj => "Dynamic energy",
            Counter::StaticEnergyPj => "Static (leakage) energy",
            Counter::FreqResidencyMhzNs => "Frequency-time product (DVFS residency)",
            Counter::ActiveTimeNs => "Active time under the residency product",
            Counter::SessionCacheHits => "Compiled-session cache hits",
            Counter::SessionCacheMisses => "Compiled-session cache misses",
            Counter::FaultsInjected => "Fault events injected by a fault plan",
            Counter::FaultStallNs => "Stall time added by injected faults",
            Counter::FaultRetries => "Retries performed by recovery layers",
            Counter::GroupRemaps => "Resource-group remaps after core failures",
            Counter::FleetRoutedCells => "Routing cells assigned by the fleet router",
            Counter::FleetReplicaMoves => "Replica moves after fleet chip losses",
            Counter::FleetChipsLost => "Whole chips lost during a fleet run",
            Counter::PrefillTokens => "Prompt tokens processed by prefill steps",
            Counter::DecodeTokens => "Output tokens emitted by decode steps",
            Counter::KvPagesAllocated => "KV-cache pages allocated",
            Counter::KvSpillBytes => "KV-cache bytes streamed from L3 past the L2 budget",
            Counter::KvPreemptions => "Sequences preempted on KV-cache exhaustion",
            Counter::KvExhaustions => "KV-page reservations refused on pool exhaustion",
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.base_name())
    }
}

/// A small sorted counter → value map.
///
/// Empty sets allocate nothing, which is what spans carry when
/// telemetry has no deltas to attach.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CounterSet {
    entries: Vec<(Counter, f64)>,
}

impl CounterSet {
    /// An empty set (no allocation).
    pub fn new() -> Self {
        CounterSet::default()
    }

    /// Whether no counter has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct counters recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Adds `value` to `counter` (inserting it at its sorted position).
    /// Zero adds are dropped so empty deltas stay empty.
    pub fn add(&mut self, counter: Counter, value: f64) {
        if value == 0.0 {
            return;
        }
        match self.entries.binary_search_by_key(&counter, |e| e.0) {
            Ok(i) => self.entries[i].1 += value,
            Err(i) => self.entries.insert(i, (counter, value)),
        }
    }

    /// The recorded value of `counter` (0 when absent).
    pub fn get(&self, counter: Counter) -> f64 {
        match self.entries.binary_search_by_key(&counter, |e| e.0) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Merges another set into this one.
    pub fn merge(&mut self, other: &CounterSet) {
        for &(c, v) in &other.entries {
            self.add(c, v);
        }
    }

    /// The element-wise difference `self − earlier` (monotone counters
    /// snapshotted at two span boundaries yield the span's delta).
    pub fn delta(&self, earlier: &CounterSet) -> CounterSet {
        let mut out = self.clone();
        for &(c, v) in &earlier.entries {
            out.add(c, -v);
        }
        out.entries.retain(|&(_, v)| v != 0.0);
        out
    }

    /// Iterates `(counter, value)` pairs in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Renders the set as Prometheus-style text exposition. `labels`
    /// are attached to every sample, e.g. `&[("chip", "i20")]`.
    pub fn to_prometheus(&self, labels: &[(&str, &str)]) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let label_str = render_labels(labels);
        for (c, v) in self.iter() {
            let name = c.metric_name();
            let _ = writeln!(out, "# HELP {name} {}", c.help());
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name}{label_str} {v}");
        }
        out
    }

    /// Renders the *full registry* as Prometheus text exposition:
    /// every [`Counter`] gets its `# HELP`/`# TYPE` lines and a sample
    /// (0 when the counter was never touched). Scrapers therefore see
    /// a stable series set run-over-run, instead of metrics appearing
    /// only once their first event lands.
    pub fn to_prometheus_all(&self, labels: &[(&str, &str)]) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let label_str = render_labels(labels);
        for c in Counter::ALL {
            let name = c.metric_name();
            let _ = writeln!(out, "# HELP {name} {}", c.help());
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name}{label_str} {}", self.get(c));
        }
        out
    }
}

/// Renders a Prometheus label set (`{a="x",b="y"}`, empty when none).
pub(crate) fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", crate::json::escape(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// A full counter snapshot taken at a span boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// When the snapshot was taken, shared clock ns.
    pub at_ns: f64,
    /// What the snapshot covers (e.g. `chip`, `group 3`).
    pub label: String,
    /// The counter values.
    pub set: CounterSet,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_merge() {
        let mut a = CounterSet::new();
        assert!(a.is_empty());
        a.add(Counter::Macs, 5.0);
        a.add(Counter::Macs, 3.0);
        a.add(Counter::L3Bytes, 100.0);
        assert_eq!(a.get(Counter::Macs), 8.0);
        assert_eq!(a.get(Counter::SyncOps), 0.0);
        let mut b = CounterSet::new();
        b.add(Counter::Macs, 2.0);
        a.merge(&b);
        assert_eq!(a.get(Counter::Macs), 10.0);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn zero_adds_do_not_allocate_entries() {
        let mut a = CounterSet::new();
        a.add(Counter::Macs, 0.0);
        assert!(a.is_empty());
    }

    #[test]
    fn delta_between_snapshots() {
        let mut before = CounterSet::new();
        before.add(Counter::Macs, 100.0);
        before.add(Counter::IcacheHits, 4.0);
        let mut after = before.clone();
        after.add(Counter::Macs, 50.0);
        after.add(Counter::L2Bytes, 9.0);
        let d = after.delta(&before);
        assert_eq!(d.get(Counter::Macs), 50.0);
        assert_eq!(d.get(Counter::L2Bytes), 9.0);
        assert_eq!(d.get(Counter::IcacheHits), 0.0);
        assert_eq!(d.len(), 2, "unchanged counters drop out of the delta");
    }

    #[test]
    fn entries_stay_sorted() {
        let mut a = CounterSet::new();
        a.add(Counter::L3Bytes, 1.0);
        a.add(Counter::KernelLaunches, 1.0);
        a.add(Counter::Macs, 1.0);
        let order: Vec<Counter> = a.iter().map(|(c, _)| c).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
    }

    #[test]
    fn metric_names_are_unique_and_prefixed() {
        let mut names: Vec<String> = Counter::ALL.iter().map(|c| c.metric_name()).collect();
        assert!(names.iter().all(|n| n.starts_with("dtu_")));
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
    }

    /// Prometheus metric-name charset: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
    fn valid_metric_name(name: &str) -> bool {
        let mut chars = name.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    #[test]
    fn full_registry_exposition_conformance() {
        let mut set = CounterSet::new();
        set.add(Counter::Macs, 7.0);
        let text = set.to_prometheus_all(&[("chip", "i20")]);
        let mut help = 0usize;
        let mut typ = 0usize;
        let mut names = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                help += 1;
                let name = rest.split_whitespace().next().unwrap();
                assert!(valid_metric_name(name), "invalid metric name {name:?}");
                names.push(name.to_string());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                typ += 1;
                assert!(rest.ends_with(" counter"), "bad TYPE line: {line}");
            } else {
                // Sample line: name{labels} value
                let name = line.split('{').next().unwrap();
                assert!(valid_metric_name(name), "invalid sample name {name:?}");
            }
        }
        // Every counter in the registry is covered exactly once.
        assert_eq!(help, Counter::ALL.len());
        assert_eq!(typ, Counter::ALL.len());
        let mut deduped = names.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate metric names");
        // Touched counters carry their value, untouched ones render 0.
        assert!(text.contains("dtu_macs_total{chip=\"i20\"} 7"));
        assert!(text.contains("dtu_sync_ops_total{chip=\"i20\"} 0"));
        // The fleet counters are first-class registry members: each one
        // gets HELP/TYPE metadata and a (zero-default) sample.
        for name in [
            "dtu_fleet_routed_cells_total",
            "dtu_fleet_replica_moves_total",
            "dtu_fleet_chips_lost_total",
        ] {
            assert!(text.contains(&format!("# HELP {name} ")), "{name} HELP");
            assert!(
                text.contains(&format!("# TYPE {name} counter")),
                "{name} TYPE"
            );
            assert!(
                text.contains(&format!("{name}{{chip=\"i20\"}} 0")),
                "{name} sample"
            );
        }
    }

    #[test]
    fn fleet_counters_export_through_sparse_exposition() {
        let mut set = CounterSet::new();
        set.add(Counter::FleetRoutedCells, 320.0);
        set.add(Counter::FleetReplicaMoves, 2.0);
        set.add(Counter::FleetChipsLost, 1.0);
        let text = set.to_prometheus(&[]);
        assert!(text.contains(
            "# HELP dtu_fleet_routed_cells_total Routing cells assigned by the fleet router"
        ));
        assert!(text.contains("# TYPE dtu_fleet_routed_cells_total counter"));
        assert!(text.contains("dtu_fleet_routed_cells_total 320"));
        assert!(text.contains("dtu_fleet_replica_moves_total 2"));
        assert!(text.contains("dtu_fleet_chips_lost_total 1"));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut a = CounterSet::new();
        a.add(Counter::Macs, 42.0);
        let text = a.to_prometheus(&[("chip", "i20")]);
        assert!(text.contains("# HELP dtu_macs_total"));
        assert!(text.contains("# TYPE dtu_macs_total counter"));
        assert!(text.contains("dtu_macs_total{chip=\"i20\"} 42"));
    }
}
