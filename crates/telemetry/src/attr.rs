//! Per-operator bottleneck attribution.
//!
//! Takes the raw span stream of one chip run and answers "where did the
//! latency go, operator by operator, and why". Attribution is by
//! **wall-clock segments**: the timeline is cut at the first activity
//! of each operator (the compiler emits barriers after every fused
//! step, so operators execute as contiguous phases), and each span's
//! counter deltas are folded into the segment containing its start.
//! Segment latencies therefore sum *exactly* to the end-to-end latency
//! — nothing is double-counted and nothing is dropped.

use crate::counters::{Counter, CounterSet};
use crate::json::{array, JsonObject};
use crate::span::{Layer, Span, SpanKind};

/// The peak capabilities attribution measures operators against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpec {
    /// Peak MAC throughput, in the same MAC unit the [`Counter::Macs`]
    /// counter uses, per nanosecond (callers fold any datatype ops
    /// multiplier in before constructing the spec).
    pub peak_macs_per_ns: f64,
    /// Peak HBM (L3) bandwidth, bytes per nanosecond.
    pub l3_bytes_per_ns: f64,
    /// Processing groups participating in the run.
    pub groups: u32,
}

impl MachineSpec {
    /// Machine balance: MACs per HBM byte at which an operator moves
    /// from bandwidth-bound to compute-bound on the roofline.
    pub fn balance(&self) -> f64 {
        if self.l3_bytes_per_ns > 0.0 {
            self.peak_macs_per_ns / self.l3_bytes_per_ns
        } else {
            f64::INFINITY
        }
    }
}

/// Roofline-style classification of what limits an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Dominated by sync waits between groups/engines.
    Sync,
    /// Dominated by kernel-dispatch and code-load overhead (many tiny
    /// launches).
    Launch,
    /// Dominated by LPME power-throttle stalls.
    Power,
    /// Arithmetic intensity below machine balance: HBM-bandwidth-bound.
    Bandwidth,
    /// Arithmetic intensity at or above machine balance: compute-bound.
    Compute,
    /// No accounted core time (e.g. a pure-staging segment).
    Idle,
}

impl Bottleneck {
    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Bottleneck::Sync => "sync",
            Bottleneck::Launch => "launch",
            Bottleneck::Power => "power",
            Bottleneck::Bandwidth => "bandwidth",
            Bottleneck::Compute => "compute",
            Bottleneck::Idle => "idle",
        }
    }
}

/// Fraction of accounted time above which sync waits classify the
/// operator as sync-bound.
pub const SYNC_BOUND_FRACTION: f64 = 0.4;
/// Fraction of accounted time above which launch + code-load overhead
/// classifies the operator as launch-bound.
pub const LAUNCH_BOUND_FRACTION: f64 = 0.3;
/// Fraction of accounted time above which power stalls classify the
/// operator as power-bound.
pub const POWER_BOUND_FRACTION: f64 = 0.25;

/// One operator's attributed segment and everything measured in it.
#[derive(Debug, Clone, PartialEq)]
pub struct OpRecord {
    /// The compiler's operator (kernel) id; `None` for the synthetic
    /// staging prologue.
    pub op: Option<u64>,
    /// Operator name (fused mnemonics, e.g. `conv2d+relu`).
    pub name: String,
    /// Segment start on the shared clock, ns.
    pub start_ns: f64,
    /// Segment end on the shared clock, ns.
    pub end_ns: f64,
    /// Counter deltas folded into this segment.
    pub counters: CounterSet,
}

impl OpRecord {
    /// Attributed wall-clock latency, ns.
    pub fn latency_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }

    /// MACs retired in the segment.
    pub fn macs(&self) -> f64 {
        self.counters.get(Counter::Macs)
    }

    /// HBM bytes moved for the segment's kernels plus DMA wire bytes.
    pub fn hbm_bytes(&self) -> f64 {
        self.counters.get(Counter::L3Bytes) + self.counters.get(Counter::DmaWireBytes)
    }

    /// Arithmetic intensity: MACs per HBM byte. Infinite when the
    /// segment touched no HBM but did compute.
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.hbm_bytes();
        if bytes > 0.0 {
            self.macs() / bytes
        } else if self.macs() > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    }

    /// Achieved fraction of the machine's peak MAC throughput over the
    /// segment.
    pub fn mac_utilization(&self, machine: &MachineSpec) -> f64 {
        let denom = machine.peak_macs_per_ns * self.latency_ns();
        if denom > 0.0 {
            self.macs() / denom
        } else {
            0.0
        }
    }

    /// Instruction-cache hit rate across the segment's launches (1.0
    /// when the segment launched nothing).
    pub fn icache_hit_rate(&self) -> f64 {
        let hits = self.counters.get(Counter::IcacheHits);
        let total = hits + self.counters.get(Counter::IcacheMisses);
        if total > 0.0 {
            hits / total
        } else {
            1.0
        }
    }

    /// Accounted core time: busy + every stall category + dispatch
    /// overhead, ns (summed over cores, so it can exceed latency).
    pub fn accounted_ns(&self) -> f64 {
        self.counters.get(Counter::ComputeBusyNs)
            + self.counters.get(Counter::MemoryStallNs)
            + self.counters.get(Counter::SyncWaitNs)
            + self.counters.get(Counter::CodeLoadStallNs)
            + self.counters.get(Counter::PowerStallNs)
            + self.counters.get(Counter::LaunchOverheadNs)
    }

    /// Stall breakdown as fractions of accounted time, in the order
    /// `[compute, memory, sync, code-load, power, launch]`. All zeros
    /// when nothing was accounted.
    pub fn stall_fractions(&self) -> [f64; 6] {
        let total = self.accounted_ns();
        if total <= 0.0 {
            return [0.0; 6];
        }
        [
            self.counters.get(Counter::ComputeBusyNs) / total,
            self.counters.get(Counter::MemoryStallNs) / total,
            self.counters.get(Counter::SyncWaitNs) / total,
            self.counters.get(Counter::CodeLoadStallNs) / total,
            self.counters.get(Counter::PowerStallNs) / total,
            self.counters.get(Counter::LaunchOverheadNs) / total,
        ]
    }

    /// Classifies what limits this operator. Checked in order: sync,
    /// launch, power (each against its fraction threshold), then the
    /// roofline test of arithmetic intensity against machine balance.
    pub fn bottleneck(&self, machine: &MachineSpec) -> Bottleneck {
        let total = self.accounted_ns();
        if total <= 0.0 {
            return Bottleneck::Idle;
        }
        let [_, _, sync, code, power, launch] = self.stall_fractions();
        if sync > SYNC_BOUND_FRACTION {
            Bottleneck::Sync
        } else if code + launch > LAUNCH_BOUND_FRACTION {
            Bottleneck::Launch
        } else if power > POWER_BOUND_FRACTION {
            Bottleneck::Power
        } else if self.arithmetic_intensity() < machine.balance() {
            Bottleneck::Bandwidth
        } else {
            Bottleneck::Compute
        }
    }
}

/// Fault-degradation totals for one run, summed across all operator
/// segments (see the `dtu-faults` crate for the injection side).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Degradation {
    /// Fault events injected over the run.
    pub faults_injected: f64,
    /// Stall time the injected faults added, ns.
    pub fault_stall_ns: f64,
    /// Retries performed by recovery layers.
    pub fault_retries: f64,
    /// Resource-group remaps after permanent core failures.
    pub group_remaps: f64,
}

impl Degradation {
    /// True when the run saw no fault activity at all.
    pub fn is_zero(&self) -> bool {
        self.faults_injected == 0.0
            && self.fault_stall_ns == 0.0
            && self.fault_retries == 0.0
            && self.group_remaps == 0.0
    }

    /// Fault stall as a fraction of the given end-to-end latency.
    pub fn stall_fraction(&self, total_ns: f64) -> f64 {
        if total_ns > 0.0 {
            self.fault_stall_ns / total_ns
        } else {
            0.0
        }
    }
}

/// The per-operator attribution report for one chip run.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionReport {
    /// Operator segments in timeline order (a `(staging)` prologue
    /// first when the run spent time before the first operator).
    pub ops: Vec<OpRecord>,
    /// End-to-end latency of the run, ns.
    pub total_ns: f64,
    /// The machine the operators are measured against.
    pub machine: MachineSpec,
}

impl AttributionReport {
    /// Builds the report from a recorded span stream.
    ///
    /// Only `Layer::Sim` spans participate. Kernel/code-load spans
    /// tagged with an operator id define each operator's first
    /// activity; the timeline is cut at those points into segments
    /// that tile `[0, total_ns]`, and every sim span's counters are
    /// folded into the segment containing its start.
    pub fn from_spans(spans: &[Span], total_ns: f64, machine: MachineSpec) -> Self {
        // First activity and name per operator id.
        let mut first: Vec<(u64, f64, String)> = Vec::new();
        for s in spans {
            if s.layer != Layer::Sim {
                continue;
            }
            let (Some(op), SpanKind::Kernel | SpanKind::CodeLoad) = (s.op, s.kind) else {
                continue;
            };
            match first.iter_mut().find(|(id, _, _)| *id == op) {
                Some(entry) => {
                    if s.start_ns < entry.1 {
                        entry.1 = s.start_ns;
                        if s.kind == SpanKind::Kernel {
                            entry.2 = s.label.clone();
                        }
                    } else if entry.2.is_empty() && s.kind == SpanKind::Kernel {
                        entry.2 = s.label.clone();
                    }
                }
                None => {
                    let name = if s.kind == SpanKind::Kernel {
                        s.label.clone()
                    } else {
                        String::new()
                    };
                    first.push((op, s.start_ns, name));
                }
            }
        }
        first.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));

        let mut ops: Vec<OpRecord> = Vec::new();
        if let Some(&(_, first_start, _)) = first.first() {
            if first_start > 0.0 {
                ops.push(OpRecord {
                    op: None,
                    name: "(staging)".to_string(),
                    start_ns: 0.0,
                    end_ns: first_start,
                    counters: CounterSet::new(),
                });
            }
        }
        for (i, (op, start, name)) in first.iter().enumerate() {
            let end = first.get(i + 1).map(|n| n.1).unwrap_or(total_ns);
            ops.push(OpRecord {
                op: Some(*op),
                name: if name.is_empty() {
                    format!("op{op}")
                } else {
                    name.clone()
                },
                start_ns: *start,
                end_ns: end.max(*start),
                counters: CounterSet::new(),
            });
        }
        if ops.is_empty() && total_ns > 0.0 {
            ops.push(OpRecord {
                op: None,
                name: "(staging)".to_string(),
                start_ns: 0.0,
                end_ns: total_ns,
                counters: CounterSet::new(),
            });
        }

        // Fold every sim span's counters into the segment containing
        // its start (segments are sorted and tile the timeline).
        for s in spans {
            if s.layer != Layer::Sim || s.counters.is_empty() {
                continue;
            }
            let seg = ops
                .iter_mut()
                .rev()
                .find(|o| s.start_ns >= o.start_ns)
                .or(None);
            if let Some(seg) = seg {
                seg.counters.merge(&s.counters);
            }
        }

        AttributionReport {
            ops,
            total_ns,
            machine,
        }
    }

    /// Sum of per-operator attributed latencies, ns. Equal to
    /// [`AttributionReport::total_ns`] by construction (the acceptance
    /// bound is 1%; segments give 0).
    pub fn attributed_ns(&self) -> f64 {
        self.ops.iter().map(|o| o.latency_ns()).sum()
    }

    /// Synthesises `Layer::Operator` spans for the operator segments,
    /// for merging into the exported trace.
    pub fn operator_spans(&self) -> Vec<Span> {
        self.ops
            .iter()
            .map(|o| {
                let mut s = Span::new(
                    SpanKind::Operator,
                    Layer::Operator,
                    0,
                    o.name.clone(),
                    o.start_ns,
                    o.end_ns,
                )
                .with_counters(o.counters.clone());
                if let Some(op) = o.op {
                    s = s.with_op(op);
                }
                s
            })
            .collect()
    }

    /// Fault-degradation totals summed over all operator segments.
    pub fn degradation(&self) -> Degradation {
        let mut d = Degradation::default();
        for o in &self.ops {
            d.faults_injected += o.counters.get(Counter::FaultsInjected);
            d.fault_stall_ns += o.counters.get(Counter::FaultStallNs);
            d.fault_retries += o.counters.get(Counter::FaultRetries);
            d.group_remaps += o.counters.get(Counter::GroupRemaps);
        }
        d
    }

    /// Renders the report as an aligned text table.
    pub fn to_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>6} {:>7} {:>8} {:>7} {:>30} {:<9}",
            "operator", "ns", "%", "mac%", "ai", "ic-hit", "busy/mem/sync/code/pwr/lnch", "bound"
        );
        for o in &self.ops {
            let pct = if self.total_ns > 0.0 {
                100.0 * o.latency_ns() / self.total_ns
            } else {
                0.0
            };
            let ai = o.arithmetic_intensity();
            let ai_str = if ai.is_infinite() {
                "inf".to_string()
            } else {
                format!("{ai:.2}")
            };
            let f = o.stall_fractions();
            let _ = writeln!(
                out,
                "{:<28} {:>10.0} {:>5.1}% {:>6.1}% {:>8} {:>6.1}% {:>30} {:<9}",
                o.name,
                o.latency_ns(),
                pct,
                100.0 * o.mac_utilization(&self.machine),
                ai_str,
                100.0 * o.icache_hit_rate(),
                format!(
                    "{:.0}/{:.0}/{:.0}/{:.0}/{:.0}/{:.0}",
                    100.0 * f[0],
                    100.0 * f[1],
                    100.0 * f[2],
                    100.0 * f[3],
                    100.0 * f[4],
                    100.0 * f[5]
                ),
                o.bottleneck(&self.machine).name()
            );
        }
        let _ = writeln!(
            out,
            "{:<28} {:>10.0} {:>5.1}%",
            "total",
            self.total_ns,
            if self.total_ns > 0.0 {
                100.0 * self.attributed_ns() / self.total_ns
            } else {
                0.0
            }
        );
        let d = self.degradation();
        if !d.is_zero() {
            let _ = writeln!(
                out,
                "degradation: {:.0} faults, {:.0} ns stall ({:.1}%), {:.0} retries, {:.0} remaps",
                d.faults_injected,
                d.fault_stall_ns,
                100.0 * d.stall_fraction(self.total_ns),
                d.fault_retries,
                d.group_remaps
            );
        }
        out
    }

    /// Renders the report as Prometheus-style text exposition, one
    /// sample set per operator (labelled `op="<name>"`).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# HELP dtu_op_latency_ns Attributed per-operator latency"
        );
        let _ = writeln!(out, "# TYPE dtu_op_latency_ns gauge");
        for o in &self.ops {
            let _ = writeln!(
                out,
                "dtu_op_latency_ns{} {}",
                crate::counters::render_labels(&[("op", &o.name)]),
                o.latency_ns()
            );
        }
        for o in &self.ops {
            out.push_str(&o.counters.to_prometheus(&[("op", &o.name)]));
        }
        out
    }

    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        let ops: Vec<String> = self
            .ops
            .iter()
            .map(|o| {
                let counters: Vec<String> = o
                    .counters
                    .iter()
                    .map(|(c, v)| {
                        JsonObject::new()
                            .string("name", c.base_name())
                            .num("v", v)
                            .build()
                    })
                    .collect();
                let f = o.stall_fractions();
                let mut obj = JsonObject::new().string("name", &o.name);
                if let Some(op) = o.op {
                    obj = obj.int("op", op as i64);
                }
                obj.num("start_ns", o.start_ns)
                    .num("latency_ns", o.latency_ns())
                    .num("mac_utilization", o.mac_utilization(&self.machine))
                    .num(
                        "arithmetic_intensity",
                        if o.arithmetic_intensity().is_finite() {
                            o.arithmetic_intensity()
                        } else {
                            -1.0
                        },
                    )
                    .num("icache_hit_rate", o.icache_hit_rate())
                    .raw(
                        "stall_fractions",
                        &array(
                            &f.iter()
                                .map(|v| crate::json::number(*v))
                                .collect::<Vec<_>>(),
                        ),
                    )
                    .string("bottleneck", o.bottleneck(&self.machine).name())
                    .raw("counters", &array(&counters))
                    .build()
            })
            .collect();
        let d = self.degradation();
        let degradation = JsonObject::new()
            .num("faults_injected", d.faults_injected)
            .num("fault_stall_ns", d.fault_stall_ns)
            .num("fault_retries", d.fault_retries)
            .num("group_remaps", d.group_remaps)
            .build();
        JsonObject::new()
            .num("total_ns", self.total_ns)
            .num("attributed_ns", self.attributed_ns())
            .num("machine_balance", self.machine.balance())
            .raw("degradation", &degradation)
            .raw("operators", &array(&ops))
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineSpec {
        MachineSpec {
            peak_macs_per_ns: 100.0,
            l3_bytes_per_ns: 10.0,
            groups: 4,
        }
    }

    fn kernel(op: u64, label: &str, start: f64, end: f64, cs: CounterSet) -> Span {
        Span::new(SpanKind::Kernel, Layer::Sim, 0, label, start, end)
            .with_op(op)
            .with_counters(cs)
    }

    fn cs(pairs: &[(Counter, f64)]) -> CounterSet {
        let mut s = CounterSet::new();
        for &(c, v) in pairs {
            s.add(c, v);
        }
        s
    }

    #[test]
    fn segments_tile_the_timeline() {
        let spans = vec![
            Span::new(SpanKind::Dma, Layer::Sim, 0, "stage", 0.0, 50.0)
                .with_counters(cs(&[(Counter::DmaWireBytes, 64.0)])),
            kernel(1, "conv", 50.0, 150.0, cs(&[(Counter::Macs, 1000.0)])),
            kernel(2, "fc", 150.0, 200.0, cs(&[(Counter::Macs, 10.0)])),
        ];
        let r = AttributionReport::from_spans(&spans, 220.0, machine());
        assert_eq!(r.ops.len(), 3);
        assert_eq!(r.ops[0].name, "(staging)");
        assert_eq!(r.ops[1].name, "conv");
        assert_eq!(r.ops[2].name, "fc");
        assert_eq!(r.ops[2].end_ns, 220.0, "last segment extends to total");
        assert_eq!(r.attributed_ns(), r.total_ns, "segments sum exactly");
        assert_eq!(r.ops[0].counters.get(Counter::DmaWireBytes), 64.0);
        assert_eq!(r.ops[1].macs(), 1000.0);
    }

    #[test]
    fn bottleneck_classification() {
        // Sync-dominated.
        let sync = OpRecord {
            op: Some(1),
            name: "s".into(),
            start_ns: 0.0,
            end_ns: 100.0,
            counters: cs(&[(Counter::SyncWaitNs, 80.0), (Counter::ComputeBusyNs, 20.0)]),
        };
        assert_eq!(sync.bottleneck(&machine()), Bottleneck::Sync);
        // High intensity, mostly busy → compute.
        let comp = OpRecord {
            op: Some(2),
            name: "c".into(),
            start_ns: 0.0,
            end_ns: 100.0,
            counters: cs(&[
                (Counter::ComputeBusyNs, 95.0),
                (Counter::MemoryStallNs, 5.0),
                (Counter::Macs, 10_000.0),
                (Counter::L3Bytes, 10.0),
            ]),
        };
        assert_eq!(comp.bottleneck(&machine()), Bottleneck::Compute);
        // Low intensity → bandwidth.
        let bw = OpRecord {
            counters: cs(&[
                (Counter::ComputeBusyNs, 50.0),
                (Counter::MemoryStallNs, 50.0),
                (Counter::Macs, 10.0),
                (Counter::L3Bytes, 100.0),
            ]),
            ..comp.clone()
        };
        assert_eq!(bw.bottleneck(&machine()), Bottleneck::Bandwidth);
        // Nothing accounted → idle.
        let idle = OpRecord {
            counters: CounterSet::new(),
            ..comp.clone()
        };
        assert_eq!(idle.bottleneck(&machine()), Bottleneck::Idle);
    }

    #[test]
    fn derived_metrics() {
        let o = OpRecord {
            op: Some(1),
            name: "k".into(),
            start_ns: 0.0,
            end_ns: 10.0,
            counters: cs(&[
                (Counter::Macs, 500.0),
                (Counter::L3Bytes, 50.0),
                (Counter::IcacheHits, 3.0),
                (Counter::IcacheMisses, 1.0),
            ]),
        };
        let m = machine();
        assert!((o.mac_utilization(&m) - 0.5).abs() < 1e-12);
        assert!((o.arithmetic_intensity() - 10.0).abs() < 1e-12);
        assert!((o.icache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_run_yields_single_staging_segment() {
        let r = AttributionReport::from_spans(&[], 100.0, machine());
        assert_eq!(r.ops.len(), 1);
        assert_eq!(r.ops[0].name, "(staging)");
        assert_eq!(r.attributed_ns(), 100.0);
    }

    #[test]
    fn reports_render() {
        let spans = vec![kernel(
            1,
            "conv",
            0.0,
            100.0,
            cs(&[(Counter::Macs, 100.0), (Counter::ComputeBusyNs, 90.0)]),
        )];
        let r = AttributionReport::from_spans(&spans, 100.0, machine());
        let table = r.to_table();
        assert!(table.contains("conv"));
        assert!(table.contains("bound"));
        let prom = r.to_prometheus();
        assert!(prom.contains("dtu_op_latency_ns{op=\"conv\"} 100"));
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"operators\""));
        let ospans = r.operator_spans();
        assert_eq!(ospans.len(), 1);
        assert_eq!(ospans[0].layer, Layer::Operator);
    }
}
