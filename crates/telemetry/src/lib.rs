//! `dtu-telemetry` — the single observability layer of the stack.
//!
//! The paper's software suite ships a profiler/debugger (Fig. 11) that
//! shows users where cycles go on the real DTU 2.0. This crate is that
//! tool for the reproduction, unifying what used to be three unrelated
//! fragments — the simulator's per-kernel timeline, the serving layer's
//! JSONL event log, and the chip-wide engine counters — behind one set
//! of primitives:
//!
//! * **Hierarchical spans** ([`Span`]) on a shared nanosecond clock
//!   ([`clock`]), tagged with the [`Layer`] that produced them (serving
//!   request → session → operator → sim-level kernel/DMA/sync), so a
//!   single Perfetto/Chrome trace shows a request descending all the
//!   way into per-group kernel intervals.
//! * **One [`Recorder`] trait** threaded through `serve::engine`,
//!   `dtu::Session`, `dtu-compiler`, and `dtu-sim::Chip`. The default
//!   [`NullRecorder`] reports `enabled() == false`, and every call site
//!   gates label formatting on that flag, so disabled telemetry costs a
//!   predictable branch and performs no per-event heap allocation.
//! * **A typed counter registry** ([`Counter`], [`CounterSet`]) that
//!   attaches per-launch deltas of the engine counters, energy, and
//!   DVFS activity to spans, exportable as Prometheus-style text
//!   exposition.
//! * **Per-operator attribution** ([`AttributionReport`]): wall-clock
//!   segment attribution whose operator latencies sum exactly to the
//!   end-to-end latency, with derived metrics (MAC utilisation,
//!   arithmetic intensity, icache hit rate, stall breakdown) and a
//!   roofline-style bottleneck classification per operator.
//!
//! # Example
//!
//! ```
//! use dtu_telemetry::{Layer, Recorder, Span, SpanKind, TraceBuffer};
//!
//! let mut buf = TraceBuffer::new();
//! if buf.enabled() {
//!     buf.record(Span::new(
//!         SpanKind::Kernel,
//!         Layer::Sim,
//!         0,
//!         "conv2d+relu",
//!         0.0,
//!         1000.0,
//!     ));
//! }
//! let json = buf.to_chrome_trace(true);
//! assert!(json.contains("conv2d+relu"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod chrome;
pub mod clock;
pub mod counters;
pub mod flight;
pub mod histogram;
pub mod json;
pub mod record;
pub mod slo;
pub mod span;
pub mod timeseries;

pub use attr::{AttributionReport, Bottleneck, Degradation, MachineSpec, OpRecord};
pub use counters::{Counter, CounterSet, CounterSnapshot, Unit};
pub use flight::{FlightDump, FlightRecorder};
pub use histogram::{Exemplar, HistogramWindow, LogHistogram, WindowedHistogram};
pub use record::{NullRecorder, Recorder, TraceBuffer};
pub use slo::{AlertEvent, AlertKind, SloSpec, SloTracker};
pub use span::{Layer, Span, SpanKind};
pub use timeseries::TimeSeries;
