//! Span flight recorder: a bounded "black box" of recent activity.
//!
//! The recorder keeps the last `capacity` spans in a ring — O(1) per
//! span, no growth, nothing exported — so it is cheap while the system
//! is healthy. The moment something goes wrong (a burn-rate alert
//! fires, a `FaultKind` lands), [`FlightRecorder::trigger`] freezes the
//! ring into a [`FlightDump`]: a self-contained snapshot of what the
//! system was doing *leading up to* the incident, exportable as a
//! Perfetto/Chrome trace via [`FlightDump::to_chrome_trace`].
//!
//! Dumps are bounded (first incidents win) so a fault storm cannot turn
//! the black box into an unbounded allocation.

use crate::chrome;
use crate::record::Recorder;
use crate::span::Span;
use std::collections::VecDeque;

/// Default ring capacity (spans).
pub const DEFAULT_CAPACITY: usize = 4096;
/// Maximum retained dumps; later triggers are counted but not stored.
pub const MAX_DUMPS: usize = 4;

/// One frozen snapshot of the ring.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Why the dump was taken (alert or fault label).
    pub reason: String,
    /// When the trigger landed, shared clock ns.
    pub at_ns: f64,
    /// The ring contents at trigger time, oldest first.
    pub spans: Vec<Span>,
}

impl FlightDump {
    /// Renders the dump as a Perfetto/Chrome trace JSON array.
    pub fn to_chrome_trace(&self, rich: bool) -> String {
        chrome::export(&self.spans, rich)
    }

    /// Whether any captured span's label contains `needle` — used to
    /// resolve an alert's exemplar span id against the dump.
    pub fn resolves_label(&self, needle: &str) -> bool {
        self.spans.iter().any(|s| s.label.contains(needle))
    }
}

/// Bounded ring of recent spans with on-trigger snapshots.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<Span>,
    dumps: Vec<FlightDump>,
    triggers: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Creates a recorder keeping at most `capacity` recent spans.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight ring capacity must be positive");
        FlightRecorder {
            capacity,
            ring: VecDeque::with_capacity(capacity.min(1024)),
            dumps: Vec::new(),
            triggers: 0,
        }
    }

    /// Appends a span, evicting the oldest when full.
    pub fn record(&mut self, span: Span) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(span);
    }

    /// Freezes the current ring into a dump. Dumps beyond
    /// [`MAX_DUMPS`] are counted but not stored (first incidents win).
    pub fn trigger(&mut self, reason: impl Into<String>, at_ns: f64) {
        self.triggers += 1;
        if self.dumps.len() >= MAX_DUMPS {
            return;
        }
        self.dumps.push(FlightDump {
            reason: reason.into(),
            at_ns,
            spans: self.ring.iter().cloned().collect(),
        });
    }

    /// Spans currently held in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Iterates the ring's spans, oldest first — the fleet aggregator
    /// uses this to absorb a per-chip ring into the fleet-time ring
    /// without waiting for a trigger.
    pub fn spans(&self) -> impl Iterator<Item = &Span> + '_ {
        self.ring.iter()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// All retained dumps, in trigger order.
    pub fn dumps(&self) -> &[FlightDump] {
        &self.dumps
    }

    /// The most recent retained dump.
    pub fn latest(&self) -> Option<&FlightDump> {
        self.dumps.last()
    }

    /// Total triggers seen, including those past the dump cap.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }
}

/// The flight recorder is itself a [`Recorder`], so any call site that
/// threads the trait (engine hooks, sessions) can feed the black box
/// directly.
impl Recorder for FlightRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, span: Span) {
        FlightRecorder::record(self, span);
    }

    fn snapshot(&mut self, _snapshot: crate::counters::CounterSnapshot) {
        // The black box keeps spans only; counter snapshots live in the
        // full TraceBuffer path.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Layer, SpanKind};

    fn span(i: usize) -> Span {
        Span::new(
            SpanKind::Request,
            Layer::Serving,
            0,
            format!("req {i}"),
            i as f64 * 10.0,
            i as f64 * 10.0 + 5.0,
        )
    }

    #[test]
    fn ring_is_bounded() {
        let mut fr = FlightRecorder::new(8);
        for i in 0..100 {
            fr.record(span(i));
        }
        assert_eq!(fr.len(), 8);
        fr.trigger("test", 1000.0);
        let d = fr.latest().unwrap();
        assert_eq!(d.spans.len(), 8);
        assert_eq!(d.spans[0].label, "req 92", "oldest retained span");
        assert!(d.resolves_label("req 99"));
        assert!(!d.resolves_label("req 0 "));
    }

    #[test]
    fn dumps_are_bounded_first_wins() {
        let mut fr = FlightRecorder::new(4);
        fr.record(span(1));
        for k in 0..10 {
            fr.trigger(format!("fault {k}"), k as f64);
        }
        assert_eq!(fr.dumps().len(), MAX_DUMPS);
        assert_eq!(fr.triggers(), 10);
        assert_eq!(fr.dumps()[0].reason, "fault 0");
    }

    #[test]
    fn dump_exports_chrome_trace() {
        let mut fr = FlightRecorder::new(4);
        fr.record(span(3));
        fr.trigger("alert", 50.0);
        let json = fr.latest().unwrap().to_chrome_trace(false);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("req 3"));
    }

    #[test]
    fn recorder_trait_feeds_ring() {
        let mut fr = FlightRecorder::new(4);
        assert!(Recorder::enabled(&fr));
        Recorder::record(&mut fr, span(7));
        assert_eq!(fr.len(), 1);
    }
}
