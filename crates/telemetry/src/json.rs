//! Minimal JSON emission helpers.
//!
//! The repo has no serde; before this crate each exporter hand-rolled
//! its own (subtly different) escaping. This module is the one place
//! strings get escaped and objects get assembled.

use std::fmt::Write;

/// Escapes a string for inclusion inside a JSON string literal
/// (without the surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` the way our JSON exporters want it: finite values
/// via the shortest round-trip `{}` form, non-finite values as 0 (JSON
/// has no NaN/Inf).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Incremental single-line JSON object builder.
#[derive(Debug, Default)]
pub struct JsonObject {
    body: String,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn key(&mut self, k: &str) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        let _ = write!(self.body, "\"{}\":", escape(k));
    }

    /// Adds a string field (escaped).
    pub fn string(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        let _ = write!(self.body, "\"{}\"", escape(v));
        self
    }

    /// Adds a numeric field.
    pub fn num(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        self.body.push_str(&number(v));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, k: &str, v: i64) -> Self {
        self.key(k);
        let _ = write!(self.body, "{v}");
        self
    }

    /// Adds a field whose value is pre-rendered JSON (verbatim).
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.body.push_str(v);
        self
    }

    /// Finishes the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Joins pre-rendered JSON values into a single-line array.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn object_builder() {
        let o = JsonObject::new()
            .string("name", "k\"x")
            .num("ts", 1.5)
            .int("pid", 3)
            .raw("args", "{}")
            .build();
        assert_eq!(o, "{\"name\":\"k\\\"x\",\"ts\":1.5,\"pid\":3,\"args\":{}}");
    }

    #[test]
    fn non_finite_numbers_degrade_to_zero() {
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
    }

    #[test]
    fn array_joins() {
        assert_eq!(array(&["1".into(), "2".into()]), "[1,2]");
    }
}
