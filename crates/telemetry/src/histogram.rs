//! Log-bucketed latency histogram (HDR-style) with mergeable windows
//! and exemplars.
//!
//! Buckets grow geometrically with ratio γ = 1.04 from a 1 µs floor;
//! a bucket's reported value is the geometric mid-point √(lo·hi), so
//! any sample is reported within √γ − 1 ≈ 1.98 % of its true value —
//! the "~2 % relative error" contract the cross-check test against
//! `serve::stats::percentile` asserts. Counts are held in a sorted map
//! so two histograms merge exactly (window → range quantiles) and the
//! iteration order is deterministic.
//!
//! [`WindowedHistogram`] slices the stream into fixed-width simulated-
//! time windows and carries one [`Exemplar`] per window — the span id
//! of the *slowest* sample — so a p99 spike in a dashboard row links
//! directly to the trace of the request that caused it.

use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Geometric bucket growth ratio.
const GAMMA: f64 = 1.04;
/// Lowest resolvable value; everything smaller lands in bucket 0.
const FLOOR: f64 = 1e-3;

/// A mergeable log-bucketed histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogHistogram {
    counts: BTreeMap<i32, u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    fn bucket_of(v: f64) -> i32 {
        if v <= FLOOR {
            return 0;
        }
        ((v / FLOOR).ln() / GAMMA.ln()).floor() as i32
    }

    /// The geometric mid-point of bucket `i`: √(lo·hi).
    fn representative(i: i32) -> f64 {
        FLOOR * GAMMA.powf(i as f64 + 0.5)
    }

    /// Records one sample. Non-finite or negative samples clamp to 0.
    pub fn record(&mut self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        *self.counts.entry(Self::bucket_of(v)).or_insert(0) += 1;
        if self.total == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.total += 1;
        self.sum += v;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Exact minimum recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges `other` into `self` (exact — bucket counts add).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.total == 0 {
            return;
        }
        for (&b, &c) in &other.counts {
            *self.counts.entry(b).or_insert(0) += c;
        }
        if self.total == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// Nearest-rank quantile, same rank convention as
    /// `serve::stats::percentile`: rank = round((n − 1)·q).
    ///
    /// The extreme ranks return the exact tracked min/max (so a
    /// single-sample histogram is exact at every quantile); interior
    /// ranks return the bucket mid-point, within ~2 % of the true
    /// sample. Empty histograms return 0.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.total - 1) as f64 * q).round() as u64;
        if rank == 0 {
            return self.min;
        }
        if rank == self.total - 1 {
            return self.max;
        }
        let mut seen = 0u64;
        for (&b, &c) in &self.counts {
            seen += c;
            if seen > rank {
                // Clamp the bucket mid-point into the observed range so
                // edge buckets never report outside [min, max].
                return Self::representative(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Number of occupied buckets (diagnostics).
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }
}

/// The span id of the slowest sample in a window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exemplar {
    /// Span identity (the serving request id).
    pub span_id: u64,
    /// The sample's value (latency, ms).
    pub value: f64,
    /// When the sample completed, shared clock ns.
    pub at_ns: f64,
}

/// One time window of a [`WindowedHistogram`].
#[derive(Debug, Clone)]
pub struct HistogramWindow {
    /// Window start on the shared clock, ns.
    pub start_ns: f64,
    /// Samples that completed inside the window.
    pub hist: LogHistogram,
    /// Slowest sample's exemplar, when any sample carried a span id.
    pub exemplar: Option<Exemplar>,
}

/// A bounded ring of per-window histograms with exemplars.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    window_ns: f64,
    cap: usize,
    /// Sparse `(window_index, window)` pairs, oldest first.
    windows: VecDeque<(u64, HistogramWindow)>,
}

impl WindowedHistogram {
    /// Creates a ring of at most `cap` windows, each `window_ns` wide.
    ///
    /// # Panics
    /// Panics if `window_ns` is not positive or `cap` is zero.
    pub fn new(window_ns: f64, cap: usize) -> Self {
        assert!(window_ns > 0.0, "window width must be positive");
        assert!(cap > 0, "ring capacity must be positive");
        WindowedHistogram {
            window_ns,
            cap,
            windows: VecDeque::new(),
        }
    }

    /// Window width, ns.
    pub fn window_ns(&self) -> f64 {
        self.window_ns
    }

    /// Records a sample completing at `t_ns`, optionally tagged with
    /// the span id that produced it (for exemplars).
    pub fn record(&mut self, t_ns: f64, value: f64, span_id: Option<u64>) {
        let idx = (t_ns.max(0.0) / self.window_ns) as u64;
        let needs_push = match self.windows.back() {
            Some(&(last, _)) => idx > last,
            None => true,
        };
        if needs_push {
            if self.windows.len() == self.cap {
                self.windows.pop_front();
            }
            self.windows.push_back((
                idx,
                HistogramWindow {
                    start_ns: idx as f64 * self.window_ns,
                    hist: LogHistogram::new(),
                    exemplar: None,
                },
            ));
        }
        // Find the target window (almost always the back).
        let pos = match self.windows.iter().rposition(|&(i, _)| i == idx) {
            Some(p) => p,
            None => return, // older than retained history
        };
        let w = &mut self.windows[pos].1;
        w.hist.record(value);
        if let Some(id) = span_id {
            let slower = match w.exemplar {
                Some(e) => value > e.value,
                None => true,
            };
            if slower {
                w.exemplar = Some(Exemplar {
                    span_id: id,
                    value,
                    at_ns: t_ns,
                });
            }
        }
    }

    /// Merges `other`'s windows into `self`, shifting every window by
    /// `offset_ns` on the shared clock.
    ///
    /// This is the fleet per-chip → per-tenant rollup path: bucket
    /// counts merge exactly, and each target window keeps the *slowest*
    /// exemplar of its contributors — so the merged histogram's
    /// exemplar still resolves to a real span id on the chip that
    /// recorded it (the exemplar's timestamp is shifted along with its
    /// window). Windows older than `self`'s retained history are
    /// dropped; out-of-order merges (chip B behind chip A) insert in
    /// window order.
    pub fn merge_offset(&mut self, other: &WindowedHistogram, offset_ns: f64) {
        for w in other.windows.iter().map(|(_, w)| w) {
            let t = (w.start_ns + offset_ns).max(0.0);
            let idx = (t / self.window_ns) as u64;
            let shifted_exemplar = w.exemplar.map(|e| Exemplar {
                span_id: e.span_id,
                value: e.value,
                at_ns: e.at_ns + offset_ns,
            });
            let pos = self.windows.partition_point(|&(i, _)| i < idx);
            if pos < self.windows.len() && self.windows[pos].0 == idx {
                let target = &mut self.windows[pos].1;
                target.hist.merge(&w.hist);
                if let Some(e) = shifted_exemplar {
                    let slower = match target.exemplar {
                        Some(b) => e.value > b.value,
                        None => true,
                    };
                    if slower {
                        target.exemplar = Some(e);
                    }
                }
            } else {
                let mut pos = pos;
                if self.windows.len() == self.cap {
                    if pos == 0 {
                        continue; // older than everything retained
                    }
                    self.windows.pop_front();
                    pos -= 1;
                }
                self.windows.insert(
                    pos,
                    (
                        idx,
                        HistogramWindow {
                            start_ns: idx as f64 * self.window_ns,
                            hist: w.hist.clone(),
                            exemplar: shifted_exemplar,
                        },
                    ),
                );
            }
        }
    }

    /// Merges every window whose start lies in `[now − span, now]` into
    /// one histogram (clamped to retained history).
    pub fn merged_over(&self, now_ns: f64, span_ns: f64) -> LogHistogram {
        let from = (now_ns - span_ns).max(0.0);
        let mut out = LogHistogram::new();
        for (_, w) in &self.windows {
            if w.start_ns >= from && w.start_ns <= now_ns {
                out.merge(&w.hist);
            }
        }
        out
    }

    /// Merges all retained windows.
    pub fn merged(&self) -> LogHistogram {
        let mut out = LogHistogram::new();
        for (_, w) in &self.windows {
            out.merge(&w.hist);
        }
        out
    }

    /// The slowest exemplar across windows starting in
    /// `[now − span, now]`.
    pub fn exemplar_over(&self, now_ns: f64, span_ns: f64) -> Option<Exemplar> {
        let from = (now_ns - span_ns).max(0.0);
        let mut best: Option<Exemplar> = None;
        for (_, w) in &self.windows {
            if w.start_ns >= from && w.start_ns <= now_ns {
                if let Some(e) = w.exemplar {
                    let better = match best {
                        Some(b) => e.value > b.value,
                        None => true,
                    };
                    if better {
                        best = Some(e);
                    }
                }
            }
        }
        best
    }

    /// Iterates retained windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &HistogramWindow> + '_ {
        self.windows.iter().map(|(_, w)| w)
    }

    /// Number of retained (non-empty) windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_sample() {
        let mut h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.count(), 0);
        h.record(7.25);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 7.25, "single sample is exact");
        }
        assert_eq!(h.mean(), 7.25);
    }

    #[test]
    fn relative_error_bound() {
        let mut h = LogHistogram::new();
        let mut samples: Vec<f64> = Vec::new();
        // A geometric sweep through five decades.
        let mut v = 0.01;
        while v < 1000.0 {
            h.record(v);
            samples.push(v);
            v *= 1.07;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = samples.len();
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
            let rank = ((n - 1) as f64 * q).round() as usize;
            let exact = samples[rank];
            let approx = h.quantile(q);
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel <= 0.02,
                "q={q}: exact {exact} approx {approx} rel {rel}"
            );
        }
    }

    #[test]
    fn merge_is_exact() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for i in 0..100 {
            let v = 1.0 + i as f64 * 0.37;
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn sub_floor_values_land_in_bucket_zero() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(1e-9);
        h.record(f64::NAN);
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets(), 1);
        assert!(h.quantile(0.5) <= h.max(), "mid-rank clamps into [min,max]");
    }

    #[test]
    fn windowed_exemplar_tracks_slowest() {
        let mut wh = WindowedHistogram::new(1e9, 8);
        wh.record(0.2e9, 5.0, Some(11));
        wh.record(0.4e9, 9.0, Some(12));
        wh.record(0.6e9, 7.0, Some(13));
        wh.record(1.2e9, 3.0, Some(14));
        let e = wh.exemplar_over(1.5e9, 2e9).unwrap();
        assert_eq!(e.span_id, 12);
        assert_eq!(e.value, 9.0);
        // Restricting to the second window picks its own exemplar.
        let e2 = wh.exemplar_over(1.5e9, 0.5e9).unwrap();
        assert_eq!(e2.span_id, 14);
    }

    #[test]
    fn windowed_merge_matches_flat() {
        let mut wh = WindowedHistogram::new(1e9, 64);
        let mut flat = LogHistogram::new();
        for i in 0..500 {
            let t = i as f64 * 2e7;
            let v = 1.0 + (i % 37) as f64;
            wh.record(t, v, None);
            flat.record(v);
        }
        assert_eq!(wh.merged(), flat);
        assert_eq!(
            wh.merged_over(1e10, 1e12).count(),
            flat.count(),
            "span larger than history covers everything"
        );
    }

    #[test]
    fn merge_offset_keeps_slowest_exemplar_and_exact_counts() {
        // Two chips record the same epoch on local clocks; the fleet
        // merges both at offset 4 s.
        let mut chip_a = WindowedHistogram::new(1e9, 8);
        chip_a.record(0.3e9, 6.0, Some(101));
        chip_a.record(0.6e9, 2.0, Some(102));
        let mut chip_b = WindowedHistogram::new(1e9, 8);
        chip_b.record(0.4e9, 9.0, Some(201));
        let mut fleet = WindowedHistogram::new(1e9, 8);
        fleet.merge_offset(&chip_a, 4e9);
        fleet.merge_offset(&chip_b, 4e9);
        assert_eq!(fleet.merged().count(), 3);
        let e = fleet.exemplar_over(4.9e9, 1e9).expect("exemplar survives");
        assert_eq!(e.span_id, 201, "slowest contributor wins the window");
        assert_eq!(e.value, 9.0);
        assert!(
            (e.at_ns - 4.4e9).abs() < 1.0,
            "timestamp shifted: {}",
            e.at_ns
        );
        // Out-of-order merge: an earlier epoch inserts before, exactly.
        let mut chip_c = WindowedHistogram::new(1e9, 8);
        chip_c.record(0.5e9, 3.0, Some(301));
        fleet.merge_offset(&chip_c, 1e9);
        assert_eq!(fleet.merged().count(), 4);
        assert_eq!(fleet.exemplar_over(1.9e9, 1e9).unwrap().span_id, 301);
    }

    #[test]
    fn windowed_ring_evicts() {
        let mut wh = WindowedHistogram::new(1e9, 2);
        wh.record(0.5e9, 1.0, None);
        wh.record(1.5e9, 2.0, None);
        wh.record(2.5e9, 3.0, None);
        assert_eq!(wh.len(), 2);
        assert_eq!(wh.merged().count(), 2);
        // A sample for an evicted window is dropped, not misfiled.
        wh.record(0.6e9, 9.0, None);
        assert_eq!(wh.merged().count(), 2);
    }
}
