//! Property tests for the percentile implementation: whatever the
//! sample, percentiles must be monotone in `p`, always an observed
//! value, and bracketed by the sample's extremes.

use dtu_serve::{percentile, LatencyStats};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #[test]
    fn percentile_is_monotone_in_p(
        sample in vec(0.0f64..1_000.0, 1..64),
        p_lo in 0.0f64..1.0,
        p_hi in 0.0f64..1.0
    ) {
        let mut sorted = sample;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let (lo, hi) = if p_lo <= p_hi { (p_lo, p_hi) } else { (p_hi, p_lo) };
        prop_assert!(percentile(&sorted, lo) <= percentile(&sorted, hi));
    }

    #[test]
    fn percentile_is_an_observed_value_within_range(
        sample in vec(0.0f64..1_000.0, 1..64),
        p in 0.0f64..1.0
    ) {
        let mut sorted = sample;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let v = percentile(&sorted, p);
        prop_assert!(sorted.contains(&v));
        prop_assert!(*sorted.first().expect("non-empty") <= v);
        prop_assert!(v <= *sorted.last().expect("non-empty"));
    }

    #[test]
    fn summary_percentiles_are_ordered(
        sample in vec(0.0f64..1_000.0, 1..64)
    ) {
        let mut s = sample;
        let stats = LatencyStats::from_latencies(&mut s);
        prop_assert!(stats.p50_ms <= stats.p95_ms);
        prop_assert!(stats.p95_ms <= stats.p99_ms);
        prop_assert!(stats.p99_ms <= stats.max_ms);
        prop_assert!(stats.mean_ms <= stats.max_ms);
    }
}
