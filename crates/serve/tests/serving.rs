//! Integration tests for the dtu-serve event engine: seeded
//! determinism, the closed-form M/D/1 cross-check, and the dynamic
//! batching throughput win the paper's serving story rests on.

use dtu_serve::{
    run_serving, AnalyticModel, ArrivalGen, ArrivalProcess, BatchPolicy, ScalePolicy, ServeConfig,
    SlaPolicy, TenantSpec,
};
use dtu_sim::ChipConfig;

/// A fully-loaded scenario: two models, bursty + Poisson tenants,
/// dynamic batching, shedding, and elastic scaling all enabled.
fn kitchen_sink(seed: u64) -> ServeConfig {
    ServeConfig {
        duration_ms: 1500.0,
        seed,
        record_requests: true,
        faults: Default::default(),
        retry: Default::default(),
        tenants: vec![
            TenantSpec {
                name: "vision".into(),
                model: 0,
                arrival: ArrivalProcess::Bursty {
                    base_qps: 300.0,
                    burst_qps: 2500.0,
                    mean_dwell_ms: 200.0,
                },
                batch: BatchPolicy::dynamic(8, 2.0),
                sla: SlaPolicy::new(60.0, 48),
                scale: ScalePolicy::elastic(6.0, 1.0, 3),
                cluster: Some(0),
                initial_groups: 1,
            },
            TenantSpec {
                name: "language".into(),
                model: 1,
                arrival: ArrivalProcess::Poisson { qps: 400.0 },
                batch: BatchPolicy::dynamic(4, 1.0),
                sla: SlaPolicy::new(80.0, 64),
                scale: ScalePolicy::none(),
                cluster: Some(1),
                initial_groups: 1,
            },
        ],
    }
}

fn kitchen_sink_models() -> (AnalyticModel, AnalyticModel) {
    (
        AnalyticModel::new("resnet-like", 0.8),
        AnalyticModel::new("bert-like", 1.6),
    )
}

/// Same seed, same config => bit-identical report AND trace.
#[test]
fn same_seed_runs_are_bit_identical() {
    let chip = ChipConfig::dtu20();
    let cfg = kitchen_sink(0xC0FFEE);

    let (mut m0, mut m1) = kitchen_sink_models();
    let a = run_serving(&cfg, &chip, &mut [&mut m0, &mut m1]).expect("run a");

    let (mut m0, mut m1) = kitchen_sink_models();
    let b = run_serving(&cfg, &chip, &mut [&mut m0, &mut m1]).expect("run b");

    assert!(a.report.offered > 0, "scenario must carry traffic");
    assert_eq!(a.report, b.report, "reports must be bit-identical");
    assert_eq!(
        a.trace.to_jsonl(),
        b.trace.to_jsonl(),
        "traces must be bit-identical"
    );
    assert_eq!(a.requests, b.requests);
}

/// Different seeds must not replay the same run (arrivals differ).
#[test]
fn different_seeds_diverge() {
    let chip = ChipConfig::dtu20();
    let (mut m0, mut m1) = kitchen_sink_models();
    let a = run_serving(&kitchen_sink(1), &chip, &mut [&mut m0, &mut m1]).expect("run a");
    let (mut m0, mut m1) = kitchen_sink_models();
    let b = run_serving(&kitchen_sink(2), &chip, &mut [&mut m0, &mut m1]).expect("run b");
    assert_ne!(a.trace.to_jsonl(), b.trace.to_jsonl());
}

/// With batching, shedding, and scaling all disabled, the event engine
/// must reproduce the closed-form M/D/1 sample path exactly: Poisson
/// arrivals from the same seeded stream pushed through the Lindley
/// recursion with deterministic service.
#[test]
fn no_batching_single_tenant_matches_closed_form() {
    let chip = ChipConfig::dtu20();
    let service_ms = 1.25;
    let cfg = ServeConfig {
        duration_ms: 5_000.0,
        seed: 0xD1_CE,
        record_requests: true,
        faults: Default::default(),
        retry: Default::default(),
        tenants: vec![TenantSpec::poisson("solo", 0, 500.0)],
    };
    let mut model = AnalyticModel::new("const", service_ms);
    let out = run_serving(&cfg, &chip, &mut [&mut model]).expect("run");

    // Reference: identical arrival stream (tenant 0 uses the raw run
    // seed), Lindley recursion `done = max(arrival, prev_done) + s`.
    let mut gen = ArrivalGen::new(ArrivalProcess::Poisson { qps: 500.0 }, cfg.seed);
    let mut reference = Vec::new();
    let mut t = gen.next_after(0.0);
    let mut prev_done = 0.0f64;
    while t <= cfg.duration_ms {
        let done = t.max(prev_done) + service_ms;
        reference.push((t, done));
        prev_done = done;
        t = gen.next_after(t);
    }

    assert_eq!(out.report.offered as usize, reference.len());
    assert_eq!(out.report.completed as usize, reference.len());
    assert_eq!(out.requests.len(), reference.len());
    for (req, (arr, done)) in out.requests.iter().zip(&reference) {
        assert!(
            (req.arrival_ms - arr).abs() < 1e-9 && (req.done_ms - done).abs() < 1e-9,
            "request {} diverged: engine ({}, {}) vs closed form ({}, {})",
            req.req,
            req.arrival_ms,
            req.done_ms,
            arr,
            done
        );
    }

    // And the aggregate latency stats agree with the sample path.
    let mut lat: Vec<f64> = reference.iter().map(|(a, d)| d - a).collect();
    let stats = dtu_serve::LatencyStats::from_latencies(&mut lat);
    assert!((out.report.latency.mean_ms - stats.mean_ms).abs() < 1e-9);
    assert!((out.report.latency.p99_ms - stats.p99_ms).abs() < 1e-9);
}

/// The acceptance-criteria load test: at equal tenant count, dynamic
/// batching sustains >= 2x the throughput of batch=1 under a load that
/// saturates the unbatched server, while keeping p99 under the SLA.
#[test]
fn dynamic_batching_doubles_sustained_throughput() {
    let chip = ChipConfig::dtu20();
    // AnalyticModel: batch 8 costs 3.1x batch 1 => 2.58x capacity.
    // Offered 2.2 req/ms vs batch-1 capacity 1 req/ms: the unbatched
    // server saturates; the batched one keeps up with headroom.
    let offered_qps = 2_200.0;
    let sla = SlaPolicy::new(80.0, 64);
    let run = |batch: BatchPolicy| {
        let cfg = ServeConfig {
            duration_ms: 2_000.0,
            seed: 0xBA7C4,
            record_requests: false,
            faults: Default::default(),
            retry: Default::default(),
            tenants: vec![TenantSpec {
                name: "hot".into(),
                model: 0,
                arrival: ArrivalProcess::Poisson { qps: offered_qps },
                batch,
                sla: sla.clone(),
                scale: ScalePolicy::none(),
                cluster: Some(0),
                initial_groups: 1,
            }],
        };
        let mut model = AnalyticModel::new("unit", 1.0);
        run_serving(&cfg, &chip, &mut [&mut model]).expect("run")
    };

    let unbatched = run(BatchPolicy::none());
    let batched = run(BatchPolicy::dynamic(8, 2.0));

    assert!(
        unbatched.report.shed > 0,
        "batch=1 must saturate and shed under this load: {}",
        unbatched.report
    );
    assert!(
        batched.report.throughput_qps >= 2.0 * unbatched.report.throughput_qps,
        "batching win {:.0} vs {:.0} qps is below 2x",
        batched.report.throughput_qps,
        unbatched.report.throughput_qps
    );
    assert!(
        batched.report.latency.p99_ms <= sla.deadline_ms,
        "batched p99 {:.2} ms breaches the {:.0} ms SLA",
        batched.report.latency.p99_ms,
        sla.deadline_ms
    );
    // The histogram must show real batch formation, not batch=1 spam.
    assert!(
        batched.report.mean_batch() > 1.5,
        "mean batch {:.2} too small",
        batched.report.mean_batch()
    );
}

/// Elastic scaling is observable end to end: the trace carries scale
/// events and the queue-depth series drains after scale-up.
#[test]
fn trace_records_scaling_and_queue_depths() {
    let chip = ChipConfig::dtu20();
    let cfg = kitchen_sink(0x5CA1E);
    let (mut m0, mut m1) = kitchen_sink_models();
    let out = run_serving(&cfg, &chip, &mut [&mut m0, &mut m1]).expect("run");
    let jsonl = out.trace.to_jsonl();
    assert!(jsonl.contains("\"kind\":\"dispatch\""));
    assert!(!out.trace.queue_depth_series(0).is_empty());
    // Every line parses as a flat JSON object with the shared fields.
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"t_ns\":") && line.contains("\"tenant\":"));
    }
}
