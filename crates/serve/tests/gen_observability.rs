//! Integration tests for generative observability: the live monitor
//! must be strictly observational, its windowed histograms must agree
//! with exact percentiles over an independent replay of the same
//! deterministic run, and its exemplars must survive preempt–resume
//! all the way into a frozen flight dump.

use dtu_serve::{
    percentile, run_generative, run_generative_live, run_generative_observed, AnalyticTokenModel,
    ArrivalProcess, GenDecodeStep, GenLiveConfig, GenMonitor, GenObserver, GenerativeScenario,
    KvCacheConfig,
};
use dtu_telemetry::SloSpec;

fn scenario(total_pages: usize) -> GenerativeScenario {
    GenerativeScenario {
        duration_ms: 400.0,
        seed: 11,
        arrival: ArrivalProcess::Poisson { qps: 150.0 },
        prompt_tokens: 64,
        min_new_tokens: 2,
        max_new_tokens: 40,
        max_concurrency: 8,
        queue_depth: 128,
        ttft_deadline_ms: f64::INFINITY,
        tpot_deadline_ms: f64::INFINITY,
        kv: KvCacheConfig {
            page_tokens: 16,
            bytes_per_token: 1024,
            total_pages,
            l2_pages: 16,
            l3_gb_per_s: 100.0,
        },
    }
}

/// Collects the exact per-request TTFT/TPOT samples as the engine
/// emits them — the independent cross-check against the monitor's
/// log-bucketed windowed histograms.
#[derive(Default)]
struct RawSamples {
    ttft: Vec<f64>,
    tpot: Vec<f64>,
}

impl GenObserver for RawSamples {
    fn on_first_token(&mut self, _t_ms: f64, _req: u64, ttft_ms: f64) {
        self.ttft.push(ttft_ms);
    }
    fn on_complete(
        &mut self,
        _t_ms: f64,
        _req: u64,
        _ttft_ms: f64,
        tpot_ms: f64,
        _e2e_ms: f64,
        _violated: bool,
    ) {
        self.tpot.push(tpot_ms);
    }
    fn on_decode(&mut self, _step: &GenDecodeStep) {}
}

#[test]
fn monitored_outcome_is_byte_identical_under_kv_pressure() {
    // Constrained pool: the monitored run sees preemptions, KV
    // exhaustions, and resumes, and still must not perturb anything.
    let mut sc = scenario(48);
    sc.arrival = ArrivalProcess::Poisson { qps: 1200.0 };
    sc.duration_ms = 150.0;
    let plain = run_generative(&sc, &mut AnalyticTokenModel::new("m")).unwrap();
    let mut mon = GenMonitor::new(GenLiveConfig {
        ttft_slo: Some(SloSpec::new("ttft_p99<1ms", 0.99, 1.0)),
        tpot_slo: Some(SloSpec::new("tpot_p99<1ms", 0.99, 1.0)),
        ..GenLiveConfig::default()
    });
    let live = run_generative_live(&sc, &mut AnalyticTokenModel::new("m"), &mut mon).unwrap();
    assert!(live.report.preemptions > 0, "scenario must preempt");
    assert_eq!(plain.report, live.report);
    assert_eq!(plain.trace, live.trace);
    assert_eq!(plain.report.to_json(), live.report.to_json());
}

#[test]
fn windowed_percentiles_match_exact_within_two_percent() {
    // Include forced mid-stream preemption so resumed requests'
    // (larger) TTFTs are part of the distribution under test.
    for pages in [4096, 64] {
        let sc = scenario(pages);
        let mut raw = RawSamples::default();
        run_generative_observed(&sc, &mut AnalyticTokenModel::new("m"), &mut raw).unwrap();
        let mut mon = GenMonitor::with_defaults();
        run_generative_live(&sc, &mut AnalyticTokenModel::new("m"), &mut mon).unwrap();

        raw.ttft.sort_by(f64::total_cmp);
        raw.tpot.sort_by(f64::total_cmp);
        assert!(!raw.ttft.is_empty());
        let ttft = mon.ttft.merged();
        let tpot = mon.tpot.merged();
        assert_eq!(ttft.count() as usize, raw.ttft.len());
        assert_eq!(tpot.count() as usize, raw.tpot.len());
        for (metric, hist, exact) in [("ttft", &ttft, &raw.ttft), ("tpot", &tpot, &raw.tpot)] {
            for q in [0.50, 0.90, 0.99] {
                let approx = hist.quantile(q);
                let truth = percentile(exact, q);
                let err = if truth == 0.0 {
                    approx.abs()
                } else {
                    (approx - truth).abs() / truth
                };
                assert!(
                    err <= 0.02,
                    "{metric} p{:.0} (pages {pages}): hist {approx} vs exact {truth} \
                     (err {err:.4})",
                    q * 100.0
                );
            }
        }
    }
}

#[test]
fn preempted_exemplar_resolves_in_flight_dump() {
    // Forced mid-stream preemption: the slowest-TTFT request is one
    // that sat preempted, and its exemplar span id must resolve inside
    // the dump the KV pressure froze.
    let mut sc = scenario(48);
    sc.arrival = ArrivalProcess::Poisson { qps: 1200.0 };
    sc.duration_ms = 150.0;
    let mut mon = GenMonitor::new(GenLiveConfig {
        flight_capacity: 1 << 16, // retain the full run
        ..GenLiveConfig::default()
    });
    let out = run_generative_live(&sc, &mut AnalyticTokenModel::new("m"), &mut mon).unwrap();
    assert!(out.report.preemptions > 0);

    // Independent trace replay names the preemption victims.
    let preempted: Vec<u64> = out
        .trace
        .events
        .iter()
        .filter_map(|e| match e.kind {
            dtu_serve::ServeEventKind::Preempt { req, .. } => Some(req),
            _ => None,
        })
        .collect();
    assert!(!preempted.is_empty());

    // The KV-pressure dump names the first victim, and that victim's
    // token timeline resolves inside it.
    let dump = mon
        .flight
        .dumps()
        .iter()
        .find(|d| d.reason.starts_with("kv-exhaustion"))
        .expect("KV pressure froze a dump");
    let victim: u64 = dump
        .reason
        .split(&['(', ' '][..])
        .find_map(|w| w.parse().ok())
        .expect("dump reason names a request id");
    assert_eq!(victim, preempted[0], "dump names the first victim");
    assert!(dump.resolves_label(&format!("req {victim}")));
    assert!(dump
        .spans
        .iter()
        .any(|s| s.label.starts_with(&format!("req {victim} prefill"))));
    assert!(dump
        .spans
        .iter()
        .any(|s| s.label.starts_with(&format!("req {victim} tok "))));

    // The run-wide TTFT exemplar (slowest first token) resolves in a
    // ring snapshot frozen at end of run — exemplars stay keyed by
    // request id through preempt–resume, so the lookup path is the
    // same for victims and non-victims.
    let end_ns = mon.now_ns();
    let exemplar = mon
        .ttft
        .exemplar_over(end_ns, end_ns)
        .expect("run-wide TTFT exemplar");
    mon.flight.trigger("end-of-run snapshot", end_ns);
    let snap = mon.flight.latest().expect("just triggered");
    assert!(
        snap.resolves_label(&format!("req {}", exemplar.span_id)),
        "exemplar {} must resolve in the snapshot",
        exemplar.span_id
    );
}
