//! Property tests for SLA-aware admission control: whatever the load,
//! batching, and queue-cap parameters, the engine's accounting must
//! stay consistent and no late completion may slip past unflagged.

use dtu_serve::{
    run_serving, AnalyticModel, ArrivalProcess, BatchPolicy, ScalePolicy, ServeConfig, SlaPolicy,
    TenantSpec,
};
use dtu_sim::ChipConfig;
use proptest::prelude::*;

proptest! {
    #[test]
    fn admission_never_hides_a_late_completion(
        seed in 0u64..1_000_000,
        qps in 100.0f64..3_000.0,
        deadline_ms in 2.0f64..40.0,
        max_queue_depth in 1usize..32,
        max_batch in 1usize..9
    ) {
        let cfg = ServeConfig {
            duration_ms: 400.0,
            seed,
            record_requests: true,
            faults: Default::default(),
            retry: Default::default(),
            tenants: vec![TenantSpec {
                name: "t".into(),
                model: 0,
                arrival: ArrivalProcess::Poisson { qps },
                batch: if max_batch > 1 {
                    BatchPolicy::dynamic(max_batch, 1.5)
                } else {
                    BatchPolicy::none()
                },
                sla: SlaPolicy::new(deadline_ms, max_queue_depth),
                scale: ScalePolicy::none(),
                cluster: Some(0),
                initial_groups: 1,
            }],
        };
        let mut model = AnalyticModel::new("unit", 0.9);
        let out = run_serving(&cfg, &ChipConfig::dtu20(), &mut [&mut model])
            .expect("run");

        // Conservation: every offered request either completed or was
        // shed -- nothing vanishes, nothing is double-counted.
        prop_assert_eq!(
            out.report.offered,
            out.report.completed + out.report.shed
        );
        prop_assert_eq!(out.requests.len() as u64, out.report.completed);

        // A completion past its deadline MUST be flagged violated, and
        // only those completions may be flagged.
        let mut late = 0u64;
        for r in &out.requests {
            prop_assert_eq!(
                r.violated,
                r.done_ms > r.deadline_ms,
                "request {} done {} deadline {} flagged {}",
                r.req, r.done_ms, r.deadline_ms, r.violated
            );
            if r.violated {
                late += 1;
            }
            prop_assert!(r.done_ms >= r.arrival_ms);
        }
        prop_assert_eq!(late, out.report.violations);

        // The queue cap is a hard bound: with depth limit d and batch
        // cap b, at most d requests wait while b are in flight, so no
        // completion can wait longer than (d + b) service times plus
        // the batching timeout (unit service is 0.9 * 3.1 at worst).
        let worst_service = 0.9 * 3.1;
        let bound = (max_queue_depth + max_batch) as f64 * worst_service + 1.5 + 1e-9;
        for r in &out.requests {
            prop_assert!(
                r.done_ms - r.arrival_ms <= bound,
                "latency {} exceeds queue-cap bound {}",
                r.done_ms - r.arrival_ms, bound
            );
        }
    }
}
