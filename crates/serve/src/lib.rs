//! `dtu-serve` — event-driven cloud serving on the simulated i20.
//!
//! The paper frames the accelerator as a *cloud inference* product:
//! "the ability to efficiently serve multiple user requests is crucial
//! to improve throughput and hardware utilization" (§IV-E), with
//! isolated processing groups elastically assigned to workloads
//! (Fig. 7). This crate is that serving layer as a deterministic
//! discrete-event simulator:
//!
//! * **Arrivals** ([`ArrivalProcess`]) — seeded Poisson and bursty
//!   (Markov-modulated) request processes per tenant.
//! * **Dynamic batching** ([`BatchPolicy`]) — max-batch-size plus
//!   batching-timeout batch formation per tenant queue, served through
//!   a session cache keyed on (model, batch, placement)
//!   ([`CompiledModel`]).
//! * **SLA-aware admission** ([`SlaPolicy`]) — per-tenant deadline and
//!   queue-depth limits with shed/violation accounting.
//! * **Elastic group scaling** ([`ScalePolicy`]) — tenants grow
//!   1→2→3 processing groups under observed queue delay and shrink
//!   when idle, the online version of Fig. 7's resource assignment.
//! * **Metrics** ([`ServeReport`], [`ServingTrace`]) — per-tenant and
//!   global p50/p95/p99, batch-size histograms, shed counts, and a
//!   JSONL event trace alongside the profiler's Chrome-trace export.
//!
//! The engine ([`run_serving`]) is generic over [`ServiceModel`], so
//! policies are unit-testable against [`AnalyticModel`] cost curves
//! and deployable against the real compiled stack via
//! [`CompiledModel`]. With batching, scaling, and shedding disabled it
//! reduces exactly to the per-tenant M/D/1 model `dtu::simulate_serving`
//! has always reported — that facade now delegates here.
//!
//! Generative workloads get their own engine: [`run_generative`] runs
//! **continuous (iteration-level) batching** — requests join and leave
//! the running batch at token boundaries, prefill and decode steps are
//! priced by a [`TokenModel`], and KV-cache pages are charged against
//! the chip's three-level memory model by a [`PagedKvCache`] (with
//! shed/preempt on exhaustion). Reports carry TTFT and TPOT
//! percentiles next to the classic end-to-end latencies.
//!
//! # Example
//!
//! ```
//! use dtu_serve::{run_serving, AnalyticModel, ServeConfig, TenantSpec};
//! use dtu_sim::ChipConfig;
//!
//! let cfg = ServeConfig {
//!     duration_ms: 200.0,
//!     tenants: vec![TenantSpec::poisson("web", 0, 300.0)],
//!     ..Default::default()
//! };
//! let mut model = AnalyticModel::new("resnet-like", 0.5);
//! let out = run_serving(&cfg, &ChipConfig::dtu20(), &mut [&mut model])?;
//! assert!(out.report.completed > 0);
//! # Ok::<(), dtu_serve::ServeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod config;
mod engine;
mod gen_live;
mod generative;
mod kv;
mod live;
mod metrics;
mod model;
pub mod stats;
mod token_model;

pub use arrival::{ArrivalGen, ArrivalProcess, ServeRng};
pub use config::{BatchPolicy, RetryPolicy, ScalePolicy, ServeConfig, SlaPolicy, TenantSpec};
/// Fault plans and sessions consumed by the engine's injection hooks
/// (re-exported so callers can build [`ServeConfig::faults`] without a
/// separate dependency).
pub use dtu_faults as faults;
pub use engine::{run_serving, run_serving_live, run_serving_recorded, ServeOutcome};
pub use gen_live::{run_generative_live, GenLiveConfig, GenMonitor, GenRow};
pub use generative::{
    run_generative, run_generative_observed, run_generative_recorded, GenDecodeStep, GenJoiner,
    GenObserver, GenOutcome, GenReport, GenerativeScenario,
};
pub use kv::{KvCacheConfig, KvStats, PagedKvCache};
pub use live::{LiveConfig, LiveMonitor, TenantLive, TenantRow};
pub use metrics::{
    event_to_span, RequestOutcome, ServeEvent, ServeEventKind, ServeReport, ServingTrace,
    TenantReport,
};
pub use model::{AnalyticModel, CacheStats, CompiledModel, ProgramSource, ServiceModel};
pub use stats::{percentile, LatencyStats, Sample};
pub use token_model::{AnalyticTokenModel, CompiledTokenModel, PrefillOnly, TokenModel};

use dtu_compiler::CompileError;
use dtu_sim::SimError;
use std::error::Error;
use std::fmt;

/// Any failure from configuring or running a serving scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The scenario itself is inconsistent (bad tenant/model wiring,
    /// more groups than the chip has, zero batch).
    Config(String),
    /// Compiling a session for some (model, batch, placement) failed.
    Compile(CompileError),
    /// Simulating a compiled session failed.
    Sim(SimError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "serving config error: {msg}"),
            ServeError::Compile(e) => write!(f, "serving compile error: {e}"),
            ServeError::Sim(e) => write!(f, "serving simulation error: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Config(_) => None,
            ServeError::Compile(e) => Some(e),
            ServeError::Sim(e) => Some(e),
        }
    }
}

impl From<CompileError> for ServeError {
    fn from(e: CompileError) -> Self {
        ServeError::Compile(e)
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = ServeError::Config("x".into());
        assert!(e.to_string().contains("config"));
        assert!(e.source().is_none());
        let e: ServeError = SimError::InvalidConfig("y".into()).into();
        assert!(e.to_string().contains("simulation"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
