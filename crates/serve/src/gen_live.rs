//! Live observability for generative runs: token-level time series,
//! TTFT/TPOT SLO burn rates, KV-pressure gauges, and a flight recorder
//! holding the full token timeline of recent requests.
//!
//! A [`GenMonitor`] rides along a generative run (see
//! [`run_generative_live`]) as a [`GenObserver`]: it sees every admit,
//! prefill, decode step, preemption, KV exhaustion, completion, and
//! shed *at its simulated time*. It never feeds anything back into the
//! engine — a monitored run's report and trace are byte-identical to a
//! plain run's.
//!
//! It maintains:
//! * windowed [`TimeSeries`] rings — arrivals, sheds, completions,
//!   violations, preemptions, KV exhaustions, decode steps, running
//!   batch occupancy, KV pages in use, L2-resident KV pages, and L3
//!   spill milliseconds;
//! * windowed log-bucketed histograms for TTFT (recorded at
//!   first-token time), TPOT, and end-to-end latency, each carrying
//!   the slowest request's span id as the window's exemplar —
//!   exemplars are keyed by request id, so they survive
//!   preempt–resume;
//! * optional TTFT and TPOT [`SloTracker`]s evaluated by the shared
//!   multi-window burn-rate engine at every simulated-second boundary;
//! * a [`FlightRecorder`] whose ring holds the batch-level
//!   prefill/decode spans *and* per-request token markers, prefill
//!   spans, and preemption-gap spans. The first KV-pressure preemption
//!   and every burn-rate page freeze a dump, so the black box names
//!   the offending request.

use crate::generative::{
    run_generative_observed, GenDecodeStep, GenJoiner, GenObserver, GenOutcome, GenerativeScenario,
};
use crate::metrics::{event_to_span, ServeEvent};
use crate::token_model::TokenModel;
use crate::ServeError;
use dtu_telemetry::clock::ms_to_ns;
use dtu_telemetry::slo::EVAL_WINDOW_NS;
use dtu_telemetry::{
    AlertEvent, AlertKind, FlightRecorder, Layer, SloSpec, SloTracker, Span, SpanKind, TimeSeries,
    WindowedHistogram,
};
use std::collections::BTreeMap;

/// How a [`GenMonitor`] is shaped.
#[derive(Debug, Clone)]
pub struct GenLiveConfig {
    /// Dashboard window width, ns (default 1 s of simulated time).
    pub window_ns: f64,
    /// Windows retained per ring (default 128 → ~2 min of history).
    pub ring_windows: usize,
    /// TTFT objective (`None` = metrics only, no TTFT alerts).
    pub ttft_slo: Option<SloSpec>,
    /// TPOT objective (`None` = metrics only, no TPOT alerts).
    pub tpot_slo: Option<SloSpec>,
    /// Flight-recorder ring capacity, spans.
    pub flight_capacity: usize,
    /// Offset added to every request id in per-request span labels and
    /// exemplars (default 0 = local ids), mirroring
    /// [`LiveConfig::trace_base`](crate::LiveConfig).
    pub trace_base: u64,
    /// Tenant label used in alerts and dump reasons.
    pub tenant: String,
}

impl Default for GenLiveConfig {
    fn default() -> Self {
        GenLiveConfig {
            window_ns: EVAL_WINDOW_NS,
            ring_windows: 128,
            ttft_slo: None,
            tpot_slo: None,
            // Token-level spans are roughly an order of magnitude
            // denser than request-level ones (per-token markers every
            // decode step), so the gen ring defaults 8x deeper than
            // the request-serving recorder.
            flight_capacity: dtu_telemetry::flight::DEFAULT_CAPACITY * 8,
            trace_base: 0,
            tenant: "gen".to_string(),
        }
    }
}

/// One rendered dashboard row (what `topsexec top --generative`
/// prints), over a trailing window.
#[derive(Debug, Clone, PartialEq)]
pub struct GenRow {
    /// Completions per simulated second.
    pub qps: f64,
    /// Sheds per simulated second.
    pub shed_rate: f64,
    /// Preemptions per simulated second.
    pub preempt_rate: f64,
    /// Mean running-batch size over the window's decode steps.
    pub active_batch: f64,
    /// Mean KV-pool occupancy over the window's decode steps, 0..1.
    pub kv_occupancy: f64,
    /// L3 spill milliseconds charged per simulated second.
    pub spill_ms_per_s: f64,
    /// Windowed TTFT p50, ms.
    pub ttft_p50_ms: f64,
    /// Windowed TTFT p99, ms.
    pub ttft_p99_ms: f64,
    /// Windowed TPOT p50, ms.
    pub tpot_p50_ms: f64,
    /// Windowed TPOT p99, ms.
    pub tpot_p99_ms: f64,
    /// Fast/slow TTFT burn rates (0 without a TTFT SLO).
    pub ttft_burn_fast: f64,
    /// Slow-window TTFT burn rate.
    pub ttft_burn_slow: f64,
    /// Whether the TTFT burn-rate alert is firing.
    pub ttft_firing: bool,
    /// Fast-window TPOT burn rate (0 without a TPOT SLO).
    pub tpot_burn_fast: f64,
    /// Slow-window TPOT burn rate.
    pub tpot_burn_slow: f64,
    /// Whether the TPOT burn-rate alert is firing.
    pub tpot_firing: bool,
    /// Span id of the slowest-TTFT request in the window, when any.
    pub ttft_exemplar: Option<u64>,
}

/// The live observability sidecar of one generative run.
#[derive(Debug, Clone)]
pub struct GenMonitor {
    cfg: GenLiveConfig,
    /// Admitted arrivals per window.
    pub arrivals: TimeSeries,
    /// Admission sheds per window.
    pub sheds: TimeSeries,
    /// Completed requests per window.
    pub completions: TimeSeries,
    /// Deadline violations per window.
    pub violations: TimeSeries,
    /// Preemptions per window.
    pub preempts: TimeSeries,
    /// Decode-path KV-page exhaustions per window.
    pub exhausts: TimeSeries,
    /// Decode steps per window.
    pub decode_steps: TimeSeries,
    /// Sum of running-batch sizes per window (with `decode_steps`,
    /// gives mean active batch).
    pub batch_occupancy: TimeSeries,
    /// Sum of KV pages in use at each decode step per window.
    pub kv_pages: TimeSeries,
    /// Sum of L2-resident KV pages at each decode step per window.
    pub kv_resident: TimeSeries,
    /// L3 spill milliseconds charged per window.
    pub spill_ms: TimeSeries,
    /// Windowed TTFT histogram (recorded at first-token time).
    pub ttft: WindowedHistogram,
    /// Windowed TPOT histogram (recorded at completion).
    pub tpot: WindowedHistogram,
    /// Windowed end-to-end latency histogram.
    pub e2e: WindowedHistogram,
    /// TTFT burn-rate tracker, when configured.
    pub ttft_slo: Option<SloTracker>,
    /// TPOT burn-rate tracker, when configured.
    pub tpot_slo: Option<SloTracker>,
    /// The black box.
    pub flight: FlightRecorder,
    /// Every alert emitted, in simulated-time order.
    pub alerts: Vec<AlertEvent>,
    /// Preempted-and-not-yet-resumed requests → preemption time, ns
    /// (feeds the preemption-gap spans).
    preempted_at: BTreeMap<u64, f64>,
    /// Whether the KV-pressure dump was already frozen (only the first
    /// preemption dumps, leaving ring-dump slots for later burn pages).
    kv_dumped: bool,
    /// KV pool size, pages (set by [`GenMonitor::begin`]).
    total_pages: usize,
    /// Next evaluation boundary (multiples of [`EVAL_WINDOW_NS`]).
    next_eval_ns: f64,
    now_ns: f64,
}

impl GenMonitor {
    /// Creates a monitor; attach to a scenario via
    /// [`GenMonitor::begin`] (done by [`run_generative_live`]).
    pub fn new(cfg: GenLiveConfig) -> Self {
        let series = || TimeSeries::new(cfg.window_ns, cfg.ring_windows);
        let hist = || WindowedHistogram::new(cfg.window_ns, cfg.ring_windows);
        let flight = FlightRecorder::new(cfg.flight_capacity);
        let ttft_slo = cfg.ttft_slo.as_ref().map(|s| SloTracker::new(s.clone()));
        let tpot_slo = cfg.tpot_slo.as_ref().map(|s| SloTracker::new(s.clone()));
        GenMonitor {
            arrivals: series(),
            sheds: series(),
            completions: series(),
            violations: series(),
            preempts: series(),
            exhausts: series(),
            decode_steps: series(),
            batch_occupancy: series(),
            kv_pages: series(),
            kv_resident: series(),
            spill_ms: series(),
            ttft: hist(),
            tpot: hist(),
            e2e: hist(),
            ttft_slo,
            tpot_slo,
            flight,
            alerts: Vec::new(),
            preempted_at: BTreeMap::new(),
            kv_dumped: false,
            total_pages: 0,
            next_eval_ns: EVAL_WINDOW_NS,
            now_ns: 0.0,
            cfg,
        }
    }

    /// A monitor with default windows and no SLOs.
    pub fn with_defaults() -> Self {
        GenMonitor::new(GenLiveConfig::default())
    }

    /// (Re-)initialises state for a run over `sc`.
    pub fn begin(&mut self, sc: &GenerativeScenario) {
        *self = GenMonitor::new(self.cfg.clone());
        self.total_pages = sc.kv.total_pages;
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &GenLiveConfig {
        &self.cfg
    }

    /// Latest simulated time the monitor has seen, ns.
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// KV pool size the run was configured with, pages.
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Burn-rate alerts only (excludes resolutions).
    pub fn burn_alerts(&self) -> impl Iterator<Item = &AlertEvent> + '_ {
        self.alerts.iter().filter(|a| a.kind == AlertKind::BurnRate)
    }

    /// Advances simulated time to `t_ns`, running every pending SLO
    /// evaluation boundary in order. Burn-rate alerts freeze a flight
    /// dump. Hooks call this themselves, so external driving is only
    /// needed for [`GenMonitor::finish`].
    pub fn advance(&mut self, t_ns: f64) -> Vec<AlertEvent> {
        self.now_ns = self.now_ns.max(t_ns);
        let mut fired = Vec::new();
        while self.next_eval_ns <= t_ns {
            let at = self.next_eval_ns;
            for (hist, tracker) in [
                (&self.ttft, &mut self.ttft_slo),
                (&self.tpot, &mut self.tpot_slo),
            ] {
                if let Some(tracker) = tracker.as_mut() {
                    let exemplar = hist
                        .exemplar_over(at, tracker.spec.fast_window_ns)
                        .map(|e| e.span_id);
                    if let Some(alert) = tracker.evaluate(at, exemplar) {
                        if alert.kind == AlertKind::BurnRate {
                            self.flight
                                .trigger(format!("alert {} ({})", alert.slo, self.cfg.tenant), at);
                        }
                        fired.push(alert);
                    }
                }
            }
            self.next_eval_ns += EVAL_WINDOW_NS;
        }
        self.alerts.extend(fired.iter().cloned());
        fired
    }

    /// Finishes the run at `end_ns`: runs the remaining boundaries plus
    /// one final evaluation past the end so trailing windows are
    /// judged. Returns any alerts that transitioned.
    pub fn finish(&mut self, end_ns: f64) -> Vec<AlertEvent> {
        let last = (end_ns / EVAL_WINDOW_NS).ceil() * EVAL_WINDOW_NS;
        self.advance(last.max(self.next_eval_ns))
    }

    /// One dashboard row over the trailing `span_ns` at `now_ns`.
    pub fn row(&self, now_ns: f64, span_ns: f64) -> GenRow {
        let ttft = self.ttft.merged_over(now_ns, span_ns);
        let tpot = self.tpot.merged_over(now_ns, span_ns);
        let steps = self.decode_steps.sum_over(now_ns, span_ns);
        let mean = |series: &TimeSeries| {
            if steps > 0.0 {
                series.sum_over(now_ns, span_ns) / steps
            } else {
                0.0
            }
        };
        GenRow {
            qps: self.completions.rate_per_sec(now_ns, span_ns),
            shed_rate: self.sheds.rate_per_sec(now_ns, span_ns),
            preempt_rate: self.preempts.rate_per_sec(now_ns, span_ns),
            active_batch: mean(&self.batch_occupancy),
            kv_occupancy: if self.total_pages > 0 {
                mean(&self.kv_pages) / self.total_pages as f64
            } else {
                0.0
            },
            spill_ms_per_s: self.spill_ms.rate_per_sec(now_ns, span_ns),
            ttft_p50_ms: ttft.quantile(0.50),
            ttft_p99_ms: ttft.quantile(0.99),
            tpot_p50_ms: tpot.quantile(0.50),
            tpot_p99_ms: tpot.quantile(0.99),
            ttft_burn_fast: self.ttft_slo.as_ref().map_or(0.0, |s| s.burn_fast(now_ns)),
            ttft_burn_slow: self.ttft_slo.as_ref().map_or(0.0, |s| s.burn_slow(now_ns)),
            ttft_firing: self.ttft_slo.as_ref().is_some_and(|s| s.firing()),
            tpot_burn_fast: self.tpot_slo.as_ref().map_or(0.0, |s| s.burn_fast(now_ns)),
            tpot_burn_slow: self.tpot_slo.as_ref().map_or(0.0, |s| s.burn_slow(now_ns)),
            tpot_firing: self.tpot_slo.as_ref().is_some_and(|s| s.firing()),
            ttft_exemplar: self.ttft.exemplar_over(now_ns, span_ns).map(|e| e.span_id),
        }
    }

    /// Byte-deterministic SLO compliance JSON for the run: one object
    /// per configured objective (the `topsexec serve --generative
    /// --slo` payload).
    pub fn compliance_json(&self) -> String {
        use dtu_telemetry::json::JsonObject;
        let mut objectives = Vec::new();
        for tracker in [self.ttft_slo.as_ref(), self.tpot_slo.as_ref()]
            .into_iter()
            .flatten()
        {
            let pages = self
                .alerts
                .iter()
                .filter(|a| a.kind == AlertKind::BurnRate && a.slo == tracker.spec.name)
                .count();
            objectives.push(
                JsonObject::new()
                    .string("slo", &tracker.spec.name)
                    .num("deadline_ms", tracker.spec.deadline_ms)
                    .int("completed", tracker.completed() as i64)
                    .int("violated", tracker.violated() as i64)
                    .num("budget_consumed", tracker.budget_consumed())
                    .int("pages", pages as i64)
                    .raw("firing", if tracker.firing() { "true" } else { "false" })
                    .build(),
            );
        }
        JsonObject::new()
            .string("tenant", &self.cfg.tenant)
            .int("preemptions", self.preempts.total() as i64)
            .int("kv_exhaustions", self.exhausts.total() as i64)
            .raw("objectives", &dtu_telemetry::json::array(&objectives))
            .build()
    }

    fn span_id(&self, req: u64) -> u64 {
        self.cfg.trace_base + req
    }
}

impl GenObserver for GenMonitor {
    fn on_event(&mut self, event: &ServeEvent) {
        self.advance(event.t_ns);
        // The full event stream lands in the ring via the same mapping
        // the trace export uses, so a frozen dump reads like the trace.
        self.flight.record(event_to_span(event));
    }

    fn on_admit(&mut self, t_ms: f64, _req: u64) {
        self.arrivals.add(ms_to_ns(t_ms), 1.0);
    }

    fn on_shed(&mut self, t_ms: f64, _req: u64) {
        self.sheds.add(ms_to_ns(t_ms), 1.0);
    }

    fn on_prefill(&mut self, t_ms: f64, end_ms: f64, joiners: &[GenJoiner]) {
        let (t_ns, end_ns) = (ms_to_ns(t_ms), ms_to_ns(end_ms));
        for j in joiners {
            let id = self.span_id(j.req);
            if let Some(preempt_ns) = self.preempted_at.remove(&j.req) {
                // The request sat preempted from eviction to this
                // re-prefill: make the gap visible as a wait interval.
                self.flight.record(Span::new(
                    SpanKind::SyncWait,
                    Layer::Serving,
                    0,
                    format!("req {id} preempted"),
                    preempt_ns,
                    t_ns,
                ));
            }
            let tag = if j.resumed { " (resume)" } else { "" };
            self.flight.record(Span::new(
                SpanKind::Prefill,
                Layer::Serving,
                0,
                format!("req {id} prefill{tag} @ {} tok", j.tokens),
                t_ns,
                end_ns,
            ));
        }
    }

    fn on_first_token(&mut self, t_ms: f64, req: u64, ttft_ms: f64) {
        let t_ns = ms_to_ns(t_ms);
        let id = self.span_id(req);
        self.ttft.record(t_ns, ttft_ms, Some(id));
        if let Some(tracker) = self.ttft_slo.as_mut() {
            tracker.observe(t_ns, ttft_ms);
        }
    }

    fn on_decode(&mut self, step: &GenDecodeStep) {
        let t_ns = ms_to_ns(step.t_ms);
        self.decode_steps.add(t_ns, 1.0);
        self.batch_occupancy.add(t_ns, step.batch as f64);
        self.kv_pages.add(t_ns, step.kv_pages_in_use as f64);
        self.kv_resident.add(t_ns, step.kv_resident_pages as f64);
        self.spill_ms.add(t_ns, step.spill_ms);
        let end_ns = ms_to_ns(step.end_ms);
        for &(req, produced) in &step.reqs {
            let id = self.span_id(req);
            self.flight.record(Span::marker(
                Layer::Serving,
                0,
                format!("req {id} tok {produced}"),
                end_ns,
            ));
        }
    }

    fn on_exhaust(&mut self, t_ms: f64, req: u64) {
        let t_ns = ms_to_ns(t_ms);
        self.exhausts.add(t_ns, 1.0);
        let id = self.span_id(req);
        self.flight.record(Span::marker(
            Layer::Serving,
            0,
            format!("kv-exhausted req {id}"),
            t_ns,
        ));
    }

    fn on_preempt(&mut self, t_ms: f64, req: u64, _pages: usize) {
        let t_ns = ms_to_ns(t_ms);
        self.preempts.add(t_ns, 1.0);
        self.preempted_at.insert(req, t_ns);
        if !self.kv_dumped {
            // First KV-pressure eviction: freeze the black box while
            // the victim's token timeline is still in the ring. Later
            // evictions only count — the remaining dump slots are kept
            // for burn-rate pages.
            self.kv_dumped = true;
            let id = self.span_id(req);
            self.flight.trigger(
                format!("kv-exhaustion (req {id} preempted, {})", self.cfg.tenant),
                t_ns,
            );
        }
    }

    fn on_complete(
        &mut self,
        t_ms: f64,
        req: u64,
        _ttft_ms: f64,
        tpot_ms: f64,
        e2e_ms: f64,
        violated: bool,
    ) {
        let t_ns = ms_to_ns(t_ms);
        let id = self.span_id(req);
        self.completions.add(t_ns, 1.0);
        if violated {
            self.violations.add(t_ns, 1.0);
        }
        self.tpot.record(t_ns, tpot_ms, Some(id));
        self.e2e.record(t_ns, e2e_ms, Some(id));
        if let Some(tracker) = self.tpot_slo.as_mut() {
            tracker.observe(t_ns, tpot_ms);
        }
        self.preempted_at.remove(&req);
        self.flight.record(Span::new(
            SpanKind::Request,
            Layer::Serving,
            0,
            format!("req {id}{}", if violated { " (late)" } else { "" }),
            ms_to_ns(t_ms - e2e_ms),
            t_ns,
        ));
    }
}

/// Runs a generative scenario with a [`GenMonitor`] riding along.
///
/// The monitor is strictly observational: the returned outcome is
/// byte-identical to [`run_generative`](crate::run_generative)'s for
/// the same scenario and model.
///
/// # Errors
///
/// As for [`run_generative`](crate::run_generative).
pub fn run_generative_live(
    sc: &GenerativeScenario,
    model: &mut dyn TokenModel,
    mon: &mut GenMonitor,
) -> Result<GenOutcome, ServeError> {
    mon.begin(sc);
    let out = run_generative_observed(sc, model, mon)?;
    mon.finish(ms_to_ns(out.report.drained_ms));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalProcess;
    use crate::kv::KvCacheConfig;
    use crate::run_generative;
    use crate::token_model::AnalyticTokenModel;

    fn scenario(total_pages: usize) -> GenerativeScenario {
        GenerativeScenario {
            duration_ms: 300.0,
            seed: 7,
            arrival: ArrivalProcess::Poisson { qps: 120.0 },
            prompt_tokens: 64,
            min_new_tokens: 4,
            max_new_tokens: 48,
            max_concurrency: 8,
            queue_depth: 64,
            ttft_deadline_ms: f64::INFINITY,
            tpot_deadline_ms: f64::INFINITY,
            kv: KvCacheConfig {
                page_tokens: 16,
                bytes_per_token: 1024,
                total_pages,
                l2_pages: 16,
                l3_gb_per_s: 100.0,
            },
        }
    }

    #[test]
    fn monitored_run_is_observational() {
        let sc = scenario(4096);
        let plain = run_generative(&sc, &mut AnalyticTokenModel::new("m")).unwrap();
        let mut mon = GenMonitor::with_defaults();
        let live = run_generative_live(&sc, &mut AnalyticTokenModel::new("m"), &mut mon).unwrap();
        assert_eq!(plain.report, live.report);
        assert_eq!(plain.trace, live.trace);
        assert_eq!(plain.report.to_json(), live.report.to_json());
        // …and the monitor actually saw the run.
        assert_eq!(mon.completions.total(), live.report.completed as f64);
        assert_eq!(
            mon.arrivals.total() + mon.sheds.total(),
            live.report.offered as f64
        );
        assert!(!mon.flight.is_empty());
        assert!(mon.ttft.merged().count() >= live.report.completed);
    }

    #[test]
    fn kv_pressure_freezes_one_dump_naming_the_victim() {
        let mut sc = scenario(40);
        sc.arrival = ArrivalProcess::Poisson { qps: 2000.0 };
        sc.duration_ms = 100.0;
        sc.queue_depth = 512;
        let mut mon = GenMonitor::with_defaults();
        let out = run_generative_live(&sc, &mut AnalyticTokenModel::new("m"), &mut mon).unwrap();
        assert!(out.report.preemptions > 0, "constrained pool must preempt");
        assert_eq!(mon.preempts.total(), out.report.preemptions as f64);
        assert!(mon.exhausts.total() > 0.0);
        let kv_dumps: Vec<_> = mon
            .flight
            .dumps()
            .iter()
            .filter(|d| d.reason.starts_with("kv-exhaustion"))
            .collect();
        assert_eq!(kv_dumps.len(), 1, "only the first eviction dumps");
        let dump = kv_dumps[0];
        // Reason names the preempted request, whose token timeline
        // (prefill span + decode-step markers) is in the frozen ring.
        let id: u64 = dump
            .reason
            .split(&['(', ' '][..])
            .find_map(|w| w.parse().ok())
            .expect("reason names a request id");
        assert!(dump.resolves_label(&format!("req {id}")));
        assert!(dump.spans.iter().any(|s| s.kind == SpanKind::Prefill));
        assert!(dump.spans.iter().any(|s| s.kind == SpanKind::Decode));
    }

    #[test]
    fn preemption_gap_spans_close_on_resume() {
        let mut sc = scenario(40);
        sc.arrival = ArrivalProcess::Poisson { qps: 2000.0 };
        sc.duration_ms = 100.0;
        sc.queue_depth = 512;
        let mut mon = GenMonitor::new(GenLiveConfig {
            flight_capacity: 1 << 16, // keep the whole run
            ..GenLiveConfig::default()
        });
        let out = run_generative_live(&sc, &mut AnalyticTokenModel::new("m"), &mut mon).unwrap();
        assert!(out.report.preemptions > 0);
        let gaps: Vec<&Span> = mon
            .flight
            .spans()
            .filter(|s| s.kind == SpanKind::SyncWait && s.label.contains("preempted"))
            .collect();
        assert!(!gaps.is_empty(), "resumed preemptions leave gap spans");
        for g in &gaps {
            assert!(g.duration_ns() > 0.0, "gap {:?} must have extent", g.label);
        }
        // Resume prefills are tagged.
        assert!(mon
            .flight
            .spans()
            .any(|s| s.kind == SpanKind::Prefill && s.label.contains("(resume)")));
    }

    #[test]
    fn ttft_slo_pages_under_sustained_breach() {
        // Deadline far below achievable TTFT + a long horizon so the
        // multi-window burn engine can fire (needs sustained seconds).
        let mut sc = scenario(4096);
        sc.duration_ms = 8_000.0;
        let mut mon = GenMonitor::new(GenLiveConfig {
            ttft_slo: Some(SloSpec::new("ttft_p99<0.001ms", 0.99, 0.001)),
            ..GenLiveConfig::default()
        });
        run_generative_live(&sc, &mut AnalyticTokenModel::new("m"), &mut mon).unwrap();
        let fired: Vec<_> = mon.burn_alerts().collect();
        assert!(!fired.is_empty(), "hopeless TTFT objective must page");
        let alert = fired[0];
        assert!(alert.burn_fast >= alert.burn_slow.min(10.0));
        let id = alert.exemplar.expect("alert carries a TTFT exemplar");
        let dump = mon
            .flight
            .dumps()
            .iter()
            .find(|d| d.reason.starts_with("alert"))
            .expect("burn page froze a dump");
        assert!(
            dump.resolves_label(&format!("req {id}")),
            "exemplar {id} resolves in the dump"
        );
    }

    #[test]
    fn clean_run_stays_quiet() {
        let mut sc = scenario(4096);
        sc.duration_ms = 2_000.0;
        let mut mon = GenMonitor::new(GenLiveConfig {
            ttft_slo: Some(SloSpec::new("ttft_p99<10s", 0.99, 10_000.0)),
            tpot_slo: Some(SloSpec::new("tpot_p99<10s", 0.99, 10_000.0)),
            ..GenLiveConfig::default()
        });
        let out = run_generative_live(&sc, &mut AnalyticTokenModel::new("m"), &mut mon).unwrap();
        assert!(out.report.completed > 0);
        assert!(mon.alerts.is_empty());
        assert!(!mon.flight.is_empty(), "ring records even when healthy");
        let dumps = mon
            .flight
            .dumps()
            .iter()
            .filter(|d| d.reason.starts_with("alert"))
            .count();
        assert_eq!(dumps, 0);
        let row = mon.row(mon.now_ns(), mon.now_ns());
        assert!(row.qps > 0.0);
        assert!(row.active_batch > 0.0);
        assert!(row.kv_occupancy > 0.0 && row.kv_occupancy <= 1.0);
        assert!(!row.ttft_firing && !row.tpot_firing);
        let js = mon.compliance_json();
        assert!(js.contains("\"objectives\""));
        assert!(js.contains("ttft_p99<10s") && js.contains("tpot_p99<10s"));
    }

    #[test]
    fn exemplar_survives_preempt_resume() {
        // Force preemption; the preempted request's eventual TTFT
        // exemplar (first-token time after resume) still keys by its
        // request id, so the dump resolves it.
        let mut sc = scenario(40);
        sc.arrival = ArrivalProcess::Poisson { qps: 2000.0 };
        sc.duration_ms = 100.0;
        sc.queue_depth = 512;
        let mut mon = GenMonitor::new(GenLiveConfig {
            flight_capacity: 1 << 16,
            ..GenLiveConfig::default()
        });
        let out = run_generative_live(&sc, &mut AnalyticTokenModel::new("m"), &mut mon).unwrap();
        let preempted: Vec<u64> = out
            .trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                crate::metrics::ServeEventKind::Preempt { req, .. } => Some(req),
                _ => None,
            })
            .collect();
        assert!(!preempted.is_empty());
        // Every preempted-then-completed request has its full timeline
        // in the ring: prefill, gap, resume, tokens.
        let completed_after_preempt = preempted
            .iter()
            .find(|&&r| mon.flight.spans().any(|s| s.label == format!("req {r}")))
            .copied()
            .expect("some preempted request completed");
        let r = completed_after_preempt;
        assert!(mon
            .flight
            .spans()
            .any(|s| s.label.starts_with(&format!("req {r} prefill"))));
        assert!(mon
            .flight
            .spans()
            .any(|s| s.label == format!("req {r} preempted")));
        assert!(mon
            .flight
            .spans()
            .any(|s| s.label.starts_with(&format!("req {r} tok "))));
    }
}
