//! Paged KV-cache allocator charged against the DTU's three-level
//! memory model.
//!
//! Generative decode reads the whole KV-cache every token, so cache
//! *placement* — not arithmetic — dominates the step cost. This module
//! models it the way a paged attention runtime does:
//!
//! * Tokens are stored in fixed-size **pages** ([`KvCacheConfig::page_tokens`]
//!   tokens each). A sequence holds `ceil(tokens / page_tokens)` pages;
//!   pages are reserved before a step runs and freed when the sequence
//!   completes (or is preempted).
//! * The **pool** is bounded by L3 capacity ([`KvCacheConfig::total_pages`]).
//!   When a reservation fails the serving engine must shed or preempt —
//!   the allocator never overcommits.
//! * Each decode step **charges** the bytes it streams: sequences whose
//!   pages fit in the L2-resident budget (oldest-first, up to
//!   [`KvCacheConfig::l2_pages`]) read at L2 speed and cost nothing
//!   extra; the overflow is **spill traffic** — DMA reads from L3 whose
//!   time (`bytes / l3_gb_per_s`) is added to the step latency by the
//!   caller.
//!
//! The allocator is deterministic: identical reservation/release
//! sequences produce identical occupancy and spill accounting, which is
//! what keeps generative serving byte-stable across `--jobs`.

use dtu_sim::ChipConfig;

/// Sizing of the paged KV-cache pool against a chip's memory system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvCacheConfig {
    /// Tokens per page.
    pub page_tokens: usize,
    /// Bytes of KV state per token per sequence (from
    /// `Workload::kv_bytes_per_token`).
    pub bytes_per_token: u64,
    /// Total pages the pool may hold (bounded by L3 capacity).
    pub total_pages: usize,
    /// Pages that fit in the L2-resident hot set.
    pub l2_pages: usize,
    /// L3 DMA bandwidth, GB/s — converts spilled bytes to milliseconds.
    pub l3_gb_per_s: f64,
}

impl KvCacheConfig {
    /// Default page granularity: 16 tokens, the paged-attention sweet
    /// spot between fragmentation and allocator churn.
    pub const DEFAULT_PAGE_TOKENS: usize = 16;

    /// Sizes the pool for a chip: the whole L3 backs the page pool, and
    /// the aggregate L2 (all groups) is the resident hot set.
    pub fn for_chip(chip: &ChipConfig, bytes_per_token: u64) -> Self {
        Self::for_chip_with_budget(chip, bytes_per_token, 1.0)
    }

    /// Like [`for_chip`](Self::for_chip) but with only `l3_fraction` of
    /// L3 granted to the pool — weights and activations need the rest,
    /// and constrained-capacity experiments shrink it further.
    pub fn for_chip_with_budget(chip: &ChipConfig, bytes_per_token: u64, l3_fraction: f64) -> Self {
        let page_bytes = Self::DEFAULT_PAGE_TOKENS as u64 * bytes_per_token.max(1);
        let l3_budget = (chip.l3_bytes() as f64 * l3_fraction.clamp(0.0, 1.0)) as u64;
        let l2_total = chip.l2_bytes_per_group() * chip.total_groups() as u64;
        KvCacheConfig {
            page_tokens: Self::DEFAULT_PAGE_TOKENS,
            bytes_per_token: bytes_per_token.max(1),
            total_pages: (l3_budget / page_bytes) as usize,
            l2_pages: (l2_total / page_bytes) as usize,
            l3_gb_per_s: chip.l3_gb_per_s,
        }
    }

    /// Bytes in one page.
    pub fn page_bytes(&self) -> u64 {
        self.page_tokens as u64 * self.bytes_per_token
    }

    /// Pages needed to hold `tokens` tokens of KV state.
    pub fn pages_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.page_tokens)
    }
}

/// Per-sequence page reservation.
#[derive(Debug, Clone, Copy)]
struct Seq {
    id: u64,
    pages: usize,
}

/// Cumulative allocator statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KvStats {
    /// Total page reservations granted over the run.
    pub pages_allocated: u64,
    /// Reservations refused because the pool was exhausted.
    pub exhaustions: u64,
    /// Bytes streamed from L3 because the decode working set exceeded
    /// the L2-resident budget.
    pub spill_bytes: u64,
    /// High-water mark of concurrently held pages.
    pub peak_pages: usize,
}

/// The paged KV-cache allocator.
///
/// Holds one reservation per active sequence. `try_reserve` grows a
/// sequence to a token count (allocating whole pages), `release` frees
/// everything a sequence holds, and `charge_step` computes the L3 spill
/// bytes for one decode iteration over the current residents.
#[derive(Debug, Clone)]
pub struct PagedKvCache {
    cfg: KvCacheConfig,
    seqs: Vec<Seq>,
    in_use: usize,
    stats: KvStats,
}

impl PagedKvCache {
    /// An empty pool.
    pub fn new(cfg: KvCacheConfig) -> Self {
        PagedKvCache {
            cfg,
            seqs: Vec::new(),
            in_use: 0,
            stats: KvStats::default(),
        }
    }

    /// The sizing this pool was built with.
    pub fn config(&self) -> &KvCacheConfig {
        &self.cfg
    }

    /// Pages currently reserved.
    pub fn pages_in_use(&self) -> usize {
        self.in_use
    }

    /// Pages still free.
    pub fn pages_free(&self) -> usize {
        self.cfg.total_pages - self.in_use
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> KvStats {
        self.stats
    }

    /// Grows (or creates) sequence `id`'s reservation to cover `tokens`
    /// tokens. Returns `false` — recording an exhaustion, allocating
    /// nothing — if the pool cannot hold the growth. Never shrinks.
    pub fn try_reserve(&mut self, id: u64, tokens: usize) -> bool {
        let want = self.cfg.pages_for(tokens);
        let held = match self.seqs.iter().position(|s| s.id == id) {
            Some(i) => i,
            None => {
                self.seqs.push(Seq { id, pages: 0 });
                self.seqs.len() - 1
            }
        };
        let have = self.seqs[held].pages;
        if want <= have {
            return true;
        }
        let grow = want - have;
        if grow > self.pages_free() {
            if self.seqs[held].pages == 0 {
                self.seqs.remove(held);
            }
            self.stats.exhaustions += 1;
            return false;
        }
        self.seqs[held].pages = want;
        self.in_use += grow;
        self.stats.pages_allocated += grow as u64;
        self.stats.peak_pages = self.stats.peak_pages.max(self.in_use);
        true
    }

    /// Frees every page sequence `id` holds. Returns the page count
    /// released (0 if the sequence held nothing).
    pub fn release(&mut self, id: u64) -> usize {
        if let Some(i) = self.seqs.iter().position(|s| s.id == id) {
            let pages = self.seqs.remove(i).pages;
            self.in_use -= pages;
            pages
        } else {
            0
        }
    }

    /// Charges one decode iteration: every resident sequence streams
    /// its whole reservation; the oldest sequences (insertion order —
    /// the continuous batcher admits oldest-first) occupy the
    /// L2-resident budget, and the rest spills from L3. Returns the
    /// milliseconds of DMA time the spill adds to the step.
    pub fn charge_step(&mut self) -> f64 {
        let mut l2_left = self.cfg.l2_pages;
        let mut spill_pages = 0usize;
        for s in &self.seqs {
            let resident = s.pages.min(l2_left);
            l2_left -= resident;
            spill_pages += s.pages - resident;
        }
        let bytes = spill_pages as u64 * self.cfg.page_bytes();
        self.stats.spill_bytes += bytes;
        // GB/s == bytes/µs·1e-3 → ms = bytes / (gb_per_s · 1e6).
        bytes as f64 / (self.cfg.l3_gb_per_s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(total: usize, l2: usize) -> KvCacheConfig {
        KvCacheConfig {
            page_tokens: 16,
            bytes_per_token: 1024,
            total_pages: total,
            l2_pages: l2,
            l3_gb_per_s: 100.0,
        }
    }

    #[test]
    fn for_chip_matches_hand_sizing() {
        let chip = ChipConfig::dtu20();
        // 128 KiB/token (the 1B-class config): page = 2 MiB.
        let kv = KvCacheConfig::for_chip(&chip, 128 * 1024);
        assert_eq!(kv.page_bytes(), 2 * 1024 * 1024);
        // 16 GiB L3 / 2 MiB pages.
        assert_eq!(kv.total_pages, 8192);
        // 48 MiB aggregate L2 / 2 MiB pages.
        assert_eq!(kv.l2_pages, 24);
        // Fractional budget shrinks the pool proportionally.
        let tight = KvCacheConfig::for_chip_with_budget(&chip, 128 * 1024, 0.25);
        assert_eq!(tight.total_pages, 2048);
        assert_eq!(tight.l2_pages, kv.l2_pages);
    }

    #[test]
    fn reserve_grows_in_whole_pages_and_never_shrinks() {
        let mut kv = PagedKvCache::new(cfg(10, 10));
        assert!(kv.try_reserve(1, 1)); // 1 page
        assert_eq!(kv.pages_in_use(), 1);
        assert!(kv.try_reserve(1, 16)); // still 1 page
        assert_eq!(kv.pages_in_use(), 1);
        assert!(kv.try_reserve(1, 17)); // 2 pages
        assert_eq!(kv.pages_in_use(), 2);
        assert!(kv.try_reserve(1, 5)); // no shrink
        assert_eq!(kv.pages_in_use(), 2);
        assert_eq!(kv.stats().pages_allocated, 2);
    }

    #[test]
    fn exhaustion_refuses_without_partial_allocation() {
        let mut kv = PagedKvCache::new(cfg(4, 4));
        assert!(kv.try_reserve(1, 48)); // 3 pages
        assert!(!kv.try_reserve(2, 32)); // needs 2, only 1 free
        assert_eq!(kv.pages_in_use(), 3, "failed reserve must not leak");
        assert_eq!(kv.stats().exhaustions, 1);
        // The refused sequence holds nothing, so releasing it is a no-op.
        assert_eq!(kv.release(2), 0);
        // A 1-page ask still fits.
        assert!(kv.try_reserve(3, 16));
        assert_eq!(kv.pages_in_use(), 4);
        assert_eq!(kv.stats().peak_pages, 4);
    }

    #[test]
    fn release_returns_pages_to_the_pool() {
        let mut kv = PagedKvCache::new(cfg(4, 4));
        assert!(kv.try_reserve(1, 64)); // all 4 pages
        assert!(!kv.try_reserve(2, 16));
        assert_eq!(kv.release(1), 4);
        assert_eq!(kv.pages_in_use(), 0);
        assert!(kv.try_reserve(2, 16));
    }

    #[test]
    fn charge_step_spills_only_past_the_l2_budget() {
        let mut kv = PagedKvCache::new(cfg(100, 3));
        assert!(kv.try_reserve(1, 32)); // 2 pages — resident
        assert!(kv.try_reserve(2, 32)); // 2 pages — 1 resident, 1 spilled
        let ms = kv.charge_step();
        let page = kv.config().page_bytes();
        assert_eq!(kv.stats().spill_bytes, page);
        let expect_ms = page as f64 / (100.0 * 1e6);
        assert!((ms - expect_ms).abs() < 1e-12);
        // Oldest-first residency: releasing seq 1 makes seq 2 resident.
        kv.release(1);
        assert_eq!(kv.charge_step(), 0.0);
        assert_eq!(kv.stats().spill_bytes, page);
    }

    #[test]
    fn charge_step_with_everything_resident_is_free() {
        let mut kv = PagedKvCache::new(cfg(10, 10));
        assert!(kv.try_reserve(1, 160));
        assert_eq!(kv.charge_step(), 0.0);
        assert_eq!(kv.stats().spill_bytes, 0);
    }
}
