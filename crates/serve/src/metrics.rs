//! Serving metrics and the exportable event trace.
//!
//! The report answers "how did the run go" (tail latencies, shed
//! counts, batch-size histogram, utilisation); the trace answers "what
//! happened when" as JSON lines, the serving-layer sibling of the
//! profiler's Chrome-trace export.

use crate::stats::LatencyStats;
use dtu_telemetry::{Layer, Span, SpanKind};
use std::collections::BTreeMap;
use std::fmt;

/// One tenant's slice of the report.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Model name it served.
    pub model: String,
    /// Requests that arrived within the horizon.
    pub offered: u64,
    /// Requests completed (the run drains, so admitted = completed).
    pub completed: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Completions past their SLA deadline.
    pub violations: u64,
    /// Batch retry attempts caused by transient injected faults.
    pub retries: u64,
    /// Requests dropped because of faults: their batch exhausted its
    /// retry budget, or their deadline expired during retry backoff.
    /// Distinct from `shed` (admission-control rejections).
    pub fault_dropped: u64,
    /// Processing groups permanently lost to core failures.
    pub groups_lost: u64,
    /// End-to-end latency statistics.
    pub latency: LatencyStats,
    /// Mean queueing delay (dispatch − arrival), ms.
    pub mean_queue_delay_ms: f64,
    /// Fraction of the horizon the tenant's server was busy.
    pub utilization: f64,
    /// Dispatched batch sizes (actual, not padded) → count.
    pub batch_histogram: BTreeMap<usize, u64>,
    /// Groups at the start of the run.
    pub groups_initial: usize,
    /// Groups at the end of the run.
    pub groups_final: usize,
    /// Number of scale-up decisions taken.
    pub scale_ups: u64,
    /// Number of scale-down decisions taken.
    pub scale_downs: u64,
}

/// The outcome of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Arrival horizon, ms.
    pub horizon_ms: f64,
    /// Total requests offered across tenants.
    pub offered: u64,
    /// Total completions.
    pub completed: u64,
    /// Total requests shed at admission.
    pub shed: u64,
    /// Total deadline violations.
    pub violations: u64,
    /// Total batch retries caused by transient injected faults.
    pub retries: u64,
    /// Total requests dropped because of faults (see
    /// [`TenantReport::fault_dropped`]).
    pub fault_dropped: u64,
    /// Fault events that actually fired during the run.
    pub faults_injected: u64,
    /// Aggregate sustained throughput, queries/second.
    pub throughput_qps: f64,
    /// Global latency statistics over all completions.
    pub latency: LatencyStats,
    /// Global batch-size histogram.
    pub batch_histogram: BTreeMap<usize, u64>,
    /// Per-tenant breakdown.
    pub tenants: Vec<TenantReport>,
}

impl ServeReport {
    /// Mean dispatched batch size.
    pub fn mean_batch(&self) -> f64 {
        let (mut reqs, mut batches) = (0u64, 0u64);
        for (&size, &count) in &self.batch_histogram {
            reqs += size as u64 * count;
            batches += count;
        }
        if batches == 0 {
            0.0
        } else {
            reqs as f64 / batches as f64
        }
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serving: {} offered, {} completed, {} shed, {} SLA violations over {:.0} ms",
            self.offered, self.completed, self.shed, self.violations, self.horizon_ms
        )?;
        if self.faults_injected > 0 || self.fault_dropped > 0 || self.retries > 0 {
            writeln!(
                f,
                "  faults: {} injected, {} batch retries, {} requests fault-dropped",
                self.faults_injected, self.retries, self.fault_dropped
            )?;
        }
        writeln!(
            f,
            "  {:.0} QPS sustained, {} (mean batch {:.2})",
            self.throughput_qps,
            self.latency,
            self.mean_batch()
        )?;
        write!(f, "  batch histogram:")?;
        for (size, count) in &self.batch_histogram {
            write!(f, " {size}x{count}")?;
        }
        writeln!(f)?;
        for t in &self.tenants {
            writeln!(
                f,
                "  [{}/{}] {} done, {} shed, {} late, {}, util {:.0}%, groups {}->{} (+{}/-{})",
                t.name,
                t.model,
                t.completed,
                t.shed,
                t.violations,
                t.latency,
                t.utilization * 100.0,
                t.groups_initial,
                t.groups_final,
                t.scale_ups,
                t.scale_downs
            )?;
            if t.retries > 0 || t.fault_dropped > 0 || t.groups_lost > 0 {
                writeln!(
                    f,
                    "    faults: {} retries, {} dropped, {} groups lost",
                    t.retries, t.fault_dropped, t.groups_lost
                )?;
            }
        }
        Ok(())
    }
}

/// What happened at one instant of the run.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEventKind {
    /// A request arrived and was admitted; `depth` is the queue depth
    /// after admission.
    Arrival {
        /// Request id (unique per run).
        req: u64,
        /// Queue depth after admission.
        depth: usize,
    },
    /// A request was rejected by admission control.
    Shed {
        /// Request id.
        req: u64,
        /// Queue depth that triggered the shed.
        depth: usize,
    },
    /// A batch started service.
    Dispatch {
        /// Actual batch size.
        batch: usize,
        /// Batch size the session was compiled at (padding included).
        compiled_batch: usize,
        /// Groups serving the batch.
        groups: usize,
        /// Service latency of the batch, ms.
        service_ms: f64,
    },
    /// A batch finished service; `depth` is the queue depth left.
    Complete {
        /// Actual batch size.
        batch: usize,
        /// Queue depth remaining.
        depth: usize,
    },
    /// The autoscaler changed the tenant's group count.
    Scale {
        /// Groups before.
        from: usize,
        /// Groups after.
        to: usize,
    },
    /// A transient injected fault hit the tenant's in-flight batch.
    Fault {
        /// Fault label (see `dtu_faults::FaultKind::label`).
        label: String,
        /// Failed attempt number for this batch (1-based).
        attempt: u32,
    },
    /// A failed batch was scheduled for re-service after backoff.
    Retry {
        /// Retry number for this batch (1-based).
        attempt: u32,
        /// Backoff waited before the retry, ms.
        backoff_ms: f64,
    },
    /// A core failure permanently removed one of the tenant's groups;
    /// the slot is poisoned so the autoscaler cannot reclaim it.
    GroupLost {
        /// Cluster of the dead group.
        cluster: usize,
        /// Dead group within the cluster.
        group: usize,
        /// Groups the tenant still holds.
        remaining: usize,
    },
    /// Requests were dropped because of faults (retry budget exhausted
    /// or deadlines expired during backoff).
    FaultDrop {
        /// Requests dropped.
        dropped: usize,
    },
    /// A generative prefill step ran: a group of waiting sequences
    /// joined the running batch and processed their prompts.
    Prefill {
        /// Sequences that joined.
        batch: usize,
        /// Longest prompt (tokens) in the joining group — the sequence
        /// length the prefill session ran at.
        tokens: usize,
        /// Step latency, ms.
        service_ms: f64,
    },
    /// A generative decode step ran: every running sequence advanced by
    /// one token against its KV-cache.
    DecodeStep {
        /// Running batch size.
        batch: usize,
        /// Longest context (tokens) in the running batch.
        context: usize,
        /// Step latency, ms (KV spill DMA included).
        service_ms: f64,
        /// KV-cache bytes streamed from L3 during this step.
        spill_bytes: u64,
    },
    /// A running sequence was evicted because the KV-page pool was
    /// exhausted; it re-queues (keeping its progress) and re-prefills
    /// on re-admission.
    Preempt {
        /// Request id of the evicted sequence.
        req: u64,
        /// KV pages it released.
        pages: usize,
    },
    /// An SLO alert transitioned (emitted only by live-monitored runs,
    /// see [`crate::run_serving_live`]); plain runs never produce it,
    /// keeping their traces byte-identical to the pre-observability
    /// path.
    Alert {
        /// The objective that transitioned.
        slo: String,
        /// Alert kind name (`burn-rate`, `resolved`).
        alert: String,
        /// Fast-window burn rate at evaluation time.
        burn_fast: f64,
        /// Slow-window burn rate at evaluation time.
        burn_slow: f64,
        /// Span id of the slowest recent request, when known.
        exemplar: Option<u64>,
    },
}

/// One trace record: time, tenant, event.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeEvent {
    /// Simulated time on the shared telemetry clock, ns.
    pub t_ns: f64,
    /// Tenant index.
    pub tenant: usize,
    /// The event.
    pub kind: ServeEventKind,
}

impl ServeEvent {
    /// Event time in the serving engine's native milliseconds.
    pub fn t_ms(&self) -> f64 {
        dtu_telemetry::clock::ns_to_ms(self.t_ns)
    }
}

/// The run's event log, exportable as JSON lines.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServingTrace {
    /// Records in simulated-time order.
    pub events: Vec<ServeEvent>,
}

impl ServingTrace {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialises the trace as JSON lines (one object per record),
    /// through the shared `dtu-telemetry` JSON emitter. Times are on
    /// the shared nanosecond clock (`t_ns`).
    pub fn to_jsonl(&self) -> String {
        use dtu_telemetry::json::JsonObject;
        let mut out = String::with_capacity(self.events.len() * 64);
        for e in &self.events {
            let o = JsonObject::new()
                .num("t_ns", e.t_ns)
                .int("tenant", e.tenant as i64);
            let o = match &e.kind {
                ServeEventKind::Arrival { req, depth } => o
                    .string("kind", "arrival")
                    .int("req", *req as i64)
                    .int("depth", *depth as i64),
                ServeEventKind::Shed { req, depth } => o
                    .string("kind", "shed")
                    .int("req", *req as i64)
                    .int("depth", *depth as i64),
                ServeEventKind::Dispatch {
                    batch,
                    compiled_batch,
                    groups,
                    service_ms,
                } => o
                    .string("kind", "dispatch")
                    .int("batch", *batch as i64)
                    .int("compiled_batch", *compiled_batch as i64)
                    .int("groups", *groups as i64)
                    .num("service_ms", *service_ms),
                ServeEventKind::Complete { batch, depth } => o
                    .string("kind", "complete")
                    .int("batch", *batch as i64)
                    .int("depth", *depth as i64),
                ServeEventKind::Scale { from, to } => o
                    .string("kind", "scale")
                    .int("from", *from as i64)
                    .int("to", *to as i64),
                ServeEventKind::Fault { label, attempt } => o
                    .string("kind", "fault")
                    .string("label", label)
                    .int("attempt", i64::from(*attempt)),
                ServeEventKind::Retry {
                    attempt,
                    backoff_ms,
                } => o
                    .string("kind", "retry")
                    .int("attempt", i64::from(*attempt))
                    .num("backoff_ms", *backoff_ms),
                ServeEventKind::GroupLost {
                    cluster,
                    group,
                    remaining,
                } => o
                    .string("kind", "group-lost")
                    .int("cluster", *cluster as i64)
                    .int("group", *group as i64)
                    .int("remaining", *remaining as i64),
                ServeEventKind::FaultDrop { dropped } => o
                    .string("kind", "fault-drop")
                    .int("dropped", *dropped as i64),
                ServeEventKind::Prefill {
                    batch,
                    tokens,
                    service_ms,
                } => o
                    .string("kind", "prefill")
                    .int("batch", *batch as i64)
                    .int("tokens", *tokens as i64)
                    .num("service_ms", *service_ms),
                ServeEventKind::DecodeStep {
                    batch,
                    context,
                    service_ms,
                    spill_bytes,
                } => o
                    .string("kind", "decode")
                    .int("batch", *batch as i64)
                    .int("context", *context as i64)
                    .num("service_ms", *service_ms)
                    .int("spill_bytes", *spill_bytes as i64),
                ServeEventKind::Preempt { req, pages } => o
                    .string("kind", "preempt")
                    .int("req", *req as i64)
                    .int("pages", *pages as i64),
                ServeEventKind::Alert {
                    slo,
                    alert,
                    burn_fast,
                    burn_slow,
                    exemplar,
                } => {
                    let o = o
                        .string("kind", "alert")
                        .string("slo", slo)
                        .string("alert", alert)
                        .num("burn_fast", *burn_fast)
                        .num("burn_slow", *burn_slow);
                    match exemplar {
                        Some(id) => o.int("exemplar", *id as i64),
                        None => o,
                    }
                }
            };
            out.push_str(&o.build());
            out.push('\n');
        }
        out
    }

    /// Converts the event log to telemetry spans on `Layer::Serving`
    /// (track = tenant index): dispatches become [`SpanKind::Batch`]
    /// intervals covering their service time, generative steps become
    /// [`SpanKind::Prefill`]/[`SpanKind::Decode`] intervals, everything
    /// else becomes an instantaneous marker.
    pub fn to_spans(&self) -> Vec<Span> {
        self.events.iter().map(event_to_span).collect()
    }

    /// Queue-depth time series for one tenant, reconstructed from the
    /// arrival/dispatch/complete records: `(t_ms, depth_after_event)`.
    pub fn queue_depth_series(&self, tenant: usize) -> Vec<(f64, usize)> {
        let mut series = Vec::new();
        let mut depth = 0usize;
        for e in self.events.iter().filter(|e| e.tenant == tenant) {
            match &e.kind {
                ServeEventKind::Arrival { depth: d, .. } => depth = *d,
                ServeEventKind::Dispatch { batch, .. } => depth = depth.saturating_sub(*batch),
                ServeEventKind::Complete { depth: d, .. } => depth = *d,
                _ => continue,
            }
            series.push((e.t_ms(), depth));
        }
        series
    }
}

/// Maps one trace record to its telemetry span. Shared by
/// [`ServingTrace::to_spans`] and the streaming recorders
/// ([`crate::run_generative_recorded`], [`crate::GenMonitor`]), so a
/// span ring frozen mid-run renders identically to a post-hoc export.
pub fn event_to_span(e: &ServeEvent) -> Span {
    use dtu_telemetry::clock::ms_to_ns;
    match &e.kind {
        ServeEventKind::Dispatch {
            batch,
            groups,
            service_ms,
            ..
        } => Span::new(
            SpanKind::Batch,
            Layer::Serving,
            e.tenant as u32,
            format!("batch {batch} on {groups} groups"),
            e.t_ns,
            e.t_ns + ms_to_ns(*service_ms),
        ),
        ServeEventKind::Arrival { req, .. } => Span::marker(
            Layer::Serving,
            e.tenant as u32,
            format!("arrival {req}"),
            e.t_ns,
        ),
        ServeEventKind::Shed { req, .. } => Span::marker(
            Layer::Serving,
            e.tenant as u32,
            format!("shed {req}"),
            e.t_ns,
        ),
        ServeEventKind::Complete { batch, .. } => Span::marker(
            Layer::Serving,
            e.tenant as u32,
            format!("complete {batch}"),
            e.t_ns,
        ),
        ServeEventKind::Scale { from, to } => Span::marker(
            Layer::Serving,
            e.tenant as u32,
            format!("scale {from}->{to}"),
            e.t_ns,
        ),
        ServeEventKind::Fault { label, attempt } => Span::new(
            SpanKind::Fault,
            Layer::Serving,
            e.tenant as u32,
            format!("fault {label} (attempt {attempt})"),
            e.t_ns,
            e.t_ns,
        ),
        ServeEventKind::Retry {
            attempt,
            backoff_ms,
        } => Span::new(
            SpanKind::Fault,
            Layer::Serving,
            e.tenant as u32,
            format!("retry {attempt}"),
            e.t_ns - ms_to_ns(*backoff_ms),
            e.t_ns,
        ),
        ServeEventKind::GroupLost {
            cluster,
            group,
            remaining,
        } => Span::new(
            SpanKind::Fault,
            Layer::Serving,
            e.tenant as u32,
            format!("group {cluster}.{group} lost ({remaining} left)"),
            e.t_ns,
            e.t_ns,
        ),
        ServeEventKind::FaultDrop { dropped } => Span::marker(
            Layer::Serving,
            e.tenant as u32,
            format!("fault-drop {dropped}"),
            e.t_ns,
        ),
        ServeEventKind::Prefill {
            batch,
            tokens,
            service_ms,
        } => Span::new(
            SpanKind::Prefill,
            Layer::Serving,
            e.tenant as u32,
            format!("prefill {batch} seqs @ {tokens} tok"),
            e.t_ns,
            e.t_ns + ms_to_ns(*service_ms),
        ),
        ServeEventKind::DecodeStep {
            batch,
            context,
            service_ms,
            ..
        } => Span::new(
            SpanKind::Decode,
            Layer::Serving,
            e.tenant as u32,
            format!("decode {batch} seqs @ ctx {context}"),
            e.t_ns,
            e.t_ns + ms_to_ns(*service_ms),
        ),
        ServeEventKind::Preempt { req, pages } => Span::marker(
            Layer::Serving,
            e.tenant as u32,
            format!("preempt {req} (-{pages} pages)"),
            e.t_ns,
        ),
        ServeEventKind::Alert {
            slo,
            alert,
            exemplar,
            ..
        } => Span::new(
            SpanKind::Fault,
            Layer::Serving,
            e.tenant as u32,
            match exemplar {
                Some(id) => format!("alert {alert} {slo} (exemplar req {id})"),
                None => format!("alert {alert} {slo}"),
            },
            e.t_ns,
            e.t_ns,
        ),
    }
}

/// Per-request outcome, recorded when
/// [`crate::ServeConfig::record_requests`] is set.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// Request id.
    pub req: u64,
    /// Tenant index.
    pub tenant: usize,
    /// Arrival time, ms.
    pub arrival_ms: f64,
    /// Completion time, ms.
    pub done_ms: f64,
    /// Absolute deadline, ms (`+inf` when the SLA has none).
    pub deadline_ms: f64,
    /// Whether the completion missed the deadline.
    pub violated: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    use dtu_telemetry::clock::ms_to_ns;

    #[test]
    fn jsonl_is_one_object_per_event() {
        let trace = ServingTrace {
            events: vec![
                ServeEvent {
                    t_ns: ms_to_ns(1.5),
                    tenant: 0,
                    kind: ServeEventKind::Arrival { req: 1, depth: 1 },
                },
                ServeEvent {
                    t_ns: ms_to_ns(2.0),
                    tenant: 0,
                    kind: ServeEventKind::Dispatch {
                        batch: 1,
                        compiled_batch: 1,
                        groups: 1,
                        service_ms: 0.5,
                    },
                },
            ],
        };
        let jsonl = trace.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(jsonl.contains("\"kind\":\"dispatch\""));
        assert!(jsonl.contains("\"t_ns\":1500000"), "shared ns clock");
    }

    #[test]
    fn queue_depth_series_replays_events() {
        let trace = ServingTrace {
            events: vec![
                ServeEvent {
                    t_ns: ms_to_ns(1.0),
                    tenant: 0,
                    kind: ServeEventKind::Arrival { req: 1, depth: 1 },
                },
                ServeEvent {
                    t_ns: ms_to_ns(1.0),
                    tenant: 0,
                    kind: ServeEventKind::Dispatch {
                        batch: 1,
                        compiled_batch: 1,
                        groups: 1,
                        service_ms: 1.0,
                    },
                },
                ServeEvent {
                    t_ns: ms_to_ns(2.0),
                    tenant: 0,
                    kind: ServeEventKind::Complete { batch: 1, depth: 0 },
                },
            ],
        };
        assert_eq!(
            trace.queue_depth_series(0),
            vec![(1.0, 1), (1.0, 0), (2.0, 0)]
        );
        assert!(trace.queue_depth_series(7).is_empty());
    }

    #[test]
    fn spans_from_trace_use_shared_clock() {
        let trace = ServingTrace {
            events: vec![
                ServeEvent {
                    t_ns: ms_to_ns(2.0),
                    tenant: 3,
                    kind: ServeEventKind::Dispatch {
                        batch: 4,
                        compiled_batch: 4,
                        groups: 2,
                        service_ms: 0.5,
                    },
                },
                ServeEvent {
                    t_ns: ms_to_ns(2.1),
                    tenant: 3,
                    kind: ServeEventKind::Shed { req: 9, depth: 8 },
                },
            ],
        };
        let spans = trace.to_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, SpanKind::Batch);
        assert_eq!(spans[0].layer, Layer::Serving);
        assert_eq!(spans[0].track, 3);
        assert_eq!(spans[0].start_ns, 2_000_000.0);
        assert_eq!(spans[0].end_ns, 2_500_000.0);
        assert_eq!(spans[1].kind, SpanKind::Marker);
        assert_eq!(spans[1].duration_ns(), 0.0);
    }

    #[test]
    fn mean_batch_weights_by_count() {
        let mut hist = BTreeMap::new();
        hist.insert(1usize, 2u64);
        hist.insert(4, 1);
        let r = ServeReport {
            horizon_ms: 1.0,
            offered: 6,
            completed: 6,
            shed: 0,
            violations: 0,
            retries: 0,
            fault_dropped: 0,
            faults_injected: 0,
            throughput_qps: 0.0,
            latency: LatencyStats::default(),
            batch_histogram: hist,
            tenants: Vec::new(),
        };
        assert_eq!(r.mean_batch(), 2.0);
        assert!(r.to_string().contains("batch histogram: 1x2 4x1"));
    }
}
