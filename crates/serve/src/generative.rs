//! Continuous (iteration-level) batching for generative workloads.
//!
//! The fixed-batch engine forms a batch, serves it to completion, then
//! forms the next — right for single-shot models, wrong for
//! autoregressive generation where requests produce different token
//! counts and a long answer would hold the whole batch hostage.
//! [`run_generative`] instead advances the system one **iteration** at
//! a time:
//!
//! 1. **Admit** — waiting requests join the running batch whenever
//!    there is concurrency headroom *and* the [`PagedKvCache`] can
//!    reserve their pages. Joiners run one **prefill** step together
//!    (emitting each sequence's first token — the TTFT measurement);
//!    prefill has priority over decode, the standard continuous-batching
//!    choice that keeps TTFT bounded under load.
//! 2. **Decode** — otherwise the running batch advances one token.
//!    Before the step, every sequence reserves the page its next token
//!    may need; on pool exhaustion the **youngest** running sequence is
//!    preempted — pages released, progress kept, re-queued at the front
//!    — until the reservation fits. The oldest sequence is never
//!    preempted, so the system always makes progress. The step is
//!    priced by the [`TokenModel`] plus the allocator's L3 spill charge.
//! 3. **Complete** — sequences that hit their target length leave at
//!    the token boundary, free their pages, and record TTFT / TPOT /
//!    end-to-end samples through the shared [`Sample`] accumulator.
//!
//! Output lengths are drawn per request from a seeded RNG keyed by
//! request id (not by schedule), so the offered workload is identical
//! whatever the batching decisions — and the whole run is a pure
//! function of its [`GenerativeScenario`], byte-stable across `--jobs`
//! and cache temperature.
//!
//! Accounting always balances: `offered == completed + shed +
//! fault_dropped`. Sheds happen only at arrival (queue full, or the
//! request could never fit in the KV pool — admitting it would
//! livelock); preempted requests are *not* sheds, they re-queue and
//! eventually finish because the run drains after the arrival horizon.

use crate::arrival::{ArrivalGen, ArrivalProcess, ServeRng};
use crate::kv::{KvCacheConfig, KvStats, PagedKvCache};
use crate::metrics::{event_to_span, ServeEvent, ServeEventKind, ServingTrace};
use crate::stats::{LatencyStats, Sample};
use crate::token_model::TokenModel;
use crate::ServeError;
use dtu_telemetry::clock::ms_to_ns;
use dtu_telemetry::{Counter, CounterSet, CounterSnapshot, Recorder};
use std::collections::VecDeque;
use std::fmt;

/// Observer of the engine's token boundaries.
///
/// [`run_generative_observed`] calls these hooks *as the run unfolds*,
/// so a live monitor (or a telemetry [`Recorder`] bridge) sees every
/// admit / prefill / decode-step / preempt / exhaust / complete / shed
/// at its simulated time instead of reconstructing them afterwards.
/// Every hook is pure observation: the engine never reads anything
/// back, so an observed run's report and trace are byte-identical to a
/// plain run's.
///
/// All hooks default to no-ops; implement only what you need.
pub trait GenObserver {
    /// Whether the observer wants per-sequence detail. The engine
    /// skips building [`GenJoiner`]/[`GenDecodeStep`] payloads when
    /// this is `false`, keeping the plain path allocation-free.
    fn enabled(&self) -> bool {
        true
    }
    /// Every trace record, in order, the moment it is appended.
    fn on_event(&mut self, _event: &ServeEvent) {}
    /// A request was admitted to the waiting queue.
    fn on_admit(&mut self, _t_ms: f64, _req: u64) {}
    /// A request was shed at arrival (queue full or KV-impossible).
    fn on_shed(&mut self, _t_ms: f64, _req: u64) {}
    /// A prefill step ran over `joiners` from `t_ms` to `end_ms`.
    fn on_prefill(&mut self, _t_ms: f64, _end_ms: f64, _joiners: &[GenJoiner]) {}
    /// A sequence emitted its first token at `t_ms` (the TTFT sample,
    /// recorded at first-token time — not at completion).
    fn on_first_token(&mut self, _t_ms: f64, _req: u64, _ttft_ms: f64) {}
    /// A decode step ran; `step` carries the batch composition and the
    /// KV-allocator pressure around it.
    fn on_decode(&mut self, _step: &GenDecodeStep) {}
    /// A decode-path page reservation was refused on pool exhaustion
    /// (admission-path refusals are ordinary backpressure and are not
    /// reported here).
    fn on_exhaust(&mut self, _t_ms: f64, _req: u64) {}
    /// A running sequence was preempted: pages released, progress
    /// kept, re-queued at the front.
    fn on_preempt(&mut self, _t_ms: f64, _req: u64, _pages: usize) {}
    /// A request completed its full answer.
    #[allow(clippy::too_many_arguments)]
    fn on_complete(
        &mut self,
        _t_ms: f64,
        _req: u64,
        _ttft_ms: f64,
        _tpot_ms: f64,
        _e2e_ms: f64,
        _violated: bool,
    ) {
    }
}

/// The do-nothing observer behind [`run_generative`].
struct NoopObserver;

impl GenObserver for NoopObserver {
    fn enabled(&self) -> bool {
        false
    }
}

/// One sequence joining a prefill step, as seen by a [`GenObserver`].
#[derive(Debug, Clone, PartialEq)]
pub struct GenJoiner {
    /// Request id.
    pub req: u64,
    /// Prompt + already-produced tokens this prefill recomputes.
    pub tokens: usize,
    /// `true` when the sequence was preempted earlier and is resuming.
    pub resumed: bool,
}

/// One decode step, as seen by a [`GenObserver`].
#[derive(Debug, Clone, PartialEq)]
pub struct GenDecodeStep {
    /// Step start, ms.
    pub t_ms: f64,
    /// Step end, ms.
    pub end_ms: f64,
    /// Running batch size.
    pub batch: usize,
    /// Longest context (tokens) in the batch.
    pub context: usize,
    /// L3 spill charge folded into the step, ms.
    pub spill_ms: f64,
    /// KV pages reserved across all sequences after this step's
    /// reservations.
    pub kv_pages_in_use: usize,
    /// The L2-resident share of those pages (the rest stream from L3).
    pub kv_resident_pages: usize,
    /// `(request id, tokens produced after this step)` per running
    /// sequence, oldest first.
    pub reqs: Vec<(u64, usize)>,
}

/// Salt mixing request ids into per-request output-length draws.
/// Id-keyed (not schedule-keyed) so the drawn lengths are independent
/// of batching decisions.
const LEN_RNG_SALT: u64 = 0x6E6F_7465_70A6_E5D7;

/// One generative serving scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerativeScenario {
    /// Arrival horizon, ms (the run then drains to completion).
    pub duration_ms: f64,
    /// Root seed for arrivals and output-length draws.
    pub seed: u64,
    /// Request arrival process.
    pub arrival: ArrivalProcess,
    /// Prompt length of every request, tokens.
    pub prompt_tokens: usize,
    /// Minimum generated tokens per request (inclusive, ≥ 1).
    pub min_new_tokens: usize,
    /// Maximum generated tokens per request (inclusive).
    pub max_new_tokens: usize,
    /// Running-batch concurrency cap (sequences decoded together).
    pub max_concurrency: usize,
    /// Waiting-queue cap; arrivals beyond it are shed.
    pub queue_depth: usize,
    /// Per-request TTFT deadline, ms (`f64::INFINITY` to disable).
    pub ttft_deadline_ms: f64,
    /// Per-request mean-TPOT deadline, ms (`f64::INFINITY` to disable).
    pub tpot_deadline_ms: f64,
    /// KV-cache pool sizing.
    pub kv: KvCacheConfig,
}

impl GenerativeScenario {
    /// Output length drawn for request `id` — a uniform draw in
    /// `[min_new_tokens, max_new_tokens]` from an id-keyed RNG. Pure:
    /// the same (seed, id) always yields the same length.
    pub fn target_tokens(&self, id: u64) -> usize {
        let lo = self.min_new_tokens.max(1);
        let hi = self.max_new_tokens.max(lo);
        let span = (hi - lo + 1) as f64;
        let mut rng = ServeRng::new(self.seed ^ id.wrapping_mul(LEN_RNG_SALT));
        lo + ((rng.next_f64() * span) as usize).min(hi - lo)
    }

    /// KV pages request `id` needs at its largest (prompt + full
    /// answer + the lookahead token decode reserves).
    fn max_pages(&self, id: u64) -> usize {
        self.kv
            .pages_for(self.prompt_tokens + self.target_tokens(id) + 1)
    }
}

/// One in-flight sequence.
#[derive(Debug, Clone)]
struct Seq {
    id: u64,
    arrival_ms: f64,
    /// Prompt tokens (same for every request in a scenario).
    prompt: usize,
    /// Tokens generated so far (survives preemption).
    produced: usize,
    /// Tokens this request will generate in total.
    target: usize,
    /// When the first token was emitted (set by the first prefill).
    first_token_ms: Option<f64>,
}

/// The outcome of one generative run.
#[derive(Debug, Clone, PartialEq)]
pub struct GenReport {
    /// Arrival horizon, ms.
    pub horizon_ms: f64,
    /// Simulated time the run actually ended (drain included), ms.
    pub drained_ms: f64,
    /// Requests that arrived within the horizon.
    pub offered: u64,
    /// Requests that completed their full answer.
    pub completed: u64,
    /// Requests shed at arrival (queue full or KV-impossible).
    pub shed: u64,
    /// Requests dropped by faults (always 0 today; kept so the
    /// accounting identity matches the fixed-batch engine).
    pub fault_dropped: u64,
    /// Completions that violated the TTFT or TPOT deadline.
    pub violations: u64,
    /// Times a running sequence was evicted on KV exhaustion.
    pub preemptions: u64,
    /// Prefill steps executed.
    pub prefill_steps: u64,
    /// Decode steps executed.
    pub decode_steps: u64,
    /// Prompt tokens processed by prefill (recomputation included).
    pub prefill_tokens: u64,
    /// Tokens emitted by decode steps.
    pub decode_tokens: u64,
    /// KV-allocator statistics.
    pub kv: KvStats,
    /// Time-to-first-token statistics (arrival → first token).
    pub ttft: LatencyStats,
    /// Time-per-output-token statistics (per-request mean over its
    /// decode phase).
    pub tpot: LatencyStats,
    /// End-to-end latency statistics (arrival → last token).
    pub e2e: LatencyStats,
    /// Request id of the slowest TTFT, when any request completed.
    pub ttft_exemplar: Option<u64>,
    /// Sustained generated-token throughput over the drained run,
    /// tokens/second.
    pub tokens_per_s: f64,
}

impl GenReport {
    /// The accounting identity every run must satisfy.
    pub fn balanced(&self) -> bool {
        self.offered == self.completed + self.shed + self.fault_dropped
    }

    /// Serialises the report as one JSON object (stable key order).
    pub fn to_json(&self) -> String {
        use dtu_telemetry::json::JsonObject;
        let stats = |s: &LatencyStats| {
            JsonObject::new()
                .int("count", s.count as i64)
                .num("mean_ms", s.mean_ms)
                .num("p50_ms", s.p50_ms)
                .num("p95_ms", s.p95_ms)
                .num("p99_ms", s.p99_ms)
                .num("max_ms", s.max_ms)
                .build()
        };
        let kv = JsonObject::new()
            .int("pages_allocated", self.kv.pages_allocated as i64)
            .int("exhaustions", self.kv.exhaustions as i64)
            .int("spill_bytes", self.kv.spill_bytes as i64)
            .int("peak_pages", self.kv.peak_pages as i64)
            .build();
        let o = JsonObject::new()
            .num("horizon_ms", self.horizon_ms)
            .num("drained_ms", self.drained_ms)
            .int("offered", self.offered as i64)
            .int("completed", self.completed as i64)
            .int("shed", self.shed as i64)
            .int("fault_dropped", self.fault_dropped as i64)
            .int("violations", self.violations as i64)
            .int("preemptions", self.preemptions as i64)
            .int("prefill_steps", self.prefill_steps as i64)
            .int("decode_steps", self.decode_steps as i64)
            .int("prefill_tokens", self.prefill_tokens as i64)
            .int("decode_tokens", self.decode_tokens as i64)
            .raw("kv", &kv)
            .raw("ttft", &stats(&self.ttft))
            .raw("tpot", &stats(&self.tpot))
            .raw("e2e", &stats(&self.e2e))
            .num("tokens_per_s", self.tokens_per_s);
        match self.ttft_exemplar {
            Some(id) => o.int("ttft_exemplar", id as i64),
            None => o,
        }
        .build()
    }

    /// The run's token/KV counters as a registry [`CounterSet`].
    pub fn counters(&self) -> CounterSet {
        let mut set = CounterSet::new();
        set.add(Counter::PrefillTokens, self.prefill_tokens as f64);
        set.add(Counter::DecodeTokens, self.decode_tokens as f64);
        set.add(Counter::KvPagesAllocated, self.kv.pages_allocated as f64);
        set.add(Counter::KvSpillBytes, self.kv.spill_bytes as f64);
        set.add(Counter::KvPreemptions, self.preemptions as f64);
        set.add(Counter::KvExhaustions, self.kv.exhaustions as f64);
        set
    }

    /// Renders the report as Prometheus text exposition: the registry
    /// token/KV counters plus hand-labelled `{tenant=}` series for the
    /// request accounting, TTFT/TPOT/e2e percentiles, throughput, and
    /// KV peak occupancy. Mirrors `FleetReport::to_prometheus`.
    pub fn to_prometheus(&self, tenant: &str) -> String {
        let mut out = self.counters().to_prometheus(&[("tenant", tenant)]);
        let label = format!("tenant=\"{tenant}\"");
        fn series(out: &mut String, name: &str, help: &str, kind: &str, label: &str, v: f64) {
            use std::fmt::Write;
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name}{{{label}}} {v}");
        }
        series(
            &mut out,
            "dtu_gen_offered_total",
            "Generative requests offered within the horizon",
            "counter",
            &label,
            self.offered as f64,
        );
        series(
            &mut out,
            "dtu_gen_completed_total",
            "Generative requests that completed their full answer",
            "counter",
            &label,
            self.completed as f64,
        );
        series(
            &mut out,
            "dtu_gen_shed_total",
            "Generative requests shed at arrival",
            "counter",
            &label,
            self.shed as f64,
        );
        series(
            &mut out,
            "dtu_gen_violations_total",
            "Completions that violated the TTFT or TPOT deadline",
            "counter",
            &label,
            self.violations as f64,
        );
        series(
            &mut out,
            "dtu_gen_preemptions_total",
            "Running sequences preempted on KV exhaustion",
            "counter",
            &label,
            self.preemptions as f64,
        );
        series(
            &mut out,
            "dtu_gen_ttft_p50_ms",
            "Median time-to-first-token",
            "gauge",
            &label,
            self.ttft.p50_ms,
        );
        series(
            &mut out,
            "dtu_gen_ttft_p99_ms",
            "99th-percentile time-to-first-token",
            "gauge",
            &label,
            self.ttft.p99_ms,
        );
        series(
            &mut out,
            "dtu_gen_tpot_p50_ms",
            "Median time-per-output-token",
            "gauge",
            &label,
            self.tpot.p50_ms,
        );
        series(
            &mut out,
            "dtu_gen_tpot_p99_ms",
            "99th-percentile time-per-output-token",
            "gauge",
            &label,
            self.tpot.p99_ms,
        );
        series(
            &mut out,
            "dtu_gen_e2e_p99_ms",
            "99th-percentile end-to-end latency",
            "gauge",
            &label,
            self.e2e.p99_ms,
        );
        series(
            &mut out,
            "dtu_gen_tokens_per_s",
            "Sustained generated-token throughput",
            "gauge",
            &label,
            self.tokens_per_s,
        );
        series(
            &mut out,
            "dtu_gen_kv_peak_pages",
            "Peak KV pages reserved at once",
            "gauge",
            &label,
            self.kv.peak_pages as f64,
        );
        out
    }
}

impl fmt::Display for GenReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "generative: {} offered, {} completed, {} shed, {} late over {:.0} ms (drained {:.0} ms)",
            self.offered, self.completed, self.shed, self.violations, self.horizon_ms,
            self.drained_ms
        )?;
        writeln!(
            f,
            "  {} prefill steps ({} tokens), {} decode steps ({} tokens), {:.0} tok/s",
            self.prefill_steps,
            self.prefill_tokens,
            self.decode_steps,
            self.decode_tokens,
            self.tokens_per_s
        )?;
        writeln!(
            f,
            "  kv: {} pages allocated (peak {}), {} exhaustions, {} preemptions, {} spill bytes",
            self.kv.pages_allocated,
            self.kv.peak_pages,
            self.kv.exhaustions,
            self.preemptions,
            self.kv.spill_bytes
        )?;
        writeln!(f, "  ttft {}", self.ttft)?;
        writeln!(f, "  tpot {}", self.tpot)?;
        write!(f, "  e2e  {}", self.e2e)
    }
}

/// Report plus the run's event trace.
#[derive(Debug, Clone, PartialEq)]
pub struct GenOutcome {
    /// Aggregated statistics.
    pub report: GenReport,
    /// Ordered event log (arrivals, sheds, prefill/decode steps,
    /// preemptions, completions).
    pub trace: ServingTrace,
}

struct GenEngine<'m> {
    model: &'m mut dyn TokenModel,
    obs: &'m mut dyn GenObserver,
    kv: PagedKvCache,
    waiting: VecDeque<Seq>,
    running: Vec<Seq>,
    trace: ServingTrace,
    // Accounting.
    offered: u64,
    shed: u64,
    violations: u64,
    preemptions: u64,
    prefill_steps: u64,
    decode_steps: u64,
    prefill_tokens: u64,
    decode_tokens: u64,
    ttft: Sample,
    tpot: Sample,
    e2e: Sample,
}

impl<'m> GenEngine<'m> {
    fn event(&mut self, t: f64, kind: ServeEventKind) {
        let e = ServeEvent {
            t_ns: ms_to_ns(t),
            tenant: 0,
            kind,
        };
        self.obs.on_event(&e);
        self.trace.events.push(e);
    }

    /// Admits one arrival, shedding on queue overflow or a KV ask the
    /// pool could never satisfy (admitting it would livelock the
    /// preemption loop).
    fn arrive(&mut self, sc: &GenerativeScenario, id: u64, t: f64) {
        self.offered += 1;
        let impossible = sc.max_pages(id) > sc.kv.total_pages;
        if self.waiting.len() >= sc.queue_depth || impossible {
            self.shed += 1;
            self.event(
                t,
                ServeEventKind::Shed {
                    req: id,
                    depth: self.waiting.len(),
                },
            );
            self.obs.on_shed(t, id);
            return;
        }
        self.waiting.push_back(Seq {
            id,
            arrival_ms: t,
            prompt: sc.prompt_tokens,
            produced: 0,
            target: sc.target_tokens(id),
            first_token_ms: None,
        });
        self.event(
            t,
            ServeEventKind::Arrival {
                req: id,
                depth: self.waiting.len(),
            },
        );
        self.obs.on_admit(t, id);
    }

    /// Completes a sequence at time `t`: frees pages, records samples,
    /// checks deadlines.
    fn complete(&mut self, sc: &GenerativeScenario, seq: Seq, t: f64) {
        self.kv.release(seq.id);
        let first = seq.first_token_ms.expect("completed without prefill");
        let ttft = first - seq.arrival_ms;
        // Mean time per output token after the first; a 1-token answer
        // has no decode phase and contributes a zero TPOT.
        let tpot = if seq.target > 1 {
            (t - first) / (seq.target - 1) as f64
        } else {
            0.0
        };
        self.ttft.record(ttft, seq.id);
        self.tpot.record(tpot, seq.id);
        self.e2e.record(t - seq.arrival_ms, seq.id);
        let violated = ttft > sc.ttft_deadline_ms || tpot > sc.tpot_deadline_ms;
        if violated {
            self.violations += 1;
        }
        self.event(
            t,
            ServeEventKind::Complete {
                batch: 1,
                depth: self.waiting.len(),
            },
        );
        self.obs
            .on_complete(t, seq.id, ttft, tpot, t - seq.arrival_ms, violated);
    }

    /// One prefill step over `joiners` (which already hold their KV
    /// reservations). Returns the step's end time.
    fn prefill(
        &mut self,
        sc: &GenerativeScenario,
        joiners: Vec<Seq>,
        t: f64,
    ) -> Result<f64, ServeError> {
        let batch = joiners.len();
        // Resumed sequences recompute prompt + everything they already
        // produced; the step runs at the longest sequence in the group.
        let tokens = joiners
            .iter()
            .map(|s| s.prompt + s.produced)
            .max()
            .expect("prefill with no joiners");
        let ms = self.model.prefill_ms(batch, tokens)?;
        let end = t + ms;
        self.prefill_steps += 1;
        self.prefill_tokens += joiners
            .iter()
            .map(|s| (s.prompt + s.produced) as u64)
            .sum::<u64>();
        self.event(
            t,
            ServeEventKind::Prefill {
                batch,
                tokens,
                service_ms: ms,
            },
        );
        if self.obs.enabled() {
            let info: Vec<GenJoiner> = joiners
                .iter()
                .map(|s| GenJoiner {
                    req: s.id,
                    tokens: s.prompt + s.produced,
                    resumed: s.produced > 0,
                })
                .collect();
            self.obs.on_prefill(t, end, &info);
        }
        for mut seq in joiners {
            if seq.first_token_ms.is_none() {
                // Prefill emits the first token.
                seq.first_token_ms = Some(end);
                seq.produced = 1;
                self.obs.on_first_token(end, seq.id, end - seq.arrival_ms);
            }
            if seq.produced >= seq.target {
                self.complete(sc, seq, end);
            } else {
                self.running.push(seq);
            }
        }
        Ok(end)
    }

    /// One decode step over the running batch. Returns the step's end
    /// time.
    fn decode(&mut self, sc: &GenerativeScenario, t: f64) -> Result<f64, ServeError> {
        // Reserve next-token pages oldest-first; preempt the youngest
        // on exhaustion. The oldest sequence can always win this fight
        // (admission guarantees a lone sequence fits), so the loop
        // terminates with at least one survivor.
        let mut i = 0;
        while i < self.running.len() {
            let need = self.running[i].prompt + self.running[i].produced + 1;
            let id = self.running[i].id;
            if self.kv.try_reserve(id, need) {
                i += 1;
                continue;
            }
            self.obs.on_exhaust(t, id);
            let victim = self.running.pop().expect("non-empty running batch");
            let pages = self.kv.release(victim.id);
            self.preemptions += 1;
            self.event(
                t,
                ServeEventKind::Preempt {
                    req: victim.id,
                    pages,
                },
            );
            self.obs.on_preempt(t, victim.id, pages);
            // Keep progress; rejoin at the queue front so it re-admits
            // (and recomputes its KV via prefill) at the next boundary.
            self.waiting.push_front(victim);
        }
        let batch = self.running.len();
        let context = self
            .running
            .iter()
            .map(|s| s.prompt + s.produced)
            .max()
            .expect("decode with empty batch");
        let spill_before = self.kv.stats().spill_bytes;
        let spill_ms = self.kv.charge_step();
        let spilled = self.kv.stats().spill_bytes - spill_before;
        let ms = self.model.decode_ms(batch, context)? + spill_ms;
        let end = t + ms;
        self.decode_steps += 1;
        self.decode_tokens += batch as u64;
        self.event(
            t,
            ServeEventKind::DecodeStep {
                batch,
                context,
                service_ms: ms,
                spill_bytes: spilled,
            },
        );
        if self.obs.enabled() {
            let pages_in_use = self.kv.pages_in_use();
            let step = GenDecodeStep {
                t_ms: t,
                end_ms: end,
                batch,
                context,
                spill_ms,
                kv_pages_in_use: pages_in_use,
                kv_resident_pages: pages_in_use.min(sc.kv.l2_pages),
                reqs: self
                    .running
                    .iter()
                    .map(|s| (s.id, s.produced + 1))
                    .collect(),
            };
            self.obs.on_decode(&step);
        }
        let mut idx = 0;
        while idx < self.running.len() {
            self.running[idx].produced += 1;
            if self.running[idx].produced >= self.running[idx].target {
                let seq = self.running.remove(idx);
                self.complete(sc, seq, end);
            } else {
                idx += 1;
            }
        }
        Ok(end)
    }
}

/// Runs one generative serving scenario to completion.
///
/// Arrivals are generated within `sc.duration_ms`; every admitted
/// request then runs to completion (the queues drain), so the
/// accounting identity `offered == completed + shed + fault_dropped`
/// holds on every return.
///
/// # Errors
///
/// Configuration problems and compile/simulate failures from the token
/// model surface as [`ServeError`].
pub fn run_generative(
    sc: &GenerativeScenario,
    model: &mut dyn TokenModel,
) -> Result<GenOutcome, ServeError> {
    run_generative_observed(sc, model, &mut NoopObserver)
}

/// Runs one generative serving scenario to completion with a
/// [`GenObserver`] receiving every token-boundary event as it happens.
///
/// The observer is strictly observational: for any observer, the
/// returned report and trace are identical to [`run_generative`]'s.
///
/// # Errors
///
/// As for [`run_generative`].
pub fn run_generative_observed(
    sc: &GenerativeScenario,
    model: &mut dyn TokenModel,
    obs: &mut dyn GenObserver,
) -> Result<GenOutcome, ServeError> {
    if sc.max_concurrency == 0 {
        return Err(ServeError::Config(
            "max_concurrency must be at least 1".into(),
        ));
    }
    if sc.prompt_tokens == 0 {
        return Err(ServeError::Config(
            "prompt_tokens must be at least 1".into(),
        ));
    }
    if sc.kv.total_pages == 0 {
        return Err(ServeError::Config("KV pool has zero pages".into()));
    }
    let mut eng = GenEngine {
        model,
        obs,
        kv: PagedKvCache::new(sc.kv),
        waiting: VecDeque::new(),
        running: Vec::new(),
        trace: ServingTrace::default(),
        offered: 0,
        shed: 0,
        violations: 0,
        preemptions: 0,
        prefill_steps: 0,
        decode_steps: 0,
        prefill_tokens: 0,
        decode_tokens: 0,
        ttft: Sample::new(),
        tpot: Sample::new(),
        e2e: Sample::new(),
    };
    let mut gen = ArrivalGen::new(sc.arrival.clone(), sc.seed);
    let mut next_id = 0u64;
    let first = gen.next_after(0.0);
    let mut next_arrival = (first <= sc.duration_ms).then_some(first);
    let mut t = 0.0f64;
    loop {
        // Drain every arrival at or before the current time.
        while let Some(a) = next_arrival {
            if a > t {
                break;
            }
            eng.arrive(sc, next_id, a);
            next_id += 1;
            let n = gen.next_after(a);
            next_arrival = (n <= sc.duration_ms).then_some(n);
        }
        if eng.running.is_empty() && eng.waiting.is_empty() {
            match next_arrival {
                // Idle: jump to the next arrival.
                Some(a) => {
                    t = t.max(a);
                    continue;
                }
                None => break,
            }
        }
        // Admission (prefill priority): pull waiting sequences while
        // concurrency and KV pages allow.
        let mut joiners: Vec<Seq> = Vec::new();
        while eng.running.len() + joiners.len() < sc.max_concurrency {
            let Some(front) = eng.waiting.front() else {
                break;
            };
            let need = front.prompt + front.produced + 1;
            let id = front.id;
            if eng.kv.try_reserve(id, need) {
                joiners.push(eng.waiting.pop_front().expect("front exists"));
            } else {
                break;
            }
        }
        if !joiners.is_empty() {
            t = eng.prefill(sc, joiners, t)?;
            continue;
        }
        if eng.running.is_empty() {
            // Waiting sequences exist but none fit (pool exhausted by
            // nothing running — impossible unless queue-only churn);
            // jump to the next arrival or fail-safe break.
            match next_arrival {
                Some(a) if a > t => {
                    t = a;
                    continue;
                }
                _ => {
                    return Err(ServeError::Config(
                        "KV pool cannot admit any waiting sequence".into(),
                    ))
                }
            }
        }
        t = eng.decode(sc, t)?;
    }
    let drained_ms = t;
    let (_, ttft) = eng.ttft.clone().into_parts();
    let ttft_exemplar = eng.ttft.exemplar();
    let (_, tpot) = eng.tpot.into_parts();
    let (_, e2e) = eng.e2e.into_parts();
    let completed = ttft.count;
    let report = GenReport {
        horizon_ms: sc.duration_ms,
        drained_ms,
        offered: eng.offered,
        completed,
        shed: eng.shed,
        fault_dropped: 0,
        violations: eng.violations,
        preemptions: eng.preemptions,
        prefill_steps: eng.prefill_steps,
        decode_steps: eng.decode_steps,
        prefill_tokens: eng.prefill_tokens,
        decode_tokens: eng.decode_tokens,
        kv: eng.kv.stats(),
        ttft,
        tpot,
        e2e,
        ttft_exemplar,
        tokens_per_s: if drained_ms > 0.0 {
            eng.decode_tokens as f64 / (drained_ms / 1e3)
        } else {
            0.0
        },
    };
    debug_assert!(report.balanced(), "accounting identity violated");
    Ok(GenOutcome {
        report,
        trace: eng.trace,
    })
}

/// Bridges the observer hooks onto a telemetry [`Recorder`]: every
/// trace record becomes its span (via the shared
/// [`event_to_span`] mapping) the moment the engine emits it.
struct SpanObserver<'r> {
    rec: &'r mut dyn Recorder,
}

impl GenObserver for SpanObserver<'_> {
    fn on_event(&mut self, event: &ServeEvent) {
        self.rec.record(event_to_span(event));
    }
}

/// Runs a generative scenario with a telemetry [`Recorder`] attached:
/// the event log becomes `Layer::Serving` spans (prefill and decode
/// steps as intervals, preemptions and sheds as markers), emitted
/// *during* the run as each event lands — a recorder with a bounded
/// ring therefore holds the most recent window of the run, not a
/// post-hoc replay. The run's final token/KV counters land as one
/// [`CounterSnapshot`] labelled `generative`. With a disabled recorder
/// this is exactly [`run_generative`].
///
/// # Errors
///
/// As for [`run_generative`].
pub fn run_generative_recorded(
    sc: &GenerativeScenario,
    model: &mut dyn TokenModel,
    rec: &mut dyn Recorder,
) -> Result<GenOutcome, ServeError> {
    if !rec.enabled() {
        return run_generative(sc, model);
    }
    let out = {
        let mut obs = SpanObserver { rec };
        run_generative_observed(sc, model, &mut obs)?
    };
    let mut set = CounterSet::new();
    let r = &out.report;
    set.add(Counter::PrefillTokens, r.prefill_tokens as f64);
    set.add(Counter::DecodeTokens, r.decode_tokens as f64);
    set.add(Counter::KvPagesAllocated, r.kv.pages_allocated as f64);
    set.add(Counter::KvSpillBytes, r.kv.spill_bytes as f64);
    set.add(Counter::KvPreemptions, r.preemptions as f64);
    set.add(Counter::KvExhaustions, r.kv.exhaustions as f64);
    rec.snapshot(CounterSnapshot {
        at_ns: ms_to_ns(r.drained_ms),
        label: "generative".into(),
        set,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token_model::AnalyticTokenModel;

    fn kv(total: usize, l2: usize) -> KvCacheConfig {
        KvCacheConfig {
            page_tokens: 16,
            bytes_per_token: 1024,
            total_pages: total,
            l2_pages: l2,
            l3_gb_per_s: 100.0,
        }
    }

    fn scenario(total_pages: usize) -> GenerativeScenario {
        GenerativeScenario {
            duration_ms: 300.0,
            seed: 7,
            arrival: ArrivalProcess::Poisson { qps: 120.0 },
            prompt_tokens: 64,
            min_new_tokens: 4,
            max_new_tokens: 48,
            max_concurrency: 8,
            queue_depth: 64,
            ttft_deadline_ms: f64::INFINITY,
            tpot_deadline_ms: f64::INFINITY,
            kv: kv(total_pages, 16),
        }
    }

    #[test]
    fn accounting_balances_and_tokens_flow() {
        let sc = scenario(4096);
        let mut m = AnalyticTokenModel::new("m");
        let out = run_generative(&sc, &mut m).unwrap();
        let r = &out.report;
        assert!(r.balanced(), "{r:?}");
        assert!(r.offered > 0);
        assert!(r.completed > 0);
        assert!(r.decode_tokens > 0);
        assert!(r.prefill_tokens >= r.completed * 64);
        assert_eq!(r.ttft.count, r.completed);
        assert_eq!(r.tpot.count, r.completed);
        assert!(r.ttft.p50_ms > 0.0);
        assert!(r.tokens_per_s > 0.0);
    }

    #[test]
    fn run_is_deterministic() {
        let sc = scenario(4096);
        let a = run_generative(&sc, &mut AnalyticTokenModel::new("m")).unwrap();
        let b = run_generative(&sc, &mut AnalyticTokenModel::new("m")).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.report.to_json(), b.report.to_json());
    }

    #[test]
    fn target_lengths_are_schedule_independent() {
        let sc = scenario(4096);
        let tight = scenario(40); // wildly different schedule
        for id in 0..50 {
            assert_eq!(sc.target_tokens(id), tight.target_tokens(id));
            assert!((4..=48).contains(&sc.target_tokens(id)));
        }
    }

    #[test]
    fn constrained_pool_preempts_and_still_balances() {
        // 40 pages ≈ 640 tokens of KV across up to 8 concurrent seqs
        // needing up to 113 tokens (8 pages) each — at saturating
        // arrival rates the full batch wants ~64 pages, guaranteed
        // contention.
        let mut sc = scenario(40);
        sc.arrival = ArrivalProcess::Poisson { qps: 2000.0 };
        sc.duration_ms = 100.0;
        sc.queue_depth = 512;
        let mut m = AnalyticTokenModel::new("m");
        let out = run_generative(&sc, &mut m).unwrap();
        let r = &out.report;
        assert!(r.balanced(), "{r:?}");
        assert!(
            r.preemptions > 0 || r.kv.exhaustions > 0,
            "constrained pool should show pressure: {r:?}"
        );
        assert!(r.completed > 0, "preemption must not deadlock completion");
        // Preempted sequences re-prefill, so prefill tokens exceed the
        // bare completed * prompt.
        assert!(r.prefill_steps >= r.completed / sc.max_concurrency as u64);
    }

    #[test]
    fn impossible_requests_are_shed_not_livelocked() {
        // Pool smaller than a single request's worst case.
        let mut sc = scenario(4);
        sc.min_new_tokens = 100;
        sc.max_new_tokens = 100;
        let mut m = AnalyticTokenModel::new("m");
        let out = run_generative(&sc, &mut m).unwrap();
        let r = &out.report;
        assert!(r.balanced());
        assert_eq!(r.completed, 0);
        assert_eq!(r.shed, r.offered);
    }

    #[test]
    fn ttft_deadline_counts_violations() {
        let mut sc = scenario(4096);
        sc.ttft_deadline_ms = 1e-9; // everything is late
        let out = run_generative(&sc, &mut AnalyticTokenModel::new("m")).unwrap();
        assert_eq!(out.report.violations, out.report.completed);
    }

    #[test]
    fn one_token_answers_complete_at_prefill() {
        let mut sc = scenario(4096);
        sc.min_new_tokens = 1;
        sc.max_new_tokens = 1;
        let out = run_generative(&sc, &mut AnalyticTokenModel::new("m")).unwrap();
        let r = &out.report;
        assert!(r.completed > 0);
        assert_eq!(r.decode_steps, 0);
        assert_eq!(r.decode_tokens, 0);
        assert_eq!(r.tpot.max_ms, 0.0, "no decode phase, zero TPOT");
    }

    #[test]
    fn trace_records_prefill_decode_and_preempt_kinds() {
        let sc = scenario(40);
        let out = run_generative(&sc, &mut AnalyticTokenModel::new("m")).unwrap();
        let has = |f: &dyn Fn(&ServeEventKind) -> bool| out.trace.events.iter().any(|e| f(&e.kind));
        assert!(has(&|k| matches!(k, ServeEventKind::Prefill { .. })));
        assert!(has(&|k| matches!(k, ServeEventKind::DecodeStep { .. })));
        if out.report.preemptions > 0 {
            assert!(has(&|k| matches!(k, ServeEventKind::Preempt { .. })));
        }
        // Spans build cleanly from the generative kinds.
        assert_eq!(out.trace.to_spans().len(), out.trace.len());
        assert!(out.trace.to_jsonl().contains("\"kind\":\"decode\""));
    }

    #[test]
    fn recorded_run_matches_plain_and_snapshots_counters() {
        use dtu_telemetry::TraceBuffer;
        let sc = scenario(4096);
        let plain = run_generative(&sc, &mut AnalyticTokenModel::new("m")).unwrap();
        let mut buf = TraceBuffer::new();
        let rec =
            run_generative_recorded(&sc, &mut AnalyticTokenModel::new("m"), &mut buf).unwrap();
        assert_eq!(plain.report, rec.report);
        assert!(!buf.spans().is_empty());
        let snap = buf
            .snapshots()
            .iter()
            .find(|s| s.label == "generative")
            .expect("generative counter snapshot");
        assert_eq!(
            snap.set.get(Counter::DecodeTokens),
            rec.report.decode_tokens as f64
        );
        assert_eq!(
            snap.set.get(Counter::PrefillTokens),
            rec.report.prefill_tokens as f64
        );
    }

    #[test]
    fn disabled_recorder_is_invariant_and_free() {
        use dtu_telemetry::NullRecorder;
        let sc = scenario(4096);
        let plain = run_generative(&sc, &mut AnalyticTokenModel::new("m")).unwrap();
        let mut null = NullRecorder;
        let rec =
            run_generative_recorded(&sc, &mut AnalyticTokenModel::new("m"), &mut null).unwrap();
        assert_eq!(plain.report, rec.report);
        assert_eq!(plain.trace, rec.trace);
        assert_eq!(plain.report.to_json(), rec.report.to_json());
    }

    #[test]
    fn spans_stream_during_the_run_not_post_hoc() {
        use dtu_telemetry::FlightRecorder;
        // A bounded ring much smaller than the event count: if spans
        // were replayed after the run it would hold an arbitrary
        // prefix; streamed during the run it holds exactly the most
        // recent window, in event order.
        let mut sc = scenario(4096);
        sc.duration_ms = 120.0;
        let mut ring = FlightRecorder::new(64);
        let rec =
            run_generative_recorded(&sc, &mut AnalyticTokenModel::new("m"), &mut ring).unwrap();
        assert!(rec.trace.len() > 64, "scenario must overflow the ring");
        let all = rec.trace.to_spans();
        let expected = &all[all.len() - 64..];
        let got: Vec<_> = ring.spans().cloned().collect();
        assert_eq!(got.len(), 64);
        assert_eq!(got.as_slice(), expected);
    }

    #[test]
    fn prometheus_exposition_is_conformant() {
        use std::collections::HashSet;
        // Constrained KV pool so the sparse registry counters
        // (preemptions, exhaustions, spill) are nonzero and exposed.
        let mut sc = scenario(40);
        sc.arrival = ArrivalProcess::Poisson { qps: 2000.0 };
        sc.duration_ms = 100.0;
        sc.queue_depth = 512;
        let out = run_generative(&sc, &mut AnalyticTokenModel::new("m")).unwrap();
        assert!(out.report.preemptions > 0);
        let text = out.report.to_prometheus("tiny");
        assert!(text.ends_with('\n'));
        let (mut helped, mut typed) = (HashSet::new(), HashSet::new());
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split_whitespace().next().unwrap();
                assert!(helped.insert(name.to_string()), "duplicate HELP {name}");
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().unwrap();
                let kind = it.next().unwrap();
                assert!(helped.contains(name), "TYPE before HELP for {name}");
                assert!(matches!(kind, "counter" | "gauge"), "bad type {kind}");
                assert!(typed.insert(name.to_string()), "duplicate TYPE {name}");
            } else {
                let name = line.split(['{', ' ']).next().unwrap();
                assert!(name.starts_with("dtu_"), "unprefixed series {name}");
                assert!(typed.contains(name), "sample before TYPE for {name}");
                assert!(line.contains("tenant=\"tiny\""), "unlabelled: {line}");
                let value = line.rsplit(' ').next().unwrap();
                assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
            }
        }
        for series in [
            "dtu_gen_offered_total",
            "dtu_gen_completed_total",
            "dtu_gen_ttft_p99_ms",
            "dtu_gen_tpot_p99_ms",
            "dtu_gen_tokens_per_s",
            "dtu_gen_kv_peak_pages",
            "dtu_kv_preemptions_total",
            "dtu_kv_exhaustions_total",
        ] {
            assert!(typed.contains(series), "missing series {series}");
        }
    }

    #[test]
    fn report_json_is_parseable_shape() {
        let sc = scenario(4096);
        let out = run_generative(&sc, &mut AnalyticTokenModel::new("m")).unwrap();
        let js = out.report.to_json();
        assert!(js.starts_with('{') && js.ends_with('}'));
        for key in [
            "\"offered\"",
            "\"ttft\"",
            "\"tpot\"",
            "\"e2e\"",
            "\"kv\"",
            "\"tokens_per_s\"",
        ] {
            assert!(js.contains(key), "missing {key} in {js}");
        }
        assert!(out.report.to_string().contains("ttft"));
    }
}
