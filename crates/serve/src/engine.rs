//! The discrete-event serving engine.
//!
//! One global event queue drives per-tenant request queues through
//! admission control, dynamic batch formation, service on the tenant's
//! processing groups, and delay-driven elastic scaling. Time is
//! simulated milliseconds; the run is a pure function of its
//! configuration (seeded arrivals, deterministic tie-breaking), so two
//! runs with the same seed are bit-identical.

use crate::config::{RetryPolicy, ServeConfig, TenantSpec};
use crate::live::LiveMonitor;
use crate::metrics::{
    RequestOutcome, ServeEvent, ServeEventKind, ServeReport, ServingTrace, TenantReport,
};
use crate::model::ServiceModel;
use crate::stats::{LatencyStats, Sample};
use crate::{ArrivalGen, ServeError};
use dtu_compiler::Placement;
use dtu_faults::{FaultError, FaultRng, FaultSession};
use dtu_sim::{ChipConfig, GroupId, SimError};
use dtu_telemetry::AlertEvent;
use dtu_telemetry::{clock::ms_to_ns, Layer, Recorder, Span, SpanKind};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Everything a serving run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Aggregated metrics.
    pub report: ServeReport,
    /// The event log (JSONL-exportable).
    pub trace: ServingTrace,
    /// Per-request outcomes; populated only when
    /// [`ServeConfig::record_requests`] is set.
    pub requests: Vec<RequestOutcome>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EvKind {
    /// A request arrives for `tenant`.
    Arrival { tenant: usize },
    /// The batching timeout for `tenant` fires; stale if the epoch has
    /// moved on (a dispatch happened since it was armed).
    BatchDeadline { tenant: usize, epoch: u64 },
    /// `tenant`'s in-flight batch completes.
    Complete { tenant: usize },
    /// `tenant`'s failed batch retries after backoff.
    Retry {
        tenant: usize,
        attempt: u32,
        backoff_ms: f64,
    },
}

/// Service-time slowdown applied while a thermal-throttle window pins
/// the tenant's groups to the frequency floor (the i20's nominal
/// 1400 MHz over its 1000 MHz floor).
const THERMAL_SLOWDOWN: f64 = 1.4;

/// Decorrelates the retry-jitter stream from the arrival streams that
/// also derive from the run seed.
const RETRY_RNG_SALT: u64 = 0xFA17_7E57_BACC_0FF5;

#[derive(Debug, Clone, Copy)]
struct Ev {
    t: f64,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for Ev {}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest time (then
        // the earliest insertion) pops first — deterministic total
        // order, no NaNs by construction.
        other
            .t
            .partial_cmp(&self.t)
            .expect("finite event times")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy)]
struct Request {
    id: u64,
    arrival_ms: f64,
    deadline_ms: f64,
}

struct Tenant {
    spec: TenantSpec,
    gen: ArrivalGen,
    queue: VecDeque<Request>,
    busy: bool,
    /// Bumps on every dispatch; invalidates armed batch deadlines.
    epoch: u64,
    /// Whether a BatchDeadline event is armed for the current epoch.
    armed: bool,
    groups: Vec<GroupId>,
    in_flight: Vec<Request>,
    /// Smoothed queueing delay driving scale decisions, ms.
    delay_ema: f64,
    last_scale_ms: f64,
    // Accounting.
    offered: u64,
    shed: u64,
    violations: u64,
    latencies: Sample,
    queue_delay_sum: f64,
    busy_ms: f64,
    batch_hist: BTreeMap<usize, u64>,
    groups_initial: usize,
    scale_ups: u64,
    scale_downs: u64,
    /// Failed attempts of the current in-flight batch.
    attempt: u32,
    retries: u64,
    fault_dropped: u64,
    groups_lost: u64,
}

/// The engine: event heap plus per-tenant state plus the group pool.
struct Engine<'m, 's, 'l> {
    heap: BinaryHeap<Ev>,
    seq: u64,
    next_req: u64,
    tenants: Vec<Tenant>,
    /// `slots[cluster][group]` = owning tenant, if claimed.
    slots: Vec<Vec<Option<usize>>>,
    models: &'m mut [&'s mut dyn ServiceModel],
    trace: ServingTrace,
    requests: Vec<RequestOutcome>,
    record_requests: bool,
    /// Fault schedule; `None` for an empty plan, so fault-free runs
    /// never touch any of the injection paths.
    faults: Option<FaultSession>,
    /// `dead[cluster][group]`: slots poisoned by core failures — never
    /// free, whatever `slots` says.
    dead: Vec<Vec<bool>>,
    groups_per_cluster: usize,
    retry: RetryPolicy,
    /// Jitter source for retry backoff; drawn from only when a retry
    /// is actually scheduled.
    rng: FaultRng,
    /// Live observability sidecar. Strictly observational: every hook
    /// call only reads engine state, so a monitored run computes the
    /// exact same aggregates as a plain one (its trace additionally
    /// carries [`ServeEventKind::Alert`] records).
    live: Option<&'l mut LiveMonitor>,
}

/// Runs one serving scenario to completion.
///
/// Arrivals are generated within `cfg.duration_ms`; every admitted
/// request runs to completion (the queue drains), mirroring how the
/// closed-form model accounts its horizon.
///
/// # Errors
///
/// Configuration problems (no tenants, bad model index, more groups
/// requested than the chip has) and compile/simulate failures from the
/// service models surface as [`ServeError`].
pub fn run_serving(
    cfg: &ServeConfig,
    chip: &ChipConfig,
    models: &mut [&mut dyn ServiceModel],
) -> Result<ServeOutcome, ServeError> {
    let mut engine = Engine::new(cfg, chip, models)?;
    engine.seed_arrivals(cfg);
    while let Some(ev) = engine.heap.pop() {
        engine.step(ev, cfg)?;
    }
    Ok(engine.finish(cfg))
}

/// Runs a serving scenario with a telemetry [`Recorder`] attached.
///
/// In addition to the normal [`ServeOutcome`], the run's event log is
/// recorded as `Layer::Serving` spans on the shared nanosecond clock:
/// one [`SpanKind::Request`] interval per request (arrival →
/// completion), one [`SpanKind::Batch`] interval per dispatched batch,
/// and markers for sheds, completions, and scale decisions. With a
/// disabled recorder this is exactly [`run_serving`].
///
/// # Errors
///
/// As for [`run_serving`].
pub fn run_serving_recorded(
    cfg: &ServeConfig,
    chip: &ChipConfig,
    models: &mut [&mut dyn ServiceModel],
    rec: &mut dyn Recorder,
) -> Result<ServeOutcome, ServeError> {
    if !rec.enabled() {
        return run_serving(cfg, chip, models);
    }
    // Request spans need per-request outcomes; record them for the
    // duration of the run even if the caller did not ask to keep them.
    let mut run_cfg = cfg.clone();
    run_cfg.record_requests = true;
    let mut out = run_serving(&run_cfg, chip, models)?;
    for span in out.trace.to_spans() {
        rec.record(span);
    }
    for r in &out.requests {
        rec.record(Span::new(
            SpanKind::Request,
            Layer::Serving,
            r.tenant as u32,
            format!("req {}{}", r.req, if r.violated { " (late)" } else { "" }),
            ms_to_ns(r.arrival_ms),
            ms_to_ns(r.done_ms),
        ));
    }
    if !cfg.record_requests {
        out.requests.clear();
    }
    Ok(out)
}

/// Runs a serving scenario with a [`LiveMonitor`] attached: windowed
/// time-series, per-window latency histograms with exemplars, SLO
/// burn-rate evaluation at every simulated-second boundary, and the
/// span flight recorder, all fed by in-engine hooks as events happen.
///
/// The monitor is strictly observational — the returned
/// [`ServeOutcome::report`] is identical to what [`run_serving`] would
/// produce for the same configuration. The run's trace additionally
/// carries a [`ServeEventKind::Alert`] record for every burn-rate
/// alert transition.
///
/// # Errors
///
/// As for [`run_serving`].
pub fn run_serving_live(
    cfg: &ServeConfig,
    chip: &ChipConfig,
    models: &mut [&mut dyn ServiceModel],
    live: &mut LiveMonitor,
) -> Result<ServeOutcome, ServeError> {
    live.begin(&cfg.tenants);
    let mut engine = Engine::new(cfg, chip, models)?;
    engine.live = Some(live);
    engine.seed_arrivals(cfg);
    while let Some(ev) = engine.heap.pop() {
        engine.step(ev, cfg)?;
    }
    // Judge the trailing windows: one final evaluation past the last
    // event (or the horizon, whichever is later).
    let last_ns = engine
        .trace
        .events
        .last()
        .map_or(0.0, |e| e.t_ns)
        .max(ms_to_ns(cfg.duration_ms));
    if let Some(mon) = engine.live.as_deref_mut() {
        let fired = mon.finish(last_ns);
        for (tenant, alert) in fired {
            engine.push_alert(tenant, &alert);
        }
    }
    Ok(engine.finish(cfg))
}

impl<'m, 's, 'l> Engine<'m, 's, 'l> {
    fn new(
        cfg: &ServeConfig,
        chip: &ChipConfig,
        models: &'m mut [&'s mut dyn ServiceModel],
    ) -> Result<Self, ServeError> {
        if cfg.tenants.is_empty() {
            return Err(ServeError::Config("a serving run needs tenants".into()));
        }
        let mut slots = vec![vec![None; chip.groups_per_cluster]; chip.clusters];
        let mut tenants = Vec::with_capacity(cfg.tenants.len());
        for (idx, spec) in cfg.tenants.iter().enumerate() {
            if spec.model >= models.len() {
                return Err(ServeError::Config(format!(
                    "tenant '{}' references model {} but only {} were provided",
                    spec.name,
                    spec.model,
                    models.len()
                )));
            }
            if spec.initial_groups == 0 || spec.initial_groups > chip.groups_per_cluster {
                return Err(ServeError::Config(format!(
                    "tenant '{}' wants {} initial groups; clusters have 1..={}",
                    spec.name, spec.initial_groups, chip.groups_per_cluster
                )));
            }
            // Cluster choice: explicit, else the cluster with the most
            // free slots (lowest index on ties).
            let cluster = match spec.cluster {
                Some(c) if c >= chip.clusters => {
                    return Err(ServeError::Config(format!(
                        "tenant '{}' wants cluster {c} but the chip has {}",
                        spec.name, chip.clusters
                    )));
                }
                Some(c) => c,
                None => (0..chip.clusters)
                    .max_by_key(|&c| {
                        let free = slots[c].iter().filter(|s| s.is_none()).count();
                        (free, usize::MAX - c) // prefer lower index on ties
                    })
                    .expect("validated cluster count"),
            };
            let mut groups = Vec::with_capacity(spec.initial_groups);
            for (g, slot) in slots[cluster].iter_mut().enumerate() {
                if groups.len() == spec.initial_groups {
                    break;
                }
                if slot.is_none() {
                    *slot = Some(idx);
                    groups.push(GroupId::new(cluster, g));
                }
            }
            if groups.len() < spec.initial_groups {
                return Err(ServeError::Config(format!(
                    "tenant '{}' wants {} groups on cluster {cluster} but only {} were free",
                    spec.name,
                    spec.initial_groups,
                    groups.len()
                )));
            }
            // Tenant 0 draws from the run seed directly (so a
            // single-tenant engine run shares its arrival stream with a
            // reference ServeRng(seed)); later tenants decorrelate.
            let seed = cfg.seed ^ (idx as u64).wrapping_mul(0x9E3779B97F4A7C15);
            let groups_initial = groups.len();
            tenants.push(Tenant {
                gen: ArrivalGen::new(spec.arrival.clone(), seed),
                spec: spec.clone(),
                queue: VecDeque::new(),
                busy: false,
                epoch: 0,
                armed: false,
                groups,
                in_flight: Vec::new(),
                delay_ema: 0.0,
                last_scale_ms: f64::NEG_INFINITY,
                offered: 0,
                shed: 0,
                violations: 0,
                latencies: Sample::new(),
                queue_delay_sum: 0.0,
                busy_ms: 0.0,
                batch_hist: BTreeMap::new(),
                groups_initial,
                scale_ups: 0,
                scale_downs: 0,
                attempt: 0,
                retries: 0,
                fault_dropped: 0,
                groups_lost: 0,
            });
        }
        let faults = if cfg.faults.is_empty() {
            None
        } else {
            Some(FaultSession::new(
                &cfg.faults,
                chip.clusters,
                chip.groups_per_cluster,
            ))
        };
        Ok(Engine {
            heap: BinaryHeap::new(),
            seq: 0,
            next_req: 0,
            tenants,
            slots,
            models,
            trace: ServingTrace::default(),
            requests: Vec::new(),
            record_requests: cfg.record_requests,
            faults,
            dead: vec![vec![false; chip.groups_per_cluster]; chip.clusters],
            groups_per_cluster: chip.groups_per_cluster,
            retry: cfg.retry,
            rng: FaultRng::new(cfg.seed ^ RETRY_RNG_SALT),
            live: None,
        })
    }

    /// Appends an SLO alert transition to the trace.
    fn push_alert(&mut self, tenant: usize, alert: &AlertEvent) {
        self.trace.events.push(ServeEvent {
            t_ns: alert.t_ns,
            tenant,
            kind: ServeEventKind::Alert {
                slo: alert.slo.clone(),
                alert: alert.kind.name().to_string(),
                burn_fast: alert.burn_fast,
                burn_slow: alert.burn_slow,
                exemplar: alert.exemplar,
            },
        });
    }

    fn push(&mut self, t: f64, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Ev { t, seq, kind });
    }

    fn seed_arrivals(&mut self, cfg: &ServeConfig) {
        for idx in 0..self.tenants.len() {
            let first = self.tenants[idx].gen.next_after(0.0);
            if first <= cfg.duration_ms {
                self.push(first, EvKind::Arrival { tenant: idx });
            }
        }
    }

    fn step(&mut self, ev: Ev, cfg: &ServeConfig) -> Result<(), ServeError> {
        // Run any SLO evaluation boundaries the clock just crossed
        // before handling the event at `ev.t`.
        if self.live.is_some() {
            let fired = self
                .live
                .as_deref_mut()
                .expect("checked")
                .advance(ms_to_ns(ev.t));
            for (tenant, alert) in fired {
                self.push_alert(tenant, &alert);
            }
        }
        match ev.kind {
            EvKind::Arrival { tenant } => self.on_arrival(ev.t, tenant, cfg)?,
            EvKind::BatchDeadline { tenant, epoch } => {
                let ten = &self.tenants[tenant];
                if ten.epoch == epoch && !ten.busy && !ten.queue.is_empty() {
                    let n = ten.queue.len();
                    self.dispatch(ev.t, tenant, n)?;
                }
            }
            EvKind::Complete { tenant } => self.on_complete(ev.t, tenant)?,
            EvKind::Retry {
                tenant,
                attempt,
                backoff_ms,
            } => self.on_retry(ev.t, tenant, attempt, backoff_ms)?,
        }
        Ok(())
    }

    fn on_arrival(&mut self, t: f64, tenant: usize, cfg: &ServeConfig) -> Result<(), ServeError> {
        let req_id = self.next_req;
        self.next_req += 1;
        {
            let ten = &mut self.tenants[tenant];
            ten.offered += 1;
            let depth = ten.queue.len();
            if depth >= ten.spec.sla.max_queue_depth {
                ten.shed += 1;
                self.trace.events.push(ServeEvent {
                    t_ns: ms_to_ns(t),
                    tenant,
                    kind: ServeEventKind::Shed { req: req_id, depth },
                });
                if let Some(mon) = self.live.as_deref_mut() {
                    mon.on_shed(ms_to_ns(t), tenant, req_id);
                }
            } else {
                ten.queue.push_back(Request {
                    id: req_id,
                    arrival_ms: t,
                    deadline_ms: t + ten.spec.sla.deadline_ms,
                });
                self.trace.events.push(ServeEvent {
                    t_ns: ms_to_ns(t),
                    tenant,
                    kind: ServeEventKind::Arrival {
                        req: req_id,
                        depth: depth + 1,
                    },
                });
                if let Some(mon) = self.live.as_deref_mut() {
                    mon.on_arrival(ms_to_ns(t), tenant);
                }
            }
        }
        self.try_dispatch(t, tenant)?;
        let next = self.tenants[tenant].gen.next_after(t);
        if next <= cfg.duration_ms {
            self.push(next, EvKind::Arrival { tenant });
        }
        Ok(())
    }

    fn try_dispatch(&mut self, t: f64, tenant: usize) -> Result<(), ServeError> {
        let ten = &self.tenants[tenant];
        if ten.busy || ten.queue.is_empty() {
            return Ok(());
        }
        let max_batch = ten.spec.batch.max_batch.max(1);
        let queued = ten.queue.len();
        if queued >= max_batch {
            return self.dispatch(t, tenant, max_batch);
        }
        if ten.spec.batch.timeout_ms <= 0.0 {
            return self.dispatch(t, tenant, queued);
        }
        let ready_at = ten.queue.front().expect("non-empty").arrival_ms + ten.spec.batch.timeout_ms;
        if t >= ready_at {
            return self.dispatch(t, tenant, queued);
        }
        if !ten.armed {
            let epoch = ten.epoch;
            self.tenants[tenant].armed = true;
            self.push(ready_at, EvKind::BatchDeadline { tenant, epoch });
        }
        Ok(())
    }

    fn dispatch(&mut self, t: f64, tenant: usize, count: usize) -> Result<(), ServeError> {
        {
            let ten = &mut self.tenants[tenant];
            let count = count
                .min(ten.queue.len())
                .min(ten.spec.batch.max_batch)
                .max(1);
            // Delay EMA observes the wait of the oldest request served.
            let oldest_wait = t - ten.queue.front().expect("non-empty").arrival_ms;
            let alpha = ten.spec.scale.ema_alpha.clamp(0.01, 1.0);
            ten.delay_ema = alpha * oldest_wait + (1.0 - alpha) * ten.delay_ema;
            ten.in_flight.clear();
            for _ in 0..count {
                let req = ten.queue.pop_front().expect("counted");
                ten.queue_delay_sum += t - req.arrival_ms;
                ten.in_flight.push(req);
            }
            ten.busy = true;
            ten.epoch += 1;
            ten.armed = false;
            ten.attempt = 0;
            *ten.batch_hist.entry(count).or_insert(0) += 1;
        }
        self.start_service(t, tenant)
    }

    /// Attempts to start service for `tenant`'s in-flight batch:
    /// checks for permanently failed groups (remap + slot poisoning),
    /// applies active degradation windows to the service time, and
    /// either schedules completion or fails the attempt into the
    /// retry/backoff path when a transient fault hits.
    fn start_service(&mut self, t: f64, tenant: usize) -> Result<(), ServeError> {
        if self.faults.is_some() {
            self.lose_failed_groups(t, tenant)?;
        }
        let (compiled_batch, placement, count) = {
            let ten = &self.tenants[tenant];
            (
                ten.spec.batch.compiled_batch(ten.in_flight.len()),
                Placement::explicit(ten.groups.clone()),
                ten.in_flight.len(),
            )
        };
        let model_idx = self.tenants[tenant].spec.model;
        let mut service_ms = self.models[model_idx].service_ms(compiled_batch, &placement)?;
        if let Some(fs) = self.faults.as_mut() {
            let t_ns = ms_to_ns(t);
            let gpc = self.groups_per_cluster;
            // Degradation windows: the slowest group gates the batch.
            let mut factor = 1.0f64;
            for g in placement.groups() {
                let flat = g.cluster * gpc + g.group;
                factor = factor.max(fs.dma_slowdown(flat, t_ns).factor);
                if fs.thermal_throttle(flat, t_ns).factor > 1.0 {
                    factor = factor.max(THERMAL_SLOWDOWN);
                }
            }
            if factor > 1.0 {
                let extra = service_ms * (factor - 1.0);
                fs.add_stall_ns(ms_to_ns(extra));
                service_ms += extra;
            }
            // Transient faults fail the attempt before service starts.
            let end_ns = ms_to_ns(t + service_ms);
            let mut hit: Option<&'static str> = None;
            for g in placement.groups() {
                let flat = g.cluster * gpc + g.group;
                if fs.take_uncorrectable(flat, t_ns, end_ns).is_some() {
                    hit = Some("ecc-uncorrectable");
                    break;
                }
                if fs.take_dma_timeout(flat, t_ns).is_some() {
                    hit = Some("dma-timeout");
                    break;
                }
            }
            if let Some(label) = hit {
                return self.fail_attempt(t, tenant, label);
            }
        }
        self.tenants[tenant].busy_ms += service_ms;
        self.trace.events.push(ServeEvent {
            t_ns: ms_to_ns(t),
            tenant,
            kind: ServeEventKind::Dispatch {
                batch: count,
                compiled_batch,
                groups: placement.len(),
                service_ms,
            },
        });
        if let Some(mon) = self.live.as_deref_mut() {
            mon.on_dispatch(ms_to_ns(t), tenant, count, service_ms);
        }
        self.push(t + service_ms, EvKind::Complete { tenant });
        Ok(())
    }

    /// Removes every group of `tenant` whose cores have failed by time
    /// `t`, poisoning the freed slots so the autoscaler can never
    /// reclaim them. Surfaces the fault when no groups survive.
    fn lose_failed_groups(&mut self, t: f64, tenant: usize) -> Result<(), ServeError> {
        let t_ns = ms_to_ns(t);
        let gpc = self.groups_per_cluster;
        let groups = self.tenants[tenant].groups.clone();
        let mut lost: Vec<(GroupId, FaultError)> = Vec::new();
        if let Some(fs) = self.faults.as_mut() {
            for g in groups {
                let flat = g.cluster * gpc + g.group;
                if let Some(e) = fs.core_failure(flat, t_ns) {
                    lost.push((g, e));
                }
            }
        }
        for (g, e) in lost {
            let ten = &mut self.tenants[tenant];
            ten.groups
                .retain(|x| !(x.cluster == g.cluster && x.group == g.group));
            ten.groups_lost += 1;
            let remaining = ten.groups.len();
            self.slots[g.cluster][g.group] = None;
            self.dead[g.cluster][g.group] = true;
            self.trace.events.push(ServeEvent {
                t_ns: ms_to_ns(t),
                tenant,
                kind: ServeEventKind::GroupLost {
                    cluster: g.cluster,
                    group: g.group,
                    remaining,
                },
            });
            let alert = self
                .live
                .as_deref_mut()
                .map(|mon| mon.on_group_lost(ms_to_ns(t), tenant, g.cluster, g.group));
            if let Some(alert) = alert {
                self.push_alert(tenant, &alert);
            }
            if remaining == 0 {
                return Err(ServeError::Sim(SimError::Fault(e)));
            }
        }
        Ok(())
    }

    /// A transient fault failed the current attempt: either schedule a
    /// retry after jittered exponential backoff, or — with the budget
    /// exhausted — drop the batch and move on to the next one.
    fn fail_attempt(&mut self, t: f64, tenant: usize, label: &str) -> Result<(), ServeError> {
        let attempt = {
            let ten = &mut self.tenants[tenant];
            ten.attempt += 1;
            ten.attempt
        };
        self.trace.events.push(ServeEvent {
            t_ns: ms_to_ns(t),
            tenant,
            kind: ServeEventKind::Fault {
                label: label.to_string(),
                attempt,
            },
        });
        let alert = self
            .live
            .as_deref_mut()
            .map(|mon| mon.on_fault(ms_to_ns(t), tenant, label));
        if let Some(alert) = alert {
            self.push_alert(tenant, &alert);
        }
        if attempt > self.retry.max_attempts {
            let dropped = {
                let ten = &mut self.tenants[tenant];
                let d = ten.in_flight.len();
                ten.fault_dropped += d as u64;
                ten.in_flight.clear();
                ten.busy = false;
                ten.attempt = 0;
                d
            };
            self.trace.events.push(ServeEvent {
                t_ns: ms_to_ns(t),
                tenant,
                kind: ServeEventKind::FaultDrop { dropped },
            });
            if let Some(mon) = self.live.as_deref_mut() {
                mon.on_fault_drop(ms_to_ns(t), tenant, dropped);
            }
            return self.try_dispatch(t, tenant);
        }
        self.tenants[tenant].retries += 1;
        let backoff_ms = self.retry.backoff_for(attempt, &mut self.rng);
        self.push(
            t + backoff_ms,
            EvKind::Retry {
                tenant,
                attempt,
                backoff_ms,
            },
        );
        Ok(())
    }

    /// A retry fires: re-admit the surviving in-flight requests
    /// (dropping those whose deadline expired during backoff) and
    /// attempt service again.
    fn on_retry(
        &mut self,
        t: f64,
        tenant: usize,
        attempt: u32,
        backoff_ms: f64,
    ) -> Result<(), ServeError> {
        self.trace.events.push(ServeEvent {
            t_ns: ms_to_ns(t),
            tenant,
            kind: ServeEventKind::Retry {
                attempt,
                backoff_ms,
            },
        });
        let expired = {
            let ten = &mut self.tenants[tenant];
            let before = ten.in_flight.len();
            ten.in_flight.retain(|r| r.deadline_ms >= t);
            before - ten.in_flight.len()
        };
        if expired > 0 {
            self.tenants[tenant].fault_dropped += expired as u64;
            self.trace.events.push(ServeEvent {
                t_ns: ms_to_ns(t),
                tenant,
                kind: ServeEventKind::FaultDrop { dropped: expired },
            });
            if let Some(mon) = self.live.as_deref_mut() {
                mon.on_fault_drop(ms_to_ns(t), tenant, expired);
            }
        }
        if self.tenants[tenant].in_flight.is_empty() {
            let ten = &mut self.tenants[tenant];
            ten.busy = false;
            ten.attempt = 0;
            return self.try_dispatch(t, tenant);
        }
        self.start_service(t, tenant)
    }

    fn on_complete(&mut self, t: f64, tenant: usize) -> Result<(), ServeError> {
        {
            let ten = &mut self.tenants[tenant];
            let batch = ten.in_flight.len();
            for req in ten.in_flight.drain(..) {
                let violated = t > req.deadline_ms;
                ten.violations += u64::from(violated);
                ten.latencies.record(t - req.arrival_ms, req.id);
                if self.record_requests {
                    self.requests.push(RequestOutcome {
                        req: req.id,
                        tenant,
                        arrival_ms: req.arrival_ms,
                        done_ms: t,
                        deadline_ms: req.deadline_ms,
                        violated,
                    });
                }
                if let Some(mon) = self.live.as_deref_mut() {
                    mon.on_complete_request(
                        ms_to_ns(t),
                        tenant,
                        req.id,
                        t - req.arrival_ms,
                        violated,
                    );
                }
            }
            ten.busy = false;
            ten.attempt = 0;
            let depth = ten.queue.len();
            self.trace.events.push(ServeEvent {
                t_ns: ms_to_ns(t),
                tenant,
                kind: ServeEventKind::Complete { batch, depth },
            });
        }
        self.autoscale(t, tenant);
        self.try_dispatch(t, tenant)
    }

    fn autoscale(&mut self, t: f64, tenant: usize) {
        let ten = &self.tenants[tenant];
        let policy = &ten.spec.scale;
        if !policy.enabled || t - ten.last_scale_ms < policy.cooldown_ms {
            return;
        }
        let cluster = ten.groups[0].cluster;
        let owned = ten.groups.len();
        let cap = policy.max_groups.min(self.slots[cluster].len());
        if ten.delay_ema > policy.high_delay_ms && owned < cap {
            // Grab the first free slot in the tenant's cluster, if any.
            if let Some(g) = (0..self.slots[cluster].len())
                .find(|&g| self.slots[cluster][g].is_none() && !self.dead[cluster][g])
            {
                self.slots[cluster][g] = Some(tenant);
                let ten = &mut self.tenants[tenant];
                ten.groups.push(GroupId::new(cluster, g));
                ten.scale_ups += 1;
                ten.last_scale_ms = t;
                self.trace.events.push(ServeEvent {
                    t_ns: ms_to_ns(t),
                    tenant,
                    kind: ServeEventKind::Scale {
                        from: owned,
                        to: owned + 1,
                    },
                });
            }
        } else if ten.delay_ema < policy.low_delay_ms && owned > 1 {
            let ten = &mut self.tenants[tenant];
            let freed = ten.groups.pop().expect("owned > 1");
            self.slots[freed.cluster][freed.group] = None;
            ten.scale_downs += 1;
            ten.last_scale_ms = t;
            self.trace.events.push(ServeEvent {
                t_ns: ms_to_ns(t),
                tenant,
                kind: ServeEventKind::Scale {
                    from: owned,
                    to: owned - 1,
                },
            });
        }
    }

    fn finish(self, cfg: &ServeConfig) -> ServeOutcome {
        let horizon = cfg.duration_ms.max(f64::MIN_POSITIVE);
        let mut all_latencies = Vec::new();
        let mut global_hist: BTreeMap<usize, u64> = BTreeMap::new();
        let mut tenants = Vec::with_capacity(self.tenants.len());
        let (mut offered, mut completed, mut shed, mut violations) = (0u64, 0u64, 0u64, 0u64);
        let (mut retries, mut fault_dropped) = (0u64, 0u64);
        let faults_injected = self.faults.as_ref().map_or(0, |f| f.injected());
        for ten in self.tenants {
            let (lats, stats) = ten.latencies.into_parts();
            all_latencies.extend_from_slice(&lats);
            offered += ten.offered;
            completed += stats.count;
            shed += ten.shed;
            violations += ten.violations;
            retries += ten.retries;
            fault_dropped += ten.fault_dropped;
            for (&size, &n) in &ten.batch_hist {
                *global_hist.entry(size).or_insert(0) += n;
            }
            tenants.push(TenantReport {
                name: ten.spec.name.clone(),
                model: self.models[ten.spec.model].name().to_string(),
                offered: ten.offered,
                completed: stats.count,
                shed: ten.shed,
                violations: ten.violations,
                retries: ten.retries,
                fault_dropped: ten.fault_dropped,
                groups_lost: ten.groups_lost,
                mean_queue_delay_ms: if stats.count == 0 {
                    0.0
                } else {
                    ten.queue_delay_sum / stats.count as f64
                },
                utilization: ten.busy_ms / horizon,
                latency: stats,
                batch_histogram: ten.batch_hist,
                groups_initial: ten.groups_initial,
                groups_final: ten.groups.len(),
                scale_ups: ten.scale_ups,
                scale_downs: ten.scale_downs,
            });
        }
        let latency = LatencyStats::from_latencies(&mut all_latencies);
        ServeOutcome {
            report: ServeReport {
                horizon_ms: cfg.duration_ms,
                offered,
                completed,
                shed,
                violations,
                retries,
                fault_dropped,
                faults_injected,
                throughput_qps: completed as f64 / (horizon / 1e3),
                latency,
                batch_histogram: global_hist,
                tenants,
            },
            trace: self.trace,
            requests: self.requests,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalyticModel, ArrivalProcess, BatchPolicy, ScalePolicy, SlaPolicy};
    use dtu_sim::ChipConfig;

    fn one_tenant(qps: f64) -> ServeConfig {
        ServeConfig {
            duration_ms: 500.0,
            seed: 42,
            tenants: vec![TenantSpec::poisson("t0", 0, qps)],
            ..ServeConfig::default()
        }
    }

    fn run(cfg: &ServeConfig, base_ms: f64) -> ServeOutcome {
        let mut m = AnalyticModel::new("m", base_ms);
        run_serving(cfg, &ChipConfig::dtu20(), &mut [&mut m]).unwrap()
    }

    #[test]
    fn light_load_has_no_queueing_tail() {
        let out = run(&one_tenant(100.0), 0.5);
        assert!(out.report.completed > 20);
        assert_eq!(out.report.shed, 0);
        // At 5% utilisation p99 stays near the service time.
        assert!(out.report.latency.p99_ms < 1.5);
    }

    #[test]
    fn no_tenants_is_a_config_error() {
        let cfg = ServeConfig::default();
        let mut m = AnalyticModel::new("m", 1.0);
        let err = run_serving(&cfg, &ChipConfig::dtu20(), &mut [&mut m]).unwrap_err();
        assert!(matches!(err, ServeError::Config(_)));
    }

    #[test]
    fn bad_model_index_is_a_config_error() {
        let mut cfg = one_tenant(10.0);
        cfg.tenants[0].model = 3;
        let mut m = AnalyticModel::new("m", 1.0);
        assert!(run_serving(&cfg, &ChipConfig::dtu20(), &mut [&mut m]).is_err());
    }

    #[test]
    fn too_many_initial_groups_is_a_config_error() {
        let mut cfg = one_tenant(10.0);
        cfg.tenants[0].initial_groups = 9;
        let mut m = AnalyticModel::new("m", 1.0);
        assert!(run_serving(&cfg, &ChipConfig::dtu20(), &mut [&mut m]).is_err());
    }

    #[test]
    fn admission_sheds_when_queue_is_full() {
        let mut cfg = one_tenant(4000.0); // far beyond capacity
        cfg.tenants[0].sla = SlaPolicy::new(50.0, 4);
        let out = run(&cfg, 1.0);
        assert!(out.report.shed > 0, "overload must shed");
        // Queue depth is capped, so waiting time is bounded by
        // (depth+1) batches of service.
        assert!(out.report.latency.max_ms <= 1.0 * 6.0 + 1e-9);
        assert_eq!(
            out.report.offered,
            out.report.completed + out.report.shed,
            "every request either completes or is shed"
        );
    }

    #[test]
    fn batching_forms_under_backlog() {
        let mut cfg = one_tenant(3000.0);
        cfg.tenants[0].batch = BatchPolicy::dynamic(8, 0.5);
        let out = run(&cfg, 1.0);
        let max_batch = *out.report.batch_histogram.keys().max().unwrap();
        assert!(max_batch > 1, "backlog should form real batches");
        assert!(out.report.mean_batch() > 1.5);
    }

    #[test]
    fn batch_timeout_fires_for_sparse_traffic() {
        // Load so light the max-batch trigger never fires: every batch
        // is formed by the timeout and stays small.
        let mut cfg = one_tenant(20.0);
        cfg.tenants[0].batch = BatchPolicy::dynamic(8, 2.0);
        let out = run(&cfg, 0.2);
        assert!(out.report.completed > 0);
        // The timeout adds at most timeout_ms to the queueing delay.
        assert!(out.report.latency.p50_ms >= 2.0 * 0.9);
        assert!(out.report.latency.p50_ms <= 2.0 + 5.0 * 0.2 + 1.0);
    }

    #[test]
    fn elastic_scaling_grows_under_load_and_shrinks_when_idle() {
        let mut cfg = one_tenant(0.0);
        cfg.duration_ms = 2000.0;
        cfg.tenants[0].arrival = ArrivalProcess::Bursty {
            base_qps: 50.0,
            burst_qps: 2500.0,
            mean_dwell_ms: 300.0,
        };
        cfg.tenants[0].scale = ScalePolicy::elastic(2.0, 0.2, 3);
        let out = run(&cfg, 0.8);
        let t = &out.report.tenants[0];
        assert!(t.scale_ups > 0, "bursts must trigger scale-up: {t:?}");
        let max_groups = out
            .trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                ServeEventKind::Scale { to, .. } => Some(to),
                _ => None,
            })
            .max()
            .unwrap();
        assert!(max_groups >= 2);
    }

    #[test]
    fn tenants_place_on_distinct_groups() {
        let cfg = ServeConfig {
            duration_ms: 50.0,
            seed: 1,
            tenants: (0..6)
                .map(|i| TenantSpec::poisson(format!("t{i}"), 0, 100.0))
                .collect(),
            ..ServeConfig::default()
        };
        let mut m = AnalyticModel::new("m", 0.5);
        let out = run_serving(&cfg, &ChipConfig::dtu20(), &mut [&mut m]).unwrap();
        assert_eq!(out.report.tenants.len(), 6);
        // All 6 groups of the i20 are claimed: a 7th tenant must fail.
        let mut over = cfg.clone();
        over.tenants.push(TenantSpec::poisson("t6", 0, 100.0));
        let mut m2 = AnalyticModel::new("m", 0.5);
        assert!(run_serving(&over, &ChipConfig::dtu20(), &mut [&mut m2]).is_err());
    }

    #[test]
    fn trace_records_all_event_kinds_under_load() {
        let mut cfg = one_tenant(3000.0);
        cfg.tenants[0].sla = SlaPolicy::new(10.0, 8);
        cfg.tenants[0].batch = BatchPolicy::dynamic(4, 0.5);
        let out = run(&cfg, 1.0);
        let kinds: std::collections::BTreeSet<&str> = out
            .trace
            .events
            .iter()
            .map(|e| match e.kind {
                ServeEventKind::Arrival { .. } => "arrival",
                ServeEventKind::Shed { .. } => "shed",
                ServeEventKind::Dispatch { .. } => "dispatch",
                ServeEventKind::Complete { .. } => "complete",
                ServeEventKind::Scale { .. } => "scale",
                ServeEventKind::Fault { .. } => "fault",
                ServeEventKind::Retry { .. } => "retry",
                ServeEventKind::GroupLost { .. } => "group-lost",
                ServeEventKind::FaultDrop { .. } => "fault-drop",
                ServeEventKind::Alert { .. } => "alert",
                // Generative-engine kinds; the fixed-batch engine
                // never emits them.
                ServeEventKind::Prefill { .. } => "prefill",
                ServeEventKind::DecodeStep { .. } => "decode",
                ServeEventKind::Preempt { .. } => "preempt",
            })
            .collect();
        for k in ["arrival", "shed", "dispatch", "complete"] {
            assert!(kinds.contains(k), "missing {k} events");
        }
        // Trace times are monotone.
        assert!(out.trace.events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn recorded_run_emits_request_spans_and_matches_plain_run() {
        use dtu_telemetry::TraceBuffer;
        let cfg = one_tenant(200.0);
        let mut m = AnalyticModel::new("m", 1.0);
        let plain = run_serving(&cfg, &ChipConfig::dtu20(), &mut [&mut m]).unwrap();
        let mut buf = TraceBuffer::new();
        let mut m2 = AnalyticModel::new("m", 1.0);
        let rec =
            run_serving_recorded(&cfg, &ChipConfig::dtu20(), &mut [&mut m2], &mut buf).unwrap();
        // Recording must not perturb the simulation or leak request
        // outcomes the caller did not ask for.
        assert_eq!(plain.report, rec.report);
        assert!(rec.requests.is_empty());
        let reqs: Vec<_> = buf
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Request)
            .collect();
        assert_eq!(reqs.len() as u64, rec.report.completed);
        for s in &reqs {
            assert_eq!(s.layer, Layer::Serving);
            assert!(s.end_ns >= s.start_ns);
        }
        // Batch spans from the event log ride along on the same clock.
        assert!(buf.spans().iter().any(|s| s.kind == SpanKind::Batch));
        // A disabled recorder takes the plain path.
        let mut m3 = AnalyticModel::new("m", 1.0);
        let mut null = dtu_telemetry::NullRecorder;
        let nulled =
            run_serving_recorded(&cfg, &ChipConfig::dtu20(), &mut [&mut m3], &mut null).unwrap();
        assert_eq!(nulled.report, plain.report);
    }

    use crate::RetryPolicy;
    use dtu_faults::{FaultEvent, FaultKind, FaultPlan};

    fn fault_plan(events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan {
            seed: 0,
            name: String::new(),
            events,
        }
    }

    fn fault_at(at_ms: f64, cluster: usize, group: usize, kind: FaultKind) -> FaultEvent {
        FaultEvent {
            at_ns: ms_to_ns(at_ms),
            cluster,
            group,
            kind,
        }
    }

    fn has_kind(out: &ServeOutcome, want: &str) -> bool {
        out.trace.events.iter().any(|e| {
            matches!(
                (&e.kind, want),
                (ServeEventKind::Fault { .. }, "fault")
                    | (ServeEventKind::Retry { .. }, "retry")
                    | (ServeEventKind::GroupLost { .. }, "group-lost")
                    | (ServeEventKind::FaultDrop { .. }, "fault-drop")
            )
        })
    }

    #[test]
    fn empty_plan_and_retry_policy_are_invisible() {
        let base = run(&one_tenant(200.0), 0.5);
        let mut cfg = one_tenant(200.0);
        cfg.faults = FaultPlan::empty();
        cfg.retry = RetryPolicy {
            max_attempts: 9,
            backoff_ms: 7.0,
            max_backoff_ms: 99.0,
            jitter: 1.0,
        };
        let out = run(&cfg, 0.5);
        assert_eq!(out.report, base.report, "no faults -> policy invisible");
        assert_eq!(out.trace, base.trace);
        assert_eq!(out.report.faults_injected, 0);
    }

    #[test]
    fn transient_fault_retries_and_recovers() {
        let mut cfg = one_tenant(100.0);
        cfg.faults = fault_plan(vec![fault_at(10.0, 0, 0, FaultKind::DmaTimeout)]);
        let out = run(&cfg, 0.5);
        assert_eq!(out.report.retries, 1, "one timeout, one retry");
        assert_eq!(out.report.fault_dropped, 0, "no deadline, nothing dropped");
        assert_eq!(out.report.faults_injected, 1);
        assert_eq!(out.report.offered, out.report.completed + out.report.shed);
        assert!(has_kind(&out, "fault") && has_kind(&out, "retry"));
    }

    #[test]
    fn retry_exhaustion_drops_the_batch() {
        let mut cfg = one_tenant(100.0);
        cfg.retry = RetryPolicy::none();
        cfg.faults = fault_plan(vec![fault_at(10.0, 0, 0, FaultKind::DmaTimeout)]);
        let out = run(&cfg, 0.5);
        assert_eq!(out.report.retries, 0);
        assert!(
            out.report.fault_dropped >= 1,
            "batch dropped on first fault"
        );
        assert_eq!(
            out.report.offered,
            out.report.completed + out.report.shed + out.report.fault_dropped,
            "every request completes, is shed, or is fault-dropped"
        );
        assert!(has_kind(&out, "fault-drop") && !has_kind(&out, "retry"));
    }

    #[test]
    fn deadline_expiry_during_backoff_drops_requests() {
        let mut cfg = one_tenant(100.0);
        cfg.tenants[0].sla = SlaPolicy::new(1.0, usize::MAX);
        cfg.retry = RetryPolicy {
            max_attempts: 3,
            backoff_ms: 50.0,
            max_backoff_ms: 50.0,
            jitter: 0.0,
        };
        cfg.faults = fault_plan(vec![fault_at(10.0, 0, 0, FaultKind::DmaTimeout)]);
        let out = run(&cfg, 0.5);
        assert!(has_kind(&out, "retry"), "the batch retried after backoff");
        assert!(
            out.report.fault_dropped >= 1,
            "its requests expired during the 50 ms backoff"
        );
        assert_eq!(
            out.report.offered,
            out.report.completed + out.report.shed + out.report.fault_dropped
        );
    }

    #[test]
    fn core_failure_loses_the_group_and_poisons_the_slot() {
        let mut cfg = one_tenant(3000.0);
        cfg.duration_ms = 300.0;
        cfg.tenants[0].initial_groups = 2;
        cfg.tenants[0].scale = ScalePolicy::elastic(2.0, 0.2, 3);
        cfg.faults = fault_plan(vec![fault_at(1.0, 0, 1, FaultKind::CoreFailure)]);
        let out = run(&cfg, 1.0);
        let t = &out.report.tenants[0];
        assert_eq!(t.groups_lost, 1);
        assert!(out.report.completed > 0, "serving continues degraded");
        assert!(has_kind(&out, "group-lost"));
        // The dead slot is poisoned: the cluster has 3 groups, one is
        // dead, so the autoscaler can never take the tenant past 2.
        let max_to = out
            .trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                ServeEventKind::Scale { to, .. } => Some(to),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        assert!(max_to <= 2, "poisoned slot must not be reclaimed");
        assert!(t.groups_final <= 2);
    }

    #[test]
    fn last_group_lost_surfaces_the_fault() {
        let mut cfg = one_tenant(100.0);
        cfg.faults = fault_plan(vec![fault_at(0.0, 0, 0, FaultKind::CoreFailure)]);
        let mut m = AnalyticModel::new("m", 0.5);
        let err = run_serving(&cfg, &ChipConfig::dtu20(), &mut [&mut m]).unwrap_err();
        match err {
            ServeError::Sim(dtu_sim::SimError::Fault(e)) => assert!(e.is_permanent()),
            other => panic!("expected a fault, got {other}"),
        }
    }

    #[test]
    fn degradation_window_slows_service() {
        let base = run(&one_tenant(50.0), 0.5);
        let mut cfg = one_tenant(50.0);
        cfg.faults = fault_plan(vec![fault_at(
            0.0,
            0,
            0,
            FaultKind::DmaStall {
                factor: 4.0,
                duration_ns: ms_to_ns(500.0),
            },
        )]);
        let out = run(&cfg, 0.5);
        assert!(out.report.faults_injected >= 1);
        assert!(
            out.report.latency.p50_ms > 2.0 * base.report.latency.p50_ms,
            "4x DMA stall must degrade latency: {} vs {}",
            out.report.latency.p50_ms,
            base.report.latency.p50_ms
        );
        assert_eq!(out.report.retries, 0, "windows degrade, they do not fail");
    }

    use crate::live::{LiveConfig, LiveMonitor};
    use dtu_telemetry::SloSpec;

    fn run_live(cfg: &ServeConfig, base_ms: f64, mon: &mut LiveMonitor) -> ServeOutcome {
        let mut m = AnalyticModel::new("m", base_ms);
        run_serving_live(cfg, &ChipConfig::dtu20(), &mut [&mut m], mon).unwrap()
    }

    /// Strip the live-only alert events so a monitored trace can be
    /// compared against the plain engine's output.
    fn without_alerts(out: &ServeOutcome) -> Vec<ServeEvent> {
        out.trace
            .events
            .iter()
            .filter(|e| !matches!(e.kind, ServeEventKind::Alert { .. }))
            .cloned()
            .collect()
    }

    #[test]
    fn live_clean_run_matches_plain_and_stays_quiet() {
        let cfg = one_tenant(200.0);
        let plain = run(&cfg, 0.5);
        let mut mon = LiveMonitor::new(LiveConfig {
            slo: Some(SloSpec::new("p99<10ms", 0.99, 10.0)),
            ..LiveConfig::default()
        });
        let live = run_live(&cfg, 0.5, &mut mon);
        assert_eq!(live.report, plain.report, "monitoring must not feed back");
        assert_eq!(without_alerts(&live), plain.trace.events);
        assert_eq!(mon.burn_alerts().count(), 0, "clean run fires no alerts");
        assert!(mon.flight.dumps().is_empty());
        let row = mon.tenants()[0].row(mon.now_ns(), 60.0e9);
        assert!(row.qps > 0.0, "windowed QPS reflects traffic");
        assert!(!row.firing);
    }

    #[test]
    fn live_faulted_run_matches_plain_and_records_the_fault() {
        let mut cfg = one_tenant(200.0);
        cfg.tenants[0].cluster = Some(0);
        cfg.tenants[0].initial_groups = 2;
        cfg.faults = fault_plan(vec![fault_at(1.0, 0, 1, FaultKind::CoreFailure)]);
        let plain = run(&cfg, 1.0);
        let mut mon = LiveMonitor::with_defaults();
        let live = run_live(&cfg, 1.0, &mut mon);
        assert_eq!(live.report, plain.report);
        assert_eq!(without_alerts(&live), plain.trace.events);
        // The core failure triggers a flight-recorder dump even without
        // an SLO configured.
        assert!(!mon.flight.dumps().is_empty(), "fault must dump the ring");
        assert!(live
            .trace
            .events
            .iter()
            .any(|e| matches!(e.kind, ServeEventKind::Alert { .. })));
    }
}
