//! Serving-run configuration: tenants, batching, SLA, scaling, and
//! fault-recovery policies.

use crate::ArrivalProcess;
use dtu_faults::{FaultPlan, FaultRng};

/// Dynamic-batching policy for one tenant's queue.
///
/// A batch dispatches when the server is idle and either (a) the queue
/// holds `max_batch` requests, or (b) the oldest queued request has
/// waited `timeout_ms`. The default (`max_batch = 1`) disables
/// batching, which reduces the engine to the classic per-tenant M/D/1
/// the closed-form model describes.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPolicy {
    /// Largest batch a single dispatch may carry.
    pub max_batch: usize,
    /// Longest a request may wait for co-batching, ms. `0` dispatches
    /// whatever is queued the moment the server frees up.
    pub timeout_ms: f64,
    /// Pad the *compiled* batch up to the next power of two, the way
    /// engine caches bucket their shapes: a dispatch of 5 runs the
    /// batch-8 session. Bounds the session cache at `log2(max_batch)+1`
    /// entries per placement at the cost of some wasted slots.
    pub pow2_buckets: bool,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 1,
            timeout_ms: 0.0,
            pow2_buckets: false,
        }
    }
}

impl BatchPolicy {
    /// Batching disabled: every request is its own dispatch.
    pub fn none() -> Self {
        BatchPolicy::default()
    }

    /// Dynamic batching with power-of-two session bucketing.
    pub fn dynamic(max_batch: usize, timeout_ms: f64) -> Self {
        BatchPolicy {
            max_batch: max_batch.max(1),
            timeout_ms,
            pow2_buckets: true,
        }
    }

    /// The batch size the session is compiled at for an actual batch of
    /// `n` requests.
    pub fn compiled_batch(&self, n: usize) -> usize {
        if self.pow2_buckets {
            n.next_power_of_two()
        } else {
            n
        }
    }
}

/// SLA-aware admission policy for one tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct SlaPolicy {
    /// End-to-end deadline a request must meet, ms. A completion past
    /// its deadline is counted as a violation (the request still
    /// completes — the SLA is an accounting boundary, not a kill
    /// switch).
    pub deadline_ms: f64,
    /// Queue-depth limit: an arrival finding this many requests queued
    /// is shed (rejected) instead of admitted.
    pub max_queue_depth: usize,
}

impl Default for SlaPolicy {
    fn default() -> Self {
        SlaPolicy {
            deadline_ms: f64::INFINITY,
            max_queue_depth: usize::MAX,
        }
    }
}

impl SlaPolicy {
    /// A hard SLA: deadline plus a queue cap.
    pub fn new(deadline_ms: f64, max_queue_depth: usize) -> Self {
        SlaPolicy {
            deadline_ms,
            max_queue_depth,
        }
    }
}

/// Elastic group-scaling policy (the online version of Fig. 7's
/// 1/2/3-group resource assignment).
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePolicy {
    /// Master switch; disabled tenants keep their initial groups.
    pub enabled: bool,
    /// Scale *up* when the smoothed queueing delay exceeds this, ms.
    pub high_delay_ms: f64,
    /// Scale *down* when the smoothed queueing delay falls below this,
    /// ms.
    pub low_delay_ms: f64,
    /// Minimum time between scale decisions for one tenant, ms.
    pub cooldown_ms: f64,
    /// Hard cap on groups (clamped to the cluster's group count).
    pub max_groups: usize,
    /// Smoothing factor for the queue-delay EMA, in `(0, 1]`; higher
    /// reacts faster.
    pub ema_alpha: f64,
}

impl Default for ScalePolicy {
    fn default() -> Self {
        ScalePolicy {
            enabled: false,
            high_delay_ms: 0.0,
            low_delay_ms: 0.0,
            cooldown_ms: 0.0,
            max_groups: 1,
            ema_alpha: 0.3,
        }
    }
}

impl ScalePolicy {
    /// Scaling disabled.
    pub fn none() -> Self {
        ScalePolicy::default()
    }

    /// Delay-driven elastic scaling between 1 and `max_groups` groups.
    pub fn elastic(high_delay_ms: f64, low_delay_ms: f64, max_groups: usize) -> Self {
        ScalePolicy {
            enabled: true,
            high_delay_ms,
            low_delay_ms,
            cooldown_ms: 2.0 * high_delay_ms,
            max_groups: max_groups.max(1),
            ema_alpha: 0.3,
        }
    }
}

/// One tenant of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Display name.
    pub name: String,
    /// Index into the model slice handed to the engine.
    pub model: usize,
    /// Offered-load process.
    pub arrival: ArrivalProcess,
    /// Dynamic-batching policy.
    pub batch: BatchPolicy,
    /// Admission/SLA policy.
    pub sla: SlaPolicy,
    /// Elastic-scaling policy.
    pub scale: ScalePolicy,
    /// Cluster to place the tenant on (`None` = round-robin).
    pub cluster: Option<usize>,
    /// Groups the tenant starts with.
    pub initial_groups: usize,
}

impl TenantSpec {
    /// A single-group tenant with Poisson load and everything else at
    /// defaults (no batching, no shedding, no scaling).
    pub fn poisson(name: impl Into<String>, model: usize, qps: f64) -> Self {
        TenantSpec {
            name: name.into(),
            model,
            arrival: ArrivalProcess::Poisson { qps },
            batch: BatchPolicy::none(),
            sla: SlaPolicy::default(),
            scale: ScalePolicy::none(),
            cluster: None,
            initial_groups: 1,
        }
    }
}

/// Bounded retry with exponential backoff for batches that hit a
/// transient injected fault (uncorrectable ECC, DMA timeout).
///
/// A failed batch is re-attempted after a backoff that doubles per
/// attempt, capped at [`RetryPolicy::max_backoff_ms`], with
/// multiplicative jitter drawn from the run's [`FaultRng`] — the draw
/// happens *only* when a retry is actually scheduled, so fault-free
/// runs stay byte-identical whatever the policy says. Requests whose
/// SLA deadline expires while the batch waits out a backoff are
/// dropped at re-admission and counted as fault-dropped (distinct
/// from admission sheds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed per batch; a batch failing `max_attempts + 1`
    /// times is dropped and its requests counted as fault-dropped.
    pub max_attempts: u32,
    /// Backoff before the first retry, ms.
    pub backoff_ms: f64,
    /// Cap on the exponentially grown backoff, ms (before jitter).
    pub max_backoff_ms: f64,
    /// Jitter fraction in `[0, 1]`: the backoff is scaled by a factor
    /// drawn uniformly from `[1, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_ms: 0.5,
            max_backoff_ms: 8.0,
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// Retries disabled: the first transient fault drops the batch.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        }
    }

    /// The backoff before retry number `attempt` (1-based), ms:
    /// `min(backoff_ms * 2^(attempt-1), max_backoff_ms)` scaled by a
    /// jitter factor in `[1, 1 + jitter]` drawn from `rng`. Never
    /// exceeds `max_backoff_ms * (1 + jitter)`.
    pub fn backoff_for(&self, attempt: u32, rng: &mut FaultRng) -> f64 {
        let doublings = attempt.saturating_sub(1).min(52);
        let base = (self.backoff_ms.max(0.0) * f64::from(1u32 << doublings.min(31)))
            .min(self.max_backoff_ms.max(0.0));
        base * rng.next_range(1.0, 1.0 + self.jitter.clamp(0.0, 1.0))
    }
}

/// Whole-run configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Arrival horizon, ms: requests arriving after this are not
    /// generated; admitted requests always run to completion (the run
    /// drains).
    pub duration_ms: f64,
    /// Run seed; every tenant derives its own stream from it.
    pub seed: u64,
    /// The tenants.
    pub tenants: Vec<TenantSpec>,
    /// Record per-request outcomes in [`crate::ServeOutcome::requests`]
    /// (memory-proportional to traffic; used by the property tests).
    pub record_requests: bool,
    /// Fault schedule injected into the run (times on the shared
    /// nanosecond clock). The default empty plan is guaranteed
    /// invisible: the engine never consults it and never draws from
    /// the retry RNG, so the run is byte-identical to a fault-free one.
    pub faults: FaultPlan,
    /// Retry policy for batches hit by a transient injected fault.
    pub retry: RetryPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            duration_ms: 100.0,
            seed: 0x5EED,
            tenants: Vec::new(),
            record_requests: false,
            faults: FaultPlan::empty(),
            retry: RetryPolicy::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_buckets_round_up() {
        let p = BatchPolicy::dynamic(8, 1.0);
        assert_eq!(p.compiled_batch(1), 1);
        assert_eq!(p.compiled_batch(3), 4);
        assert_eq!(p.compiled_batch(5), 8);
        let q = BatchPolicy::none();
        assert_eq!(q.compiled_batch(3), 3);
    }

    #[test]
    fn defaults_disable_everything() {
        let t = TenantSpec::poisson("t", 0, 100.0);
        assert_eq!(t.batch.max_batch, 1);
        assert_eq!(t.sla.max_queue_depth, usize::MAX);
        assert!(!t.scale.enabled);
        assert_eq!(t.initial_groups, 1);
        let cfg = ServeConfig::default();
        assert!(cfg.faults.is_empty(), "default plan injects nothing");
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_within_bounds() {
        let p = RetryPolicy {
            max_attempts: 5,
            backoff_ms: 1.0,
            max_backoff_ms: 4.0,
            jitter: 0.5,
        };
        let mut rng = FaultRng::new(7);
        for attempt in 1..=8u32 {
            let b = p.backoff_for(attempt, &mut rng);
            let base = (f64::from(1u32 << (attempt - 1).min(31))).min(4.0);
            assert!(b >= base, "attempt {attempt}: {b} < base {base}");
            assert!(b <= base * 1.5 + 1e-12, "attempt {attempt}: {b} over cap");
        }
        // Zero jitter is exact and draws nothing.
        let exact = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(exact.backoff_for(1, &mut FaultRng::new(0)), 0.5);
        assert_eq!(exact.backoff_for(2, &mut FaultRng::new(0)), 1.0);
        assert_eq!(exact.backoff_for(30, &mut FaultRng::new(0)), 8.0);
    }
}
