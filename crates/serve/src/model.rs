//! Service models: what it costs to run one batch on a set of groups.
//!
//! The engine is generic over [`ServiceModel`] so its scheduling
//! policies can be unit-tested against an analytical cost curve
//! ([`AnalyticModel`]) and deployed against the real compiled stack
//! ([`CompiledModel`]), which compiles and caches one session per
//! (model, batch, placement) — the serving-time analogue of an
//! inference server's engine cache.

use crate::ServeError;
use dtu_compiler::{compile, CompilerConfig, Mode, Placement};
use dtu_graph::Graph;
use dtu_sim::{Chip, ChipConfig, Program, TimingBackend};
use std::collections::HashMap;

use dtu_sim::GroupId;

/// External provider of compiled programs.
///
/// The serving engine's per-model session cache memoizes *latencies*
/// within one engine. A `ProgramSource` lets the *programs* underneath
/// come from a wider artifact cache shared with sweeps and repro runs
/// (`dtu-harness`'s `SessionCache` implements this), so a serving
/// warm-up can reuse what a sweep already compiled — across binaries,
/// when the source has a disk tier.
pub trait ProgramSource {
    /// Returns the compiled program for the given compilation inputs,
    /// plus whether it was recalled from cache (`true`) or compiled
    /// fresh (`false`).
    ///
    /// # Errors
    ///
    /// Compilation failures surface as [`ServeError::Compile`].
    fn compiled_program(
        &self,
        graph: &Graph,
        chip: &ChipConfig,
        placement: &Placement,
        compiler: &CompilerConfig,
        batch: usize,
    ) -> Result<(Program, bool), ServeError>;
}

/// A model the serving engine can dispatch batches against.
pub trait ServiceModel {
    /// Human-readable model name (used in reports and traces).
    fn name(&self) -> &str;

    /// Latency of serving `batch` requests on `placement`'s groups, ms.
    ///
    /// Called once per dispatch; implementations are expected to cache
    /// whatever compilation the answer requires.
    ///
    /// # Errors
    ///
    /// Compilation or simulation failures surface as [`ServeError`].
    fn service_ms(&mut self, batch: usize, placement: &Placement) -> Result<f64, ServeError>;
}

/// Closed-form cost curve for scheduler unit tests and capacity math.
///
/// Batch cost follows a fixed-plus-marginal model and group speedup
/// follows Amdahl's law:
///
/// ```text
/// service(b, g) = base_ms · (overhead + (1 − overhead) · b)
///                         · ((1 − parallel) + parallel / g)
/// ```
///
/// With `overhead = 0.7`, a batch of 8 costs 3.1× a batch of 1 — i.e.
/// batching raises peak throughput ~2.6× — which is the curve shape
/// the dynamic-batching acceptance test exercises.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticModel {
    /// Name used in reports.
    pub name: String,
    /// Cost of a single-request batch on one group, ms.
    pub base_ms: f64,
    /// Fraction of `base_ms` that is per-dispatch overhead (weight
    /// staging, kernel launch) rather than per-sample work.
    pub batch_overhead: f64,
    /// Amdahl parallel fraction governing multi-group speedup.
    pub parallel_fraction: f64,
}

impl AnalyticModel {
    /// A model with the default batching/scaling curve.
    pub fn new(name: impl Into<String>, base_ms: f64) -> Self {
        AnalyticModel {
            name: name.into(),
            base_ms,
            batch_overhead: 0.7,
            parallel_fraction: 0.7,
        }
    }
}

impl ServiceModel for AnalyticModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn service_ms(&mut self, batch: usize, placement: &Placement) -> Result<f64, ServeError> {
        if batch == 0 {
            return Err(ServeError::Config("batch must be at least 1".into()));
        }
        let groups = placement.len().max(1) as f64;
        let batch_cost = self.batch_overhead + (1.0 - self.batch_overhead) * batch as f64;
        let group_speed = (1.0 - self.parallel_fraction) + self.parallel_fraction / groups;
        Ok(self.base_ms * batch_cost * group_speed)
    }
}

/// Cache key: one compiled session per (batch, placement).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SessionKey {
    batch: usize,
    groups: Vec<GroupId>,
}

/// One cached compiled session.
#[derive(Debug)]
struct CachedSession {
    /// Kept so a future PR can replay the program (timelines, energy);
    /// the serving engine itself only needs the measured latency.
    #[allow(dead_code)]
    program: Program,
    service_ms: f64,
}

/// Hit/miss accounting for the session cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Dispatches answered from cache.
    pub hits: u64,
    /// Dispatches that compiled a fresh session.
    pub misses: u64,
}

/// A real model served through the compiled stack.
///
/// Holds a graph builder (batch size → graph), compiles one session
/// per distinct (batch, placement) it is asked about, simulates it once
/// to measure the deterministic service latency, and caches the result.
pub struct CompiledModel<'c> {
    chip: &'c Chip,
    name: String,
    build: Box<dyn Fn(usize) -> Result<Graph, ServeError> + 'c>,
    cache: HashMap<SessionKey, CachedSession>,
    source: Option<&'c dyn ProgramSource>,
    timing: Option<&'c dyn TimingBackend>,
    stats: CacheStats,
}

impl std::fmt::Debug for CompiledModel<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledModel")
            .field("name", &self.name)
            .field("cached_sessions", &self.cache.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<'c> CompiledModel<'c> {
    /// A model whose graph is rebuilt per batch size by `build`.
    pub fn new(
        chip: &'c Chip,
        name: impl Into<String>,
        build: impl Fn(usize) -> Graph + 'c,
    ) -> Self {
        CompiledModel {
            chip,
            name: name.into(),
            build: Box::new(move |b| Ok(build(b))),
            cache: HashMap::new(),
            source: None,
            timing: None,
            stats: CacheStats::default(),
        }
    }

    /// Routes this model's program compilation through an external
    /// [`ProgramSource`] (builder-style). Latency memoization stays
    /// local to this model; only the compile step is delegated.
    pub fn with_source(mut self, source: &'c dyn ProgramSource) -> Self {
        self.source = Some(source);
        self
    }

    /// Prices this model's sessions through an alternative
    /// [`TimingBackend`] (builder-style) instead of the interpreter —
    /// e.g. a calibrated `AnalyticBackend` for fast capacity sweeps.
    /// Compilation and session caching are unchanged; only the
    /// program-pricing step is rerouted.
    pub fn with_timing(mut self, timing: &'c dyn TimingBackend) -> Self {
        self.timing = Some(timing);
        self
    }

    /// A model pinned to one already-built batch-1 graph (the
    /// no-batching delegation path of `dtu::simulate_serving`).
    /// Requests for any other batch size are a configuration error.
    pub fn from_graph(chip: &'c Chip, name: impl Into<String>, graph: Graph) -> Self {
        CompiledModel {
            chip,
            name: name.into(),
            build: Box::new(move |b| {
                if b == 1 {
                    Ok(graph.clone())
                } else {
                    Err(ServeError::Config(format!(
                        "model was provided as a fixed batch-1 graph but batch {b} was requested"
                    )))
                }
            }),
            cache: HashMap::new(),
            source: None,
            timing: None,
            stats: CacheStats::default(),
        }
    }

    /// Session-cache hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of distinct sessions compiled so far.
    pub fn cached_sessions(&self) -> usize {
        self.cache.len()
    }
}

impl ServiceModel for CompiledModel<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    fn service_ms(&mut self, batch: usize, placement: &Placement) -> Result<f64, ServeError> {
        if batch == 0 {
            return Err(ServeError::Config("batch must be at least 1".into()));
        }
        let mut groups = placement.groups().to_vec();
        groups.sort_unstable();
        let key = SessionKey { batch, groups };
        if let Some(hit) = self.cache.get(&key) {
            self.stats.hits += 1;
            return Ok(hit.service_ms);
        }
        self.stats.misses += 1;
        let graph = (self.build)(batch)?;
        let chip_cfg = self.chip.config();
        let mut compiler = CompilerConfig::for_chip(chip_cfg);
        if batch > 1 {
            compiler.mode = Mode::ThroughputBatched;
        }
        let program = match self.source {
            Some(source) => {
                source
                    .compiled_program(&graph, chip_cfg, placement, &compiler, batch)?
                    .0
            }
            None => compile(&graph, chip_cfg, placement, &compiler)?,
        };
        let service_ms = match self.timing {
            Some(backend) => backend.run(self.chip, &program)?.latency_ms(),
            None => self.chip.run(&program)?.latency_ms(),
        };
        self.cache.insert(
            key,
            CachedSession {
                program,
                service_ms,
            },
        );
        Ok(service_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_graph::{Op, TensorType};
    use dtu_sim::ChipConfig;

    fn toy(batch: usize) -> Graph {
        let mut g = Graph::new("toy");
        let x = g.input("x", TensorType::fixed(&[batch, 8, 32, 32]));
        let c = g.add_node(Op::conv2d(16, 3, 1, 1), vec![x]).unwrap();
        let r = g.add_node(Op::Relu, vec![c]).unwrap();
        g.mark_output(r);
        g
    }

    #[test]
    fn analytic_curve_shapes() {
        let mut m = AnalyticModel::new("m", 1.0);
        let one = Placement::explicit(vec![GroupId::new(0, 0)]);
        let s1 = m.service_ms(1, &one).unwrap();
        let s8 = m.service_ms(8, &one).unwrap();
        assert!((s1 - 1.0).abs() < 1e-12);
        // Batch 8 is sublinear: throughput 8/s8 beats 1/s1 by >= 2x.
        assert!(8.0 / s8 >= 2.0 / s1);
        // More groups, faster (Amdahl).
        let three = Placement::explicit(vec![
            GroupId::new(0, 0),
            GroupId::new(0, 1),
            GroupId::new(0, 2),
        ]);
        assert!(m.service_ms(1, &three).unwrap() < s1);
    }

    #[test]
    fn compiled_model_caches_per_batch_and_placement() {
        let chip = Chip::new(ChipConfig::dtu20());
        let mut m = CompiledModel::new(&chip, "toy", toy);
        let p0 = Placement::explicit(vec![GroupId::new(0, 0)]);
        let p1 = Placement::explicit(vec![GroupId::new(0, 1)]);
        let a = m.service_ms(1, &p0).unwrap();
        let b = m.service_ms(1, &p0).unwrap();
        assert_eq!(a, b);
        assert_eq!(m.cache_stats(), CacheStats { hits: 1, misses: 1 });
        // New placement or batch -> new session.
        m.service_ms(1, &p1).unwrap();
        m.service_ms(4, &p0).unwrap();
        assert_eq!(m.cached_sessions(), 3);
        assert!(a > 0.0);
    }

    #[test]
    fn batched_compilation_is_sublinear_for_real_models() {
        let chip = Chip::new(ChipConfig::dtu20());
        let mut m = CompiledModel::new(&chip, "toy", toy);
        let p = Placement::explicit(vec![GroupId::new(0, 0)]);
        let s1 = m.service_ms(1, &p).unwrap();
        let s8 = m.service_ms(8, &p).unwrap();
        assert!(
            s8 < 8.0 * s1,
            "batch 8 ({s8} ms) should amortise launch/staging vs 8 x batch 1 ({s1} ms)"
        );
    }

    #[test]
    fn fixed_graph_rejects_other_batches() {
        let chip = Chip::new(ChipConfig::dtu20());
        let mut m = CompiledModel::from_graph(&chip, "fixed", toy(1));
        let p = Placement::explicit(vec![GroupId::new(0, 0)]);
        assert!(m.service_ms(1, &p).is_ok());
        assert!(matches!(m.service_ms(2, &p), Err(ServeError::Config(_))));
    }

    #[test]
    fn analytic_timing_prices_close_to_interpreter() {
        let chip = Chip::new(ChipConfig::dtu20());
        let backend = dtu_sim::AnalyticBackend::calibrated(chip.config()).unwrap();
        let p = Placement::explicit(vec![GroupId::new(0, 0)]);
        let mut interp = CompiledModel::new(&chip, "toy", toy);
        let mut fast = CompiledModel::new(&chip, "toy", toy).with_timing(&backend);
        for batch in [1, 4] {
            let a = interp.service_ms(batch, &p).unwrap();
            let b = fast.service_ms(batch, &p).unwrap();
            assert!(
                ((a - b) / a).abs() < 0.05,
                "batch {batch}: interpreted {a} ms vs analytic {b} ms"
            );
        }
    }

    #[test]
    fn zero_batch_is_an_error() {
        let mut m = AnalyticModel::new("m", 1.0);
        let p = Placement::explicit(vec![GroupId::new(0, 0)]);
        assert!(m.service_ms(0, &p).is_err());
    }
}
