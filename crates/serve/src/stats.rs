//! Latency statistics shared by the serving layers.
//!
//! Both the closed-form M/D/1 model in `dtu::simulate_serving` and the
//! discrete-event engine here report percentiles; this module is the
//! single, tested implementation both use.

use std::fmt;

/// Nearest-rank percentile over **sorted** data.
///
/// The rank is `round((n - 1) · p)` — the convention the original
/// serving model shipped with, kept so historical numbers are stable:
/// `p = 0` is the minimum, `p = 1` the maximum, `p = 0.5` the lower of
/// the two middle elements rounded to the nearer rank. No
/// interpolation is performed: the result is always an observed value.
///
/// Returns `0.0` for an empty slice (a serving run with no completed
/// requests has no tail to report).
///
/// # Panics
///
/// Debug-asserts that the input is sorted and `p` is in `[0, 1]`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p), "percentile {p} outside [0,1]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile input must be sorted"
    );
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Summary statistics of a latency sample.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LatencyStats {
    /// Sample count.
    pub count: u64,
    /// Arithmetic mean, ms.
    pub mean_ms: f64,
    /// Median (nearest-rank), ms.
    pub p50_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Largest observed latency, ms.
    pub max_ms: f64,
}

impl LatencyStats {
    /// Builds the summary from an unsorted latency sample (the sample
    /// is sorted in place).
    ///
    /// # Panics
    ///
    /// Panics if a latency is NaN — the simulators only produce finite
    /// times, so a NaN is a bug upstream.
    pub fn from_latencies(latencies: &mut [f64]) -> Self {
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        if latencies.is_empty() {
            return LatencyStats::default();
        }
        LatencyStats {
            count: latencies.len() as u64,
            mean_ms: latencies.iter().sum::<f64>() / latencies.len() as f64,
            p50_ms: percentile(latencies, 0.50),
            p95_ms: percentile(latencies, 0.95),
            p99_ms: percentile(latencies, 0.99),
            max_ms: *latencies.last().expect("non-empty"),
        }
    }
}

/// A latency sample accumulator with a slowest-request exemplar.
///
/// This is the one implementation of the record → summarize →
/// exemplar flow shared by the fixed-batch engine (per-tenant end-to-end
/// latencies) and the generative engine (TTFT / TPOT / end-to-end
/// per-token samples) — so percentile plumbing is not copy-pasted per
/// metric family.
#[derive(Debug, Clone, Default)]
pub struct Sample {
    values: Vec<f64>,
    slowest: Option<(f64, u64)>,
}

impl Sample {
    /// An empty sample.
    pub fn new() -> Self {
        Sample::default()
    }

    /// Records one observation, tagged with the request id that
    /// produced it (the exemplar candidate).
    pub fn record(&mut self, ms: f64, id: u64) {
        if self.slowest.is_none_or(|(worst, _)| ms > worst) {
            self.slowest = Some((ms, id));
        }
        self.values.push(ms);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.values.len() as u64
    }

    /// Sum of all recorded observations, ms.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// The request id of the slowest observation so far, if any.
    pub fn exemplar(&self) -> Option<u64> {
        self.slowest.map(|(_, id)| id)
    }

    /// Summarizes the sample (sorts the underlying values in place).
    pub fn stats(&mut self) -> LatencyStats {
        LatencyStats::from_latencies(&mut self.values)
    }

    /// Consumes the sample, returning its raw values (for cross-sample
    /// aggregation) and the summary.
    pub fn into_parts(mut self) -> (Vec<f64>, LatencyStats) {
        let stats = self.stats();
        (self.values, stats)
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p50/p95/p99 = {:.2}/{:.2}/{:.2} ms (mean {:.2}, max {:.2}, n={})",
            self.p50_ms, self.p95_ms, self.p99_ms, self.mean_ms, self.max_ms, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_all_zero() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        let s = LatencyStats::from_latencies(&mut []);
        assert_eq!(s, LatencyStats::default());
    }

    #[test]
    fn nearest_rank_endpoints() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
    }

    #[test]
    fn nearest_rank_rounds_to_nearer_index() {
        // n = 4: rank(0.5) = round(1.5) = 2 (banker-free f64 round).
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.5), 30.0);
        // rank(0.95) = round(2.85) = 3.
        assert_eq!(percentile(&v, 0.95), 40.0);
    }

    #[test]
    fn single_element_everywhere() {
        let v = [7.0];
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(percentile(&v, p), 7.0);
        }
    }

    #[test]
    fn summary_matches_hand_computation() {
        let mut v = vec![4.0, 1.0, 3.0, 2.0];
        let s = LatencyStats::from_latencies(&mut v);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean_ms, 2.5);
        assert_eq!(s.p50_ms, 3.0);
        assert_eq!(s.max_ms, 4.0);
        assert!(s.to_string().contains("p50"));
    }

    #[test]
    fn duplicate_heavy_sample_reports_observed_values() {
        // A tail of identical values must not confuse nearest-rank:
        // every percentile is one of the two distinct observations.
        let mut v = vec![5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 9.0];
        let s = LatencyStats::from_latencies(&mut v);
        assert_eq!(s.p50_ms, 5.0);
        assert_eq!(s.p95_ms, 9.0);
        assert_eq!(s.p99_ms, 9.0);
        assert_eq!(s.max_ms, 9.0);
    }

    #[test]
    fn short_sample_p99_is_the_maximum() {
        // With fewer than 100 samples the 99th percentile has no
        // interior rank to land on: nearest-rank resolves to the max
        // for n <= 50 (rank(0.99) rounds to n-1).
        for n in 2..=50 {
            let mut v: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let s = LatencyStats::from_latencies(&mut v);
            assert_eq!(s.p99_ms, s.max_ms, "n={n}");
        }
    }

    #[test]
    fn two_element_sample_splits_at_the_midpoint() {
        let v = [1.0, 2.0];
        // rank(p) = round(p): below 0.5 the minimum, at and above 0.5
        // (f64 round half-up) the maximum.
        assert_eq!(percentile(&v, 0.49), 1.0);
        assert_eq!(percentile(&v, 0.5), 2.0);
        assert_eq!(percentile(&v, 0.51), 2.0);
    }

    #[test]
    fn sample_tracks_slowest_exemplar_and_matches_from_latencies() {
        let mut s = Sample::new();
        for (ms, id) in [(4.0, 10), (9.0, 11), (2.0, 12), (9.0, 13)] {
            s.record(ms, id);
        }
        // Strictly-greater comparison: ties keep the first exemplar.
        assert_eq!(s.exemplar(), Some(11));
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 24.0);
        let stats = s.stats();
        let mut raw = vec![4.0, 9.0, 2.0, 9.0];
        assert_eq!(stats, LatencyStats::from_latencies(&mut raw));
        let (values, again) = s.into_parts();
        assert_eq!(values, vec![2.0, 4.0, 9.0, 9.0]);
        assert_eq!(again, stats);
    }

    #[test]
    fn empty_sample_has_no_exemplar() {
        let mut s = Sample::new();
        assert_eq!(s.exemplar(), None);
        assert_eq!(s.stats(), LatencyStats::default());
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let mut v: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let s = LatencyStats::from_latencies(&mut v);
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms && s.p99_ms <= s.max_ms);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
    }
}
