//! Live observability for serving runs: windowed metrics, SLO burn
//! rates, and the span flight recorder, fed by engine hooks.
//!
//! A [`LiveMonitor`] rides along a serving run (see
//! [`run_serving_live`](crate::run_serving_live)) and observes every
//! admission, shed, dispatch, completion, and fault *as it happens* on
//! the simulated clock — the operator's view the end-of-run
//! [`ServeReport`](crate::ServeReport) cannot give. It never feeds
//! anything back into the engine: a monitored run produces the exact
//! same aggregates as a plain one.
//!
//! Per tenant it maintains:
//! * windowed [`TimeSeries`] rings — arrivals, sheds, fault drops,
//!   completions, dispatches, and batch occupancy;
//! * a windowed log-bucketed latency histogram
//!   ([`WindowedHistogram`]) carrying the slowest request's span id as
//!   the window's exemplar;
//! * an optional [`SloTracker`] evaluating multi-window burn rates at
//!   every simulated-second boundary.
//!
//! One shared [`FlightRecorder`] keeps the most recent spans; it dumps
//! a Perfetto-compatible snapshot the moment a burn-rate alert fires
//! or an injected fault lands.

use crate::config::TenantSpec;
use dtu_telemetry::clock::NS_PER_MS;
use dtu_telemetry::slo::EVAL_WINDOW_NS;
use dtu_telemetry::{
    AlertEvent, AlertKind, FlightRecorder, Layer, LogHistogram, SloSpec, SloTracker, Span,
    SpanKind, TimeSeries, WindowedHistogram,
};

/// How a [`LiveMonitor`] is shaped.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Dashboard window width, ns (default 1 s of simulated time).
    pub window_ns: f64,
    /// Windows retained per ring (default 128 → ~2 min of history).
    pub ring_windows: usize,
    /// SLO applied to every tenant (`None` = metrics only, no alerts).
    pub slo: Option<SloSpec>,
    /// Flight-recorder ring capacity, spans.
    pub flight_capacity: usize,
    /// Offset added to every request id in span labels and exemplars
    /// (default 0 = local ids). The fleet layer sets a per-(epoch,
    /// chip) base here so request ids are unique fleet-wide and a
    /// merged exemplar still names the chip and epoch that served it.
    pub trace_base: u64,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            window_ns: EVAL_WINDOW_NS,
            ring_windows: 128,
            slo: None,
            flight_capacity: dtu_telemetry::flight::DEFAULT_CAPACITY,
            trace_base: 0,
        }
    }
}

/// One tenant's live state.
#[derive(Debug, Clone)]
pub struct TenantLive {
    /// Tenant name (from its spec).
    pub name: String,
    /// Admitted arrivals per window.
    pub arrivals: TimeSeries,
    /// Admission sheds per window.
    pub sheds: TimeSeries,
    /// Fault-dropped requests per window.
    pub fault_drops: TimeSeries,
    /// Completed requests per window.
    pub completions: TimeSeries,
    /// Deadline violations per window (as judged by the engine's
    /// per-tenant SLA policy — the fleet rollup's numerator).
    pub violations: TimeSeries,
    /// Dispatched batches per window.
    pub dispatches: TimeSeries,
    /// Sum of dispatched batch sizes per window (with `dispatches`,
    /// gives mean batch occupancy).
    pub batch_occupancy: TimeSeries,
    /// Windowed latency histogram with exemplars.
    pub latency: WindowedHistogram,
    /// Burn-rate tracker, when an SLO is configured.
    pub slo: Option<SloTracker>,
}

impl TenantLive {
    fn new(name: &str, cfg: &LiveConfig) -> Self {
        let series = || TimeSeries::new(cfg.window_ns, cfg.ring_windows);
        TenantLive {
            name: name.to_string(),
            arrivals: series(),
            sheds: series(),
            fault_drops: series(),
            completions: series(),
            violations: series(),
            dispatches: series(),
            batch_occupancy: series(),
            latency: WindowedHistogram::new(cfg.window_ns, cfg.ring_windows),
            slo: cfg.slo.as_ref().map(|s| SloTracker::new(s.clone())),
        }
    }

    /// One dashboard row over the trailing `span_ns` at `now_ns`.
    pub fn row(&self, now_ns: f64, span_ns: f64) -> TenantRow {
        let hist = self.latency.merged_over(now_ns, span_ns);
        let dispatches = self.dispatches.sum_over(now_ns, span_ns);
        TenantRow {
            name: self.name.clone(),
            qps: self.completions.rate_per_sec(now_ns, span_ns),
            shed_rate: self.sheds.rate_per_sec(now_ns, span_ns),
            drop_rate: self.fault_drops.rate_per_sec(now_ns, span_ns),
            p50_ms: hist.quantile(0.50),
            p99_ms: hist.quantile(0.99),
            mean_batch: if dispatches > 0.0 {
                self.batch_occupancy.sum_over(now_ns, span_ns) / dispatches
            } else {
                0.0
            },
            burn_fast: self.slo.as_ref().map_or(0.0, |s| s.burn_fast(now_ns)),
            burn_slow: self.slo.as_ref().map_or(0.0, |s| s.burn_slow(now_ns)),
            firing: self.slo.as_ref().is_some_and(|s| s.firing()),
            exemplar: self
                .latency
                .exemplar_over(now_ns, span_ns)
                .map(|e| e.span_id),
        }
    }

    /// Latency histogram over the whole retained history.
    pub fn latency_hist(&self) -> LogHistogram {
        self.latency.merged()
    }
}

/// One rendered dashboard row (what `topsexec top` prints per tenant).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantRow {
    /// Tenant name.
    pub name: String,
    /// Completions per simulated second over the window.
    pub qps: f64,
    /// Sheds per simulated second over the window.
    pub shed_rate: f64,
    /// Fault drops per simulated second over the window.
    pub drop_rate: f64,
    /// Windowed p50 latency, ms.
    pub p50_ms: f64,
    /// Windowed p99 latency, ms.
    pub p99_ms: f64,
    /// Mean dispatched batch size over the window.
    pub mean_batch: f64,
    /// Fast-window SLO burn rate (0 without an SLO).
    pub burn_fast: f64,
    /// Slow-window SLO burn rate (0 without an SLO).
    pub burn_slow: f64,
    /// Whether the tenant's burn-rate alert is firing.
    pub firing: bool,
    /// Span id of the slowest request in the window, when any.
    pub exemplar: Option<u64>,
}

/// The live observability sidecar of one serving run.
#[derive(Debug, Clone)]
pub struct LiveMonitor {
    cfg: LiveConfig,
    tenants: Vec<TenantLive>,
    /// The shared black box.
    pub flight: FlightRecorder,
    /// Every alert emitted, in simulated-time order, tagged with the
    /// tenant index it belongs to.
    pub alerts: Vec<(usize, AlertEvent)>,
    /// Next evaluation boundary (multiples of [`EVAL_WINDOW_NS`]).
    next_eval_ns: f64,
    now_ns: f64,
}

impl LiveMonitor {
    /// Creates a monitor; tenants attach via [`LiveMonitor::begin`].
    pub fn new(cfg: LiveConfig) -> Self {
        let flight = FlightRecorder::new(cfg.flight_capacity);
        LiveMonitor {
            cfg,
            tenants: Vec::new(),
            flight,
            alerts: Vec::new(),
            next_eval_ns: EVAL_WINDOW_NS,
            now_ns: 0.0,
        }
    }

    /// A monitor with default windows and no SLO.
    pub fn with_defaults() -> Self {
        LiveMonitor::new(LiveConfig::default())
    }

    /// (Re-)initialises per-tenant state for a run. Called by
    /// [`run_serving_live`](crate::run_serving_live).
    pub fn begin(&mut self, tenants: &[TenantSpec]) {
        self.tenants = tenants
            .iter()
            .map(|t| TenantLive::new(&t.name, &self.cfg))
            .collect();
        self.alerts.clear();
        self.next_eval_ns = EVAL_WINDOW_NS;
        self.now_ns = 0.0;
    }

    /// Per-tenant live state.
    pub fn tenants(&self) -> &[TenantLive] {
        &self.tenants
    }

    /// The configured SLO, if any.
    pub fn slo_spec(&self) -> Option<&SloSpec> {
        self.cfg.slo.as_ref()
    }

    /// Latest simulated time the monitor has seen, ns.
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// Burn-rate alerts only (excludes fault markers and resolutions).
    pub fn burn_alerts(&self) -> impl Iterator<Item = &(usize, AlertEvent)> + '_ {
        self.alerts
            .iter()
            .filter(|(_, a)| a.kind == AlertKind::BurnRate)
    }

    /// Advances simulated time to `t_ns`, running every pending SLO
    /// evaluation boundary in order. Returns alerts that transitioned,
    /// oldest first. Burn-rate alerts trigger a flight-recorder dump.
    pub fn advance(&mut self, t_ns: f64) -> Vec<(usize, AlertEvent)> {
        self.now_ns = self.now_ns.max(t_ns);
        let mut fired = Vec::new();
        while self.next_eval_ns <= t_ns {
            let at = self.next_eval_ns;
            for (idx, ten) in self.tenants.iter_mut().enumerate() {
                if let Some(tracker) = ten.slo.as_mut() {
                    let exemplar = ten
                        .latency
                        .exemplar_over(at, tracker.spec.fast_window_ns)
                        .map(|e| e.span_id);
                    if let Some(alert) = tracker.evaluate(at, exemplar) {
                        if alert.kind == AlertKind::BurnRate {
                            self.flight
                                .trigger(format!("alert {} ({})", alert.slo, ten.name), at);
                        }
                        fired.push((idx, alert));
                    }
                }
            }
            self.next_eval_ns += EVAL_WINDOW_NS;
        }
        self.alerts.extend(fired.iter().cloned());
        fired
    }

    /// Finishes the run at `end_ns`: runs the remaining boundaries plus
    /// one final evaluation past the end so trailing windows are
    /// judged. Returns any alerts that transitioned.
    pub fn finish(&mut self, end_ns: f64) -> Vec<(usize, AlertEvent)> {
        let last = (end_ns / EVAL_WINDOW_NS).ceil() * EVAL_WINDOW_NS;
        self.advance(last.max(self.next_eval_ns))
    }

    // ---- engine hooks (pure observation) ------------------------------

    /// A request was admitted.
    pub fn on_arrival(&mut self, t_ns: f64, tenant: usize) {
        if let Some(t) = self.tenants.get_mut(tenant) {
            t.arrivals.add(t_ns, 1.0);
        }
    }

    /// A request was shed by admission control.
    pub fn on_shed(&mut self, t_ns: f64, tenant: usize, req: u64) {
        if let Some(t) = self.tenants.get_mut(tenant) {
            t.sheds.add(t_ns, 1.0);
        }
        let id = self.cfg.trace_base + req;
        self.flight.record(Span::marker(
            Layer::Serving,
            tenant as u32,
            format!("shed {id}"),
            t_ns,
        ));
    }

    /// A batch started service.
    pub fn on_dispatch(&mut self, t_ns: f64, tenant: usize, batch: usize, service_ms: f64) {
        if let Some(t) = self.tenants.get_mut(tenant) {
            t.dispatches.add(t_ns, 1.0);
            t.batch_occupancy.add(t_ns, batch as f64);
        }
        self.flight.record(Span::new(
            SpanKind::Batch,
            Layer::Serving,
            tenant as u32,
            format!("batch {batch}"),
            t_ns,
            t_ns + service_ms * NS_PER_MS,
        ));
    }

    /// A request completed; `req` is its id (the exemplar span id).
    pub fn on_complete_request(
        &mut self,
        t_ns: f64,
        tenant: usize,
        req: u64,
        latency_ms: f64,
        violated: bool,
    ) {
        let id = self.cfg.trace_base + req;
        if let Some(t) = self.tenants.get_mut(tenant) {
            t.completions.add(t_ns, 1.0);
            if violated {
                t.violations.add(t_ns, 1.0);
            }
            t.latency.record(t_ns, latency_ms, Some(id));
            if let Some(tracker) = t.slo.as_mut() {
                tracker.observe(t_ns, latency_ms);
            }
        }
        self.flight.record(Span::new(
            SpanKind::Request,
            Layer::Serving,
            tenant as u32,
            format!("req {id}{}", if violated { " (late)" } else { "" }),
            t_ns - latency_ms * NS_PER_MS,
            t_ns,
        ));
    }

    /// A transient injected fault hit the tenant's in-flight batch.
    /// Emits (and returns) a fault alert and dumps the flight recorder.
    pub fn on_fault(&mut self, t_ns: f64, tenant: usize, label: &str) -> AlertEvent {
        self.flight.record(Span::new(
            SpanKind::Fault,
            Layer::Serving,
            tenant as u32,
            format!("fault {label}"),
            t_ns,
            t_ns,
        ));
        self.flight.trigger(format!("fault {label}"), t_ns);
        let alert = AlertEvent {
            t_ns,
            slo: label.to_string(),
            kind: AlertKind::Fault,
            burn_fast: 0.0,
            burn_slow: 0.0,
            exemplar: None,
        };
        self.alerts.push((tenant, alert.clone()));
        alert
    }

    /// Requests were fault-dropped.
    pub fn on_fault_drop(&mut self, t_ns: f64, tenant: usize, dropped: usize) {
        if let Some(t) = self.tenants.get_mut(tenant) {
            t.fault_drops.add(t_ns, dropped as f64);
        }
        self.flight.record(Span::marker(
            Layer::Serving,
            tenant as u32,
            format!("fault-drop {dropped}"),
            t_ns,
        ));
    }

    /// A core failure removed one of the tenant's groups: a permanent
    /// fault, so it also dumps the flight recorder. Returns the alert.
    pub fn on_group_lost(
        &mut self,
        t_ns: f64,
        tenant: usize,
        cluster: usize,
        group: usize,
    ) -> AlertEvent {
        self.flight.record(Span::new(
            SpanKind::Fault,
            Layer::Serving,
            tenant as u32,
            format!("group {cluster}.{group} lost"),
            t_ns,
            t_ns,
        ));
        self.flight
            .trigger(format!("core-failure {cluster}.{group}"), t_ns);
        let alert = AlertEvent {
            t_ns,
            slo: "core-failure".to_string(),
            kind: AlertKind::Fault,
            burn_fast: 0.0,
            burn_slow: 0.0,
            exemplar: None,
        };
        self.alerts.push((tenant, alert.clone()));
        alert
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor_with_slo() -> LiveMonitor {
        let cfg = LiveConfig {
            slo: Some(SloSpec::new("p99<5ms", 0.99, 5.0)),
            ..LiveConfig::default()
        };
        let mut m = LiveMonitor::new(cfg);
        m.begin(&[TenantSpec::poisson("t0", 0, 100.0)]);
        m
    }

    #[test]
    fn rows_reflect_traffic() {
        let mut m = LiveMonitor::with_defaults();
        m.begin(&[TenantSpec::poisson("a", 0, 1.0)]);
        for i in 0..100 {
            let t = i as f64 * 1e7; // 100 events over 1 s
            m.on_arrival(t, 0);
            m.on_complete_request(t + 1e6, 0, i, 1.0, false);
        }
        m.on_dispatch(5e8, 0, 4, 1.0);
        m.advance(1e9);
        let row = m.tenants()[0].row(1e9, 2e9);
        assert_eq!(row.name, "a");
        assert!(row.qps > 0.0);
        assert!((row.p50_ms - 1.0).abs() / 1.0 <= 0.02);
        assert_eq!(row.mean_batch, 4.0);
        assert_eq!(row.exemplar, Some(0), "first (slowest tie) request");
        assert!(!row.firing);
    }

    #[test]
    fn sustained_violations_alert_and_dump() {
        let mut m = monitor_with_slo();
        let mut transitions = Vec::new();
        for i in 0..20 {
            let now = i as f64 * 1e9;
            for j in 0..20 {
                let t = now + j as f64 * 4e7;
                m.on_arrival(t, 0);
                // Half the requests violate the 5 ms deadline.
                let lat = if j % 2 == 0 { 40.0 } else { 1.0 };
                m.on_complete_request(t, 0, (i * 20 + j) as u64, lat, lat > 5.0);
            }
            transitions.extend(m.advance(now + 0.999e9));
        }
        transitions.extend(m.finish(20e9));
        let fired: Vec<_> = transitions
            .iter()
            .filter(|(_, a)| a.kind == AlertKind::BurnRate)
            .collect();
        assert_eq!(fired.len(), 1, "steady breach fires exactly once");
        let (tenant, alert) = fired[0];
        assert_eq!(*tenant, 0);
        // The exemplar resolves in the dump the alert triggered.
        let id = alert.exemplar.expect("alert carries an exemplar");
        let dump = m.flight.latest().expect("alert dumped the flight ring");
        assert!(dump.reason.starts_with("alert"));
        assert!(
            dump.resolves_label(&format!("req {id}")),
            "exemplar span must be in the dump"
        );
    }

    #[test]
    fn faults_dump_without_slo() {
        let mut m = LiveMonitor::with_defaults();
        m.begin(&[TenantSpec::poisson("t0", 0, 10.0)]);
        m.on_complete_request(1e9, 0, 1, 2.0, false);
        m.on_fault(2e9, 0, "dma-timeout");
        m.on_fault_drop(2.1e9, 0, 3);
        assert_eq!(m.flight.dumps().len(), 1);
        assert_eq!(m.alerts.len(), 1);
        assert_eq!(m.alerts[0].1.kind, AlertKind::Fault);
        assert!(m.flight.dumps()[0].resolves_label("req 1"));
        let row = m.tenants()[0].row(2.5e9, 5e9);
        assert!(row.drop_rate > 0.0);
    }

    #[test]
    fn trace_base_offsets_span_labels_and_exemplars() {
        let base = 0x1_0000u64;
        let cfg = LiveConfig {
            trace_base: base,
            ..LiveConfig::default()
        };
        let mut m = LiveMonitor::new(cfg);
        m.begin(&[TenantSpec::poisson("t0", 0, 10.0)]);
        m.on_complete_request(1e9, 0, 7, 3.0, false);
        m.on_shed(1.1e9, 0, 8);
        let row = m.tenants()[0].row(1.5e9, 2e9);
        assert_eq!(row.exemplar, Some(base + 7), "exemplar carries the base");
        let labels: Vec<&str> = m.flight.spans().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&format!("req {}", base + 7).as_str()));
        assert!(labels.contains(&format!("shed {}", base + 8).as_str()));
    }

    #[test]
    fn violations_series_counts_late_completions() {
        let mut m = LiveMonitor::with_defaults();
        m.begin(&[TenantSpec::poisson("t0", 0, 10.0)]);
        m.on_complete_request(0.2e9, 0, 1, 60.0, true);
        m.on_complete_request(0.4e9, 0, 2, 1.0, false);
        m.on_complete_request(1.4e9, 0, 3, 70.0, true);
        let t = &m.tenants()[0];
        assert_eq!(t.violations.total(), 2.0);
        assert_eq!(t.violations.sum_over(0.9e9, 1e9), 1.0);
        assert_eq!(t.completions.total(), 3.0);
    }

    #[test]
    fn clean_run_stays_quiet() {
        let mut m = monitor_with_slo();
        for i in 0..60 {
            let now = i as f64 * 1e9;
            for j in 0..10 {
                m.on_complete_request(now + j as f64 * 1e8, 0, (i * 10 + j) as u64, 1.0, false);
            }
            assert!(m.advance(now + 0.999e9).is_empty());
        }
        assert!(m.finish(60e9).is_empty());
        assert!(m.alerts.is_empty());
        assert_eq!(m.flight.dumps().len(), 0);
        assert!(!m.flight.is_empty(), "ring records even when healthy");
    }
}
