//! Seeded arrival processes: Poisson and bursty (Markov-modulated).
//!
//! Every tenant owns one [`ArrivalGen`], seeded from the run seed and
//! the tenant index, so a serving run is a pure function of its
//! configuration — the determinism the replay/trace tests rely on.

/// Deterministic xorshift64 PRNG.
///
/// The seed is scrambled through splitmix64 before use: raw xorshift
/// state mixes slowly from small seeds, and a poorly-mixed first draw
/// becomes an absurd first inter-arrival time (`-ln(tiny)` is huge) —
/// enough to push a light-load tenant's whole arrival stream past the
/// horizon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRng(u64);

impl ServeRng {
    /// Seeds the generator (the state is scrambled and forced nonzero).
    pub fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        ServeRng((z ^ (z >> 31)) | 1)
    }

    /// Uniform draw in `(0, 1]`.
    pub fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        ((self.0 >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// Exponential draw with rate `lambda` per ms.
    pub fn next_exp_ms(&mut self, lambda_per_ms: f64) -> f64 {
        -self.next_f64().ln() / lambda_per_ms
    }
}

/// The stochastic shape of a tenant's offered load.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant mean rate (queries/second).
    Poisson {
        /// Mean arrival rate, queries/second.
        qps: f64,
    },
    /// Two-state Markov-modulated Poisson process: the tenant alternates
    /// between a baseline and a burst phase, with exponentially
    /// distributed dwell times. This is the "heavy traffic" shape cloud
    /// front-ends actually see — long quiet stretches punctured by
    /// flash crowds — and what the autoscaler is sized against.
    Bursty {
        /// Baseline arrival rate, queries/second.
        base_qps: f64,
        /// Burst-phase arrival rate, queries/second.
        burst_qps: f64,
        /// Mean dwell time in each phase, ms.
        mean_dwell_ms: f64,
    },
}

impl ArrivalProcess {
    /// Long-run mean rate in queries/second (phases weight equally for
    /// the bursty process because dwell times are symmetric).
    pub fn mean_qps(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { qps } => *qps,
            ArrivalProcess::Bursty {
                base_qps,
                burst_qps,
                ..
            } => 0.5 * (base_qps + burst_qps),
        }
    }
}

/// Stateful generator producing one tenant's arrival times.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: ServeRng,
    /// Bursty state: currently in the burst phase?
    bursting: bool,
    /// Bursty state: absolute time the current phase ends, ms.
    phase_ends_ms: f64,
}

impl ArrivalGen {
    /// Creates a generator for one tenant.
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        ArrivalGen {
            process,
            rng: ServeRng::new(seed),
            bursting: false,
            phase_ends_ms: 0.0,
        }
    }

    /// The next arrival strictly after time `t` (ms).
    ///
    /// For the bursty process this uses the memoryless-restart
    /// construction: draw an inter-arrival at the current phase's rate;
    /// if it crosses the phase boundary, advance to the boundary,
    /// switch phase, and redraw — valid because the exponential
    /// distribution is memoryless.
    pub fn next_after(&mut self, mut t: f64) -> f64 {
        match self.process {
            ArrivalProcess::Poisson { qps } => t + self.rng.next_exp_ms(qps / 1e3),
            ArrivalProcess::Bursty {
                base_qps,
                burst_qps,
                mean_dwell_ms,
            } => loop {
                if t >= self.phase_ends_ms {
                    // Entering a fresh phase (also initialises the first).
                    if self.phase_ends_ms > 0.0 {
                        self.bursting = !self.bursting;
                    }
                    self.phase_ends_ms = t + self.rng.next_exp_ms(1.0 / mean_dwell_ms);
                }
                let qps = if self.bursting { burst_qps } else { base_qps };
                let candidate = t + self.rng.next_exp_ms(qps / 1e3);
                if candidate <= self.phase_ends_ms {
                    return candidate;
                }
                t = self.phase_ends_ms;
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_in_unit_interval() {
        let mut a = ServeRng::new(42);
        let mut b = ServeRng::new(42);
        for _ in 0..1000 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!(x > 0.0 && x <= 1.0);
        }
    }

    #[test]
    fn poisson_rate_is_respected() {
        let mut gen = ArrivalGen::new(ArrivalProcess::Poisson { qps: 1000.0 }, 7);
        let mut t = 0.0;
        let mut n = 0u64;
        while t < 10_000.0 {
            t = gen.next_after(t);
            n += 1;
        }
        // 1000 qps = 1/ms over 10 000 ms -> ~10 000 arrivals (±5%).
        let rate = n as f64 / 10_000.0;
        assert!((0.95..1.05).contains(&rate), "rate {rate}");
    }

    #[test]
    fn bursty_mean_rate_matches_phase_average() {
        let p = ArrivalProcess::Bursty {
            base_qps: 200.0,
            burst_qps: 1800.0,
            mean_dwell_ms: 50.0,
        };
        assert_eq!(p.mean_qps(), 1000.0);
        let mut gen = ArrivalGen::new(p, 11);
        let mut t = 0.0;
        let mut n = 0u64;
        while t < 50_000.0 {
            t = gen.next_after(t);
            n += 1;
        }
        let rate_qps = n as f64 / 50.0;
        assert!(
            (800.0..1200.0).contains(&rate_qps),
            "long-run rate {rate_qps} qps"
        );
    }

    #[test]
    fn bursty_arrivals_strictly_increase() {
        let mut gen = ArrivalGen::new(
            ArrivalProcess::Bursty {
                base_qps: 100.0,
                burst_qps: 5000.0,
                mean_dwell_ms: 10.0,
            },
            3,
        );
        let mut t = 0.0;
        for _ in 0..10_000 {
            let next = gen.next_after(t);
            assert!(next > t);
            t = next;
        }
    }
}
