//! Per-token cost models for generative serving.
//!
//! The continuous batcher prices two kernel families: **prefill** (all
//! of a joining group's prompts in one full-sequence pass) and
//! **decode** (one token for every running sequence against its
//! KV-cache). [`TokenModel`] is the interface; [`AnalyticTokenModel`]
//! is the closed-form curve scheduler tests run against, and
//! [`CompiledTokenModel`] prices steps by compiling and simulating the
//! workload's real prefill/decode graphs on the chip — reusing the
//! single-shot [`CompiledModel`](crate::CompiledModel) session cache
//! (and therefore the shared [`ProgramSource`] artifact cache)
//! underneath.

use crate::model::{CacheStats, CompiledModel, ProgramSource, ServiceModel};
use crate::ServeError;
use dtu_compiler::Placement;
use dtu_models::Workload;
use dtu_sim::{Chip, GroupId, TimingBackend};
use std::collections::HashMap;

/// Cost of one continuous-batching iteration.
pub trait TokenModel {
    /// Model name for reports and traces.
    fn name(&self) -> &str;

    /// Latency of one prefill step: `batch` sequences processing
    /// prompts of (up to) `tokens` tokens, ms.
    ///
    /// # Errors
    ///
    /// Compile/simulate failures surface as [`ServeError`].
    fn prefill_ms(&mut self, batch: usize, tokens: usize) -> Result<f64, ServeError>;

    /// Latency of one decode step: `batch` sequences each producing one
    /// token against a KV-cache of (up to) `context` tokens, ms. KV
    /// spill DMA is charged separately by the allocator.
    ///
    /// # Errors
    ///
    /// Compile/simulate failures surface as [`ServeError`].
    fn decode_ms(&mut self, batch: usize, context: usize) -> Result<f64, ServeError>;
}

/// Closed-form per-token cost curve for batcher unit tests.
///
/// Prefill is linear in prompt tokens with sublinear batch scaling;
/// decode has a fixed launch cost plus a per-context term (the KV
/// stream) with near-perfect batch amortisation of the launch:
///
/// ```text
/// prefill(b, n) = prefill_token_us · n · (overhead + (1 − overhead) · b) / 1000
/// decode(b, c)  = decode_base_ms · (overhead + (1 − overhead) · b)
///                 + context_us · c / 1000
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticTokenModel {
    /// Name used in reports.
    pub name: String,
    /// Prefill cost per prompt token per sequence, µs.
    pub prefill_token_us: f64,
    /// Fixed decode-step launch cost, ms.
    pub decode_base_ms: f64,
    /// Decode cost per context token, µs.
    pub context_us: f64,
    /// Fraction of cost that is per-step overhead rather than
    /// per-sequence work (same convention as `AnalyticModel`).
    pub batch_overhead: f64,
}

impl AnalyticTokenModel {
    /// A model with the default curve: 2 µs/prompt-token, 0.2 ms decode
    /// launch, 0.5 µs/context-token.
    pub fn new(name: impl Into<String>) -> Self {
        AnalyticTokenModel {
            name: name.into(),
            prefill_token_us: 2.0,
            decode_base_ms: 0.2,
            context_us: 0.5,
            batch_overhead: 0.7,
        }
    }
}

impl TokenModel for AnalyticTokenModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn prefill_ms(&mut self, batch: usize, tokens: usize) -> Result<f64, ServeError> {
        if batch == 0 {
            return Err(ServeError::Config("batch must be at least 1".into()));
        }
        let batch_cost = self.batch_overhead + (1.0 - self.batch_overhead) * batch as f64;
        Ok(self.prefill_token_us * tokens as f64 * batch_cost / 1000.0)
    }

    fn decode_ms(&mut self, batch: usize, context: usize) -> Result<f64, ServeError> {
        if batch == 0 {
            return Err(ServeError::Config("batch must be at least 1".into()));
        }
        let batch_cost = self.batch_overhead + (1.0 - self.batch_overhead) * batch as f64;
        Ok(self.decode_base_ms * batch_cost + self.context_us * context as f64 / 1000.0)
    }
}

/// A generative workload priced through the real compiled stack.
///
/// Sessions are **bucketed**: batch sizes round up to the next power of
/// two and decode contexts to the next power of two as well, so a long
/// run compiles a handful of sessions instead of one per (batch,
/// context) pair. Prefill compiles the workload's bound-prompt graph at
/// the batch bucket and scales the measured latency linearly to the
/// requested token count (prefill MACs are linear in prompt length to
/// first order; the quadratic attention term is a small fraction at
/// serving prompt lengths). All steps run on the full chip — continuous
/// batching already time-multiplexes the device, so there is no
/// per-tenant partitioning as in the fixed-batch engine.
pub struct CompiledTokenModel<'c, W: Workload + Clone + 'c> {
    name: String,
    workload: W,
    /// Prompt length `workload.build` graphs are bound to.
    prompt_tokens: usize,
    placement: Placement,
    prefill: CompiledModel<'c>,
    /// One compiled-model session cache per decode context bucket.
    decode: HashMap<usize, CompiledModel<'c>>,
    chip: &'c Chip,
    source: Option<&'c dyn ProgramSource>,
    timing: Option<&'c dyn TimingBackend>,
}

impl<'c, W: Workload + Clone + 'c> std::fmt::Debug for CompiledTokenModel<'c, W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledTokenModel")
            .field("name", &self.name)
            .field("prompt_tokens", &self.prompt_tokens)
            .field("decode_buckets", &self.decode.len())
            .finish()
    }
}

fn full_chip_placement(chip: &Chip) -> Placement {
    let cfg = chip.config();
    let mut groups = Vec::with_capacity(cfg.total_groups());
    for cluster in 0..cfg.clusters {
        for group in 0..cfg.groups_per_cluster {
            groups.push(GroupId::new(cluster, group));
        }
    }
    Placement::explicit(groups)
}

fn bucket(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

impl<'c, W: Workload + Clone + 'c> CompiledTokenModel<'c, W> {
    /// Wraps a generative workload whose prefill graphs are bound to
    /// `prompt_tokens`-token prompts.
    pub fn new(chip: &'c Chip, workload: W, prompt_tokens: usize) -> Self {
        let name = workload.name();
        let prefill_workload = workload.clone();
        let prefill = CompiledModel::new(chip, format!("{name}-prefill"), move |b| {
            prefill_workload.build(b)
        });
        CompiledTokenModel {
            name,
            workload,
            prompt_tokens: prompt_tokens.max(1),
            placement: full_chip_placement(chip),
            prefill,
            decode: HashMap::new(),
            chip,
            source: None,
            timing: None,
        }
    }

    /// Routes program compilation through an external [`ProgramSource`]
    /// (builder-style), exactly as
    /// [`CompiledModel::with_source`](crate::CompiledModel::with_source).
    pub fn with_source(mut self, source: &'c dyn ProgramSource) -> Self {
        self.source = Some(source);
        self.prefill = self.prefill.with_source(source);
        self
    }

    /// Prices every phase (prefill and all decode buckets, existing and
    /// future) through an alternative [`TimingBackend`], exactly as
    /// [`CompiledModel::with_timing`](crate::CompiledModel::with_timing).
    pub fn with_timing(mut self, timing: &'c dyn TimingBackend) -> Self {
        self.timing = Some(timing);
        self.prefill = self.prefill.with_timing(timing);
        self.decode = std::mem::take(&mut self.decode)
            .into_iter()
            .map(|(k, m)| (k, m.with_timing(timing)))
            .collect();
        self
    }

    /// Aggregate session-cache hit/miss counters over the prefill and
    /// every decode-bucket cache.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = self.prefill.cache_stats();
        for m in self.decode.values() {
            let s = m.cache_stats();
            total.hits += s.hits;
            total.misses += s.misses;
        }
        total
    }

    /// Number of distinct compiled sessions across both phases.
    pub fn cached_sessions(&self) -> usize {
        self.prefill.cached_sessions()
            + self
                .decode
                .values()
                .map(|m| m.cached_sessions())
                .sum::<usize>()
    }

    /// The (batch, context) buckets a step resolves to — exposed so
    /// warm-up code can pre-compile exactly the sessions a run will use.
    pub fn buckets(batch: usize, context: usize) -> (usize, usize) {
        (bucket(batch), bucket(context))
    }
}

impl<'c, W: Workload + Clone + 'c> TokenModel for CompiledTokenModel<'c, W> {
    fn name(&self) -> &str {
        &self.name
    }

    fn prefill_ms(&mut self, batch: usize, tokens: usize) -> Result<f64, ServeError> {
        if batch == 0 {
            return Err(ServeError::Config("batch must be at least 1".into()));
        }
        let measured = self.prefill.service_ms(bucket(batch), &self.placement)?;
        Ok(measured * tokens as f64 / self.prompt_tokens as f64)
    }

    fn decode_ms(&mut self, batch: usize, context: usize) -> Result<f64, ServeError> {
        if batch == 0 {
            return Err(ServeError::Config("batch must be at least 1".into()));
        }
        let ctx_bucket = bucket(context);
        let model = match self.decode.get_mut(&ctx_bucket) {
            Some(m) => m,
            None => {
                let workload = self.workload.clone();
                let name = format!("{}-decode-c{ctx_bucket}", self.name);
                let mut m = CompiledModel::new(self.chip, name, move |b| {
                    workload
                        .decode(b, ctx_bucket)
                        .expect("generative workload must emit a decode graph")
                });
                if let Some(source) = self.source {
                    m = m.with_source(source);
                }
                if let Some(timing) = self.timing {
                    m = m.with_timing(timing);
                }
                self.decode.entry(ctx_bucket).or_insert(m)
            }
        };
        model.service_ms(bucket(batch), &self.placement)
    }
}

/// Blanket adapter: any [`TokenModel`] also works as a single-shot
/// [`ServiceModel`] by pricing each request as one bound-prompt prefill
/// — the shared-path direction of the `Workload` split (a generative
/// model can stand in wherever a single-shot model is expected).
#[derive(Debug)]
pub struct PrefillOnly<M: TokenModel> {
    inner: M,
    prompt_tokens: usize,
}

impl<M: TokenModel> PrefillOnly<M> {
    /// Adapts `inner` at a fixed prompt length.
    pub fn new(inner: M, prompt_tokens: usize) -> Self {
        PrefillOnly {
            inner,
            prompt_tokens,
        }
    }
}

impl<M: TokenModel> ServiceModel for PrefillOnly<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn service_ms(&mut self, batch: usize, _placement: &Placement) -> Result<f64, ServeError> {
        self.inner.prefill_ms(batch, self.prompt_tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_models::{GenerativeConfig, GenerativeModel};
    use dtu_sim::ChipConfig;

    #[test]
    fn analytic_prefill_is_linear_in_tokens() {
        let mut m = AnalyticTokenModel::new("m");
        let a = m.prefill_ms(1, 100).unwrap();
        let b = m.prefill_ms(1, 200).unwrap();
        assert!((b - 2.0 * a).abs() < 1e-12);
        assert!(m.prefill_ms(0, 1).is_err());
    }

    #[test]
    fn analytic_decode_grows_with_context_and_amortises_batch() {
        let mut m = AnalyticTokenModel::new("m");
        let short = m.decode_ms(1, 64).unwrap();
        let long = m.decode_ms(1, 2048).unwrap();
        assert!(long > short);
        // Batch 8 in one step is far cheaper than 8 single steps.
        let b8 = m.decode_ms(8, 64).unwrap();
        assert!(b8 < 8.0 * short);
        assert!(m.decode_ms(0, 1).is_err());
    }

    #[test]
    fn compiled_token_model_buckets_sessions() {
        let chip = Chip::new(ChipConfig::dtu20());
        let w = GenerativeModel::new(GenerativeConfig::tiny(), 32);
        let mut m = CompiledTokenModel::new(&chip, w, 32);
        // Contexts 33 and 60 share the 64-bucket; batches 3 and 4 share
        // the 4-bucket — one compiled session for all four calls.
        let a = m.decode_ms(3, 33).unwrap();
        let b = m.decode_ms(4, 60).unwrap();
        assert_eq!(a, b);
        assert_eq!(m.cached_sessions(), 1);
        assert_eq!(m.cache_stats().misses, 1);
        assert_eq!(m.cache_stats().hits, 1);
        // A new context bucket compiles a new session.
        m.decode_ms(3, 100).unwrap();
        assert_eq!(m.cached_sessions(), 2);
        assert_eq!(
            CompiledTokenModel::<GenerativeModel>::buckets(3, 100),
            (4, 128)
        );
    }

    #[test]
    fn compiled_prefill_scales_to_requested_tokens() {
        let chip = Chip::new(ChipConfig::dtu20());
        let w = GenerativeModel::new(GenerativeConfig::tiny(), 64);
        let mut m = CompiledTokenModel::new(&chip, w, 64);
        let bound = m.prefill_ms(1, 64).unwrap();
        let resumed = m.prefill_ms(1, 96).unwrap();
        assert!(bound > 0.0);
        assert!((resumed - bound * 1.5).abs() < 1e-9);
    }

    #[test]
    fn decode_step_is_much_cheaper_than_prefill() {
        // The serving-side restatement of the graph-level MAC split.
        let chip = Chip::new(ChipConfig::dtu20());
        let w = GenerativeModel::new(GenerativeConfig::tiny(), 256);
        let mut m = CompiledTokenModel::new(&chip, w, 256);
        let prefill = m.prefill_ms(1, 256).unwrap();
        let decode = m.decode_ms(1, 256).unwrap();
        assert!(
            decode < prefill,
            "decode {decode} ms should undercut prefill {prefill} ms"
        );
    }

    #[test]
    fn analytic_timing_prices_token_steps_close_to_interpreter() {
        let chip = Chip::new(ChipConfig::dtu20());
        let backend = dtu_sim::AnalyticBackend::calibrated(chip.config()).unwrap();
        let w = GenerativeModel::new(GenerativeConfig::tiny(), 64);
        let mut interp = CompiledTokenModel::new(&chip, w.clone(), 64);
        let mut fast = CompiledTokenModel::new(&chip, w, 64).with_timing(&backend);
        let pairs = [
            (
                interp.prefill_ms(2, 64).unwrap(),
                fast.prefill_ms(2, 64).unwrap(),
            ),
            (
                interp.decode_ms(2, 64).unwrap(),
                fast.decode_ms(2, 64).unwrap(),
            ),
        ];
        for (a, b) in pairs {
            assert!(
                ((a - b) / a).abs() < 0.05,
                "interpreted {a} ms vs analytic {b} ms"
            );
        }
    }

    #[test]
    fn prefill_only_adapter_serves_like_a_single_shot_model() {
        let mut m = PrefillOnly::new(AnalyticTokenModel::new("gen"), 128);
        let p = Placement::explicit(vec![GroupId::new(0, 0)]);
        let one = m.service_ms(1, &p).unwrap();
        let inner = AnalyticTokenModel::new("gen").prefill_ms(1, 128).unwrap();
        assert_eq!(one, inner);
        assert_eq!(m.name(), "gen");
    }
}
