//! `dtu-faults` — deterministic, seeded fault injection for the stack.
//!
//! The paper's cloud story rests on resource-group virtualization and
//! DVFS staying useful when hardware misbehaves: a DTU 2.0 deployment
//! must keep serving tenants when a core degrades, a DMA engine
//! stalls, or thermal pressure forces a frequency drop. This crate is
//! the *schedule* side of that story: a [`FaultPlan`] is a seeded,
//! fully reproducible list of typed [`FaultEvent`]s, and a
//! [`FaultSession`] is the mutable per-execution view the simulator
//! consumes — which events fired, which transient errors were already
//! retried past, how much stall time injection added.
//!
//! The crate deliberately has **no dependencies**: `dtu-sim` consumes
//! a session through small query methods, `dtu-core`/`dtu-serve` build
//! recovery on top, and everything stays byte-for-byte reproducible
//! because the only randomness is the plan's own [`FaultRng`].
//!
//! Two invariants the rest of the stack relies on:
//!
//! * **Empty plans are invisible.** A [`FaultSession`] over a plan with
//!   zero events answers every query with "nothing fired" without
//!   perturbing any arithmetic, so a faulted run under an empty plan is
//!   byte-identical to the unfaulted path (property-tested at the
//!   workspace level).
//! * **Same seed, same schedule.** [`FaultPlan::preset`] derives every
//!   event time and magnitude from the seed via [`FaultRng`], so two
//!   runs of the same (plan name, seed, severity, chip shape) produce
//!   identical schedules — and identical reports — whatever thread
//!   count or wall clock the host had.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

/// The typed fault classes a plan can schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Permanent loss of a processing group's cores from `at_ns`
    /// onward. Any kernel that would still be running on the group at
    /// or after the failure time aborts with
    /// [`FaultError::CoreFailure`]; recovery remaps the workload onto
    /// the surviving groups.
    CoreFailure,
    /// An L2 ECC error. Correctable errors cost a scrub penalty
    /// (re-reading the poisoned line through the L2 port); an
    /// uncorrectable error aborts the launch with
    /// [`FaultError::UncorrectableEcc`] instead of silently producing
    /// wrong results.
    EccError {
        /// Whether hardware can scrub the error in place.
        correctable: bool,
    },
    /// The group's DMA engine degrades for a window: transfers that
    /// start inside `[at_ns, at_ns + duration_ns)` take `factor`×
    /// their nominal time.
    DmaStall {
        /// Slowdown multiplier (≥ 1).
        factor: f64,
        /// Window length, ns.
        duration_ns: f64,
    },
    /// The group's DMA engine times out: the first transfer issued at
    /// or after `at_ns` aborts with [`FaultError::DmaTimeout`]
    /// (one-shot; a retry proceeds).
    DmaTimeout,
    /// A thermal DVFS throttle window: kernels launched inside
    /// `[at_ns, at_ns + duration_ns)` run at the chip's floor
    /// frequency regardless of what the governor wanted.
    ThermalThrottle {
        /// Window length, ns.
        duration_ns: f64,
    },
    /// Instruction-cache corruption at `at_ns`: the group's resident
    /// kernel code is invalidated once, forcing full reloads.
    IcacheCorruption,
}

impl FaultKind {
    /// Short lowercase label used in reports and trace spans.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::CoreFailure => "core-failure",
            FaultKind::EccError { correctable: true } => "ecc-correctable",
            FaultKind::EccError { correctable: false } => "ecc-uncorrectable",
            FaultKind::DmaStall { .. } => "dma-stall",
            FaultKind::DmaTimeout => "dma-timeout",
            FaultKind::ThermalThrottle { .. } => "thermal-throttle",
            FaultKind::IcacheCorruption => "icache-corruption",
        }
    }
}

/// One scheduled fault: what, where, when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Event time on the simulated clock, ns.
    pub at_ns: f64,
    /// Target cluster index.
    pub cluster: usize,
    /// Target group index within the cluster.
    pub group: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A typed, unrecoverable-at-the-simulator fault. The simulator aborts
/// the launch with one of these rather than silently computing wrong
/// results; recovery layers decide whether to remap (core failures are
/// permanent) or retry (ECC/DMA events are one-shot and consumed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultError {
    /// A processing group's cores failed mid-run.
    CoreFailure {
        /// Failed cluster.
        cluster: usize,
        /// Failed group within the cluster.
        group: usize,
        /// Failure time, ns.
        at_ns: f64,
    },
    /// An uncorrectable L2 ECC error poisoned a kernel's data.
    UncorrectableEcc {
        /// Affected cluster.
        cluster: usize,
        /// Affected group.
        group: usize,
        /// Error time, ns.
        at_ns: f64,
    },
    /// A DMA transfer timed out.
    DmaTimeout {
        /// Affected cluster.
        cluster: usize,
        /// Affected group.
        group: usize,
        /// Timeout time, ns.
        at_ns: f64,
    },
}

impl FaultError {
    /// Whether the fault is permanent (the group is gone) rather than
    /// a one-shot transient a retry can proceed past.
    pub fn is_permanent(&self) -> bool {
        matches!(self, FaultError::CoreFailure { .. })
    }

    /// The `(cluster, group)` the fault hit.
    pub fn location(&self) -> (usize, usize) {
        match *self {
            FaultError::CoreFailure { cluster, group, .. }
            | FaultError::UncorrectableEcc { cluster, group, .. }
            | FaultError::DmaTimeout { cluster, group, .. } => (cluster, group),
        }
    }

    /// The fault time, ns.
    pub fn at_ns(&self) -> f64 {
        match *self {
            FaultError::CoreFailure { at_ns, .. }
            | FaultError::UncorrectableEcc { at_ns, .. }
            | FaultError::DmaTimeout { at_ns, .. } => at_ns,
        }
    }
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::CoreFailure {
                cluster,
                group,
                at_ns,
            } => write!(
                f,
                "core failure on group {cluster}.{group} at {at_ns:.0} ns"
            ),
            FaultError::UncorrectableEcc {
                cluster,
                group,
                at_ns,
            } => write!(
                f,
                "uncorrectable L2 ECC error on group {cluster}.{group} at {at_ns:.0} ns"
            ),
            FaultError::DmaTimeout {
                cluster,
                group,
                at_ns,
            } => write!(f, "DMA timeout on group {cluster}.{group} at {at_ns:.0} ns"),
        }
    }
}

impl Error for FaultError {}

/// A small deterministic PRNG (splitmix64 seeding into xorshift64*),
/// the only randomness source of the crate. Also reused by the serving
/// engine for retry-backoff jitter so serving stays seed-reproducible.
#[derive(Debug, Clone)]
pub struct FaultRng(u64);

impl FaultRng {
    /// Creates a generator from a seed (any value, including 0).
    pub fn new(seed: u64) -> Self {
        // splitmix64 scrambling so nearby seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        FaultRng((z ^ (z >> 31)) | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `(0, 1]`.
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// Uniform draw in `[lo, hi)` (returns `lo` when the range is empty).
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            lo
        } else {
            lo + (hi - lo) * (1.0 - self.next_f64())
        }
    }

    /// Uniform integer draw in `[0, n)` (`n` must be > 0).
    pub fn next_index(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// The named plan presets `FaultPlan::preset` understands.
pub const PRESETS: &[&str] = &[
    "none",
    "core-failure",
    "ecc",
    "dma-stall",
    "dma-timeout",
    "thermal",
    "icache",
    "mixed",
];

/// A seeded, immutable schedule of fault events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed every event was derived from (0 for hand-built plans).
    pub seed: u64,
    /// Preset name the plan was derived from (empty for hand-built).
    pub name: String,
    /// The scheduled events, in insertion order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no events — the do-nothing plan the zero-cost
    /// invariant is stated against.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Builds a named preset plan for a chip of `clusters` ×
    /// `groups_per_cluster` groups over a run expected to last about
    /// `horizon_ns`.
    ///
    /// `severity` in `[0, 1]` scales event counts and magnitudes; 0
    /// still schedules one minimal event (use the `none` preset for a
    /// truly empty plan). All times and targets derive from `seed`.
    ///
    /// # Errors
    ///
    /// An unknown preset name (see [`PRESETS`]) is a `String` error
    /// naming the valid options.
    pub fn preset(
        name: &str,
        seed: u64,
        severity: f64,
        clusters: usize,
        groups_per_cluster: usize,
        horizon_ns: f64,
    ) -> Result<Self, String> {
        if !PRESETS.contains(&name) {
            return Err(format!(
                "unknown fault plan '{name}' (expected one of: {})",
                PRESETS.join(", ")
            ));
        }
        let severity = severity.clamp(0.0, 1.0);
        let mut rng = FaultRng::new(seed);
        let horizon = horizon_ns.max(1.0);
        let mut events = Vec::new();
        let target = |rng: &mut FaultRng| {
            let flat = rng.next_index((clusters * groups_per_cluster).max(1));
            (
                flat / groups_per_cluster.max(1),
                flat % groups_per_cluster.max(1),
            )
        };
        let count = 1 + (severity * 3.0) as usize;
        match name {
            "none" => {}
            "core-failure" => {
                // One permanent failure somewhere in the middle of the
                // run; severity pulls it earlier (more work to remap).
                let (c, g) = target(&mut rng);
                let frac = rng.next_range(0.15, 0.75) * (1.0 - 0.5 * severity);
                events.push(FaultEvent {
                    at_ns: horizon * frac,
                    cluster: c,
                    group: g,
                    kind: FaultKind::CoreFailure,
                });
            }
            "ecc" => {
                for i in 0..count {
                    let (c, g) = target(&mut rng);
                    // The last event escalates to uncorrectable at high
                    // severity.
                    let correctable = !(severity > 0.6 && i == count - 1);
                    events.push(FaultEvent {
                        at_ns: horizon * rng.next_range(0.05, 0.95),
                        cluster: c,
                        group: g,
                        kind: FaultKind::EccError { correctable },
                    });
                }
            }
            "dma-stall" => {
                for _ in 0..count {
                    let (c, g) = target(&mut rng);
                    events.push(FaultEvent {
                        at_ns: horizon * rng.next_range(0.0, 0.8),
                        cluster: c,
                        group: g,
                        kind: FaultKind::DmaStall {
                            factor: 1.5 + 6.0 * severity * rng.next_f64(),
                            duration_ns: horizon * rng.next_range(0.05, 0.1 + 0.4 * severity),
                        },
                    });
                }
            }
            "dma-timeout" => {
                let (c, g) = target(&mut rng);
                events.push(FaultEvent {
                    at_ns: horizon * rng.next_range(0.1, 0.9),
                    cluster: c,
                    group: g,
                    kind: FaultKind::DmaTimeout,
                });
            }
            "thermal" => {
                for _ in 0..count {
                    let (c, g) = target(&mut rng);
                    events.push(FaultEvent {
                        at_ns: horizon * rng.next_range(0.0, 0.7),
                        cluster: c,
                        group: g,
                        kind: FaultKind::ThermalThrottle {
                            duration_ns: horizon * rng.next_range(0.1, 0.2 + 0.6 * severity),
                        },
                    });
                }
            }
            "icache" => {
                for _ in 0..count {
                    let (c, g) = target(&mut rng);
                    events.push(FaultEvent {
                        at_ns: horizon * rng.next_range(0.05, 0.95),
                        cluster: c,
                        group: g,
                        kind: FaultKind::IcacheCorruption,
                    });
                }
            }
            "mixed" => {
                for sub in ["ecc", "dma-stall", "thermal", "icache"] {
                    let p = FaultPlan::preset(
                        sub,
                        rng.next_u64(),
                        severity,
                        clusters,
                        groups_per_cluster,
                        horizon_ns,
                    )?;
                    events.extend(p.events);
                }
            }
            _ => unreachable!("preset membership checked above"),
        }
        Ok(FaultPlan {
            seed,
            name: name.to_string(),
            events,
        })
    }
}

/// Per-event mutable state inside a session.
#[derive(Debug, Clone)]
struct EventState {
    event: FaultEvent,
    /// One-shot events flip this when they fire; window events flip it
    /// on first touch (so injection is counted once per event).
    consumed: bool,
}

/// What a window query observed: the combined effect plus how many
/// events fired for the first time (for injection counting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowEffect {
    /// Combined slowdown factor (1.0 = none).
    pub factor: f64,
    /// Events that fired for the first time in this query.
    pub newly_fired: u32,
}

/// The mutable per-execution view of a plan: which events already
/// fired, plus injection accounting. A session outlives individual
/// simulator runs so that recovery (remap + rerun, retry) naturally
/// proceeds *past* consumed one-shot events while permanent core
/// failures keep holding.
#[derive(Debug, Clone)]
pub struct FaultSession {
    groups_per_cluster: usize,
    /// Event state per flat group index.
    per_group: Vec<Vec<EventState>>,
    injected: u64,
    stall_ns: f64,
}

impl FaultSession {
    /// Builds a session for a chip of `clusters` × `groups_per_cluster`
    /// groups. Events targeting groups outside the chip are dropped
    /// (they could never fire).
    pub fn new(plan: &FaultPlan, clusters: usize, groups_per_cluster: usize) -> Self {
        let n = clusters * groups_per_cluster;
        let mut per_group: Vec<Vec<EventState>> = vec![Vec::new(); n];
        for e in &plan.events {
            if e.cluster < clusters && e.group < groups_per_cluster {
                per_group[e.cluster * groups_per_cluster + e.group].push(EventState {
                    event: *e,
                    consumed: false,
                });
            }
        }
        FaultSession {
            groups_per_cluster,
            per_group,
            injected: 0,
            stall_ns: 0.0,
        }
    }

    /// Whether the session can never fire anything (the zero-cost
    /// fast-path gate the simulator checks once per run).
    pub fn is_empty(&self) -> bool {
        self.per_group.iter().all(|g| g.is_empty())
    }

    fn cluster_of(&self, flat: usize) -> (usize, usize) {
        (
            flat / self.groups_per_cluster.max(1),
            flat % self.groups_per_cluster.max(1),
        )
    }

    fn events_mut(&mut self, flat: usize) -> &mut [EventState] {
        match self.per_group.get_mut(flat) {
            Some(v) => v.as_mut_slice(),
            None => &mut [],
        }
    }

    /// Checks whether a core failure interrupts work on `flat` that
    /// ends at `end_ns`. Permanent: keeps answering once its time has
    /// come, across runs of the same session.
    pub fn core_failure(&mut self, flat: usize, end_ns: f64) -> Option<FaultError> {
        let (cluster, group) = self.cluster_of(flat);
        let mut hit = None;
        for s in self.events_mut(flat) {
            if matches!(s.event.kind, FaultKind::CoreFailure) && s.event.at_ns <= end_ns {
                let first = !s.consumed;
                s.consumed = true;
                hit = Some((s.event.at_ns, first));
                break;
            }
        }
        let (at_ns, first) = hit?;
        if first {
            self.injected += 1;
        }
        Some(FaultError::CoreFailure {
            cluster,
            group,
            at_ns,
        })
    }

    /// Consumes an uncorrectable ECC event overlapping the launch
    /// window `[start_ns, end_ns)` on `flat`, if any. One-shot: a
    /// retried launch proceeds.
    pub fn take_uncorrectable(
        &mut self,
        flat: usize,
        start_ns: f64,
        end_ns: f64,
    ) -> Option<FaultError> {
        let (cluster, group) = self.cluster_of(flat);
        for s in self.events_mut(flat) {
            if s.consumed {
                continue;
            }
            if matches!(s.event.kind, FaultKind::EccError { correctable: false })
                && s.event.at_ns < end_ns
                && s.event.at_ns >= start_ns.min(end_ns)
            {
                s.consumed = true;
                let at_ns = s.event.at_ns;
                self.injected += 1;
                return Some(FaultError::UncorrectableEcc {
                    cluster,
                    group,
                    at_ns,
                });
            }
        }
        None
    }

    /// Consumes every correctable ECC event overlapping the launch
    /// window `[start_ns, end_ns)` on `flat`, returning how many scrub
    /// penalties the launch pays.
    pub fn take_correctable_scrubs(&mut self, flat: usize, start_ns: f64, end_ns: f64) -> u32 {
        let mut fired = 0;
        for s in self.events_mut(flat) {
            if s.consumed {
                continue;
            }
            if matches!(s.event.kind, FaultKind::EccError { correctable: true })
                && s.event.at_ns < end_ns
                && s.event.at_ns >= start_ns.min(end_ns)
            {
                s.consumed = true;
                fired += 1;
            }
        }
        self.injected += u64::from(fired);
        fired
    }

    /// Consumes a DMA timeout pending on `flat` at `now_ns` (the first
    /// transfer at or after the event time aborts; one-shot).
    pub fn take_dma_timeout(&mut self, flat: usize, now_ns: f64) -> Option<FaultError> {
        let (cluster, group) = self.cluster_of(flat);
        for s in self.events_mut(flat) {
            if s.consumed {
                continue;
            }
            if matches!(s.event.kind, FaultKind::DmaTimeout) && s.event.at_ns <= now_ns {
                s.consumed = true;
                let at_ns = s.event.at_ns;
                self.injected += 1;
                return Some(FaultError::DmaTimeout {
                    cluster,
                    group,
                    at_ns,
                });
            }
        }
        None
    }

    /// The combined DMA slowdown on `flat` for a transfer starting at
    /// `now_ns` (product of every active stall window's factor).
    pub fn dma_slowdown(&mut self, flat: usize, now_ns: f64) -> WindowEffect {
        let mut factor = 1.0;
        let mut newly = 0;
        for s in self.events_mut(flat) {
            if let FaultKind::DmaStall {
                factor: f,
                duration_ns,
            } = s.event.kind
            {
                if now_ns >= s.event.at_ns && now_ns < s.event.at_ns + duration_ns {
                    factor *= f.max(1.0);
                    if !s.consumed {
                        s.consumed = true;
                        newly += 1;
                    }
                }
            }
        }
        self.injected += u64::from(newly);
        WindowEffect {
            factor,
            newly_fired: newly,
        }
    }

    /// Whether a thermal throttle window is active on `flat` at
    /// `now_ns` (kernels launched inside run at the frequency floor).
    pub fn thermal_throttle(&mut self, flat: usize, now_ns: f64) -> WindowEffect {
        let mut active = false;
        let mut newly = 0;
        for s in self.events_mut(flat) {
            if let FaultKind::ThermalThrottle { duration_ns } = s.event.kind {
                if now_ns >= s.event.at_ns && now_ns < s.event.at_ns + duration_ns {
                    active = true;
                    if !s.consumed {
                        s.consumed = true;
                        newly += 1;
                    }
                }
            }
        }
        self.injected += u64::from(newly);
        WindowEffect {
            factor: if active { f64::INFINITY } else { 1.0 },
            newly_fired: newly,
        }
    }

    /// Consumes an icache-corruption event due on `flat` at `now_ns`;
    /// the caller invalidates the group's instruction cache when `true`.
    pub fn take_icache_corruption(&mut self, flat: usize, now_ns: f64) -> bool {
        for s in self.events_mut(flat) {
            if s.consumed {
                continue;
            }
            if matches!(s.event.kind, FaultKind::IcacheCorruption) && s.event.at_ns <= now_ns {
                s.consumed = true;
                self.injected += 1;
                return true;
            }
        }
        false
    }

    /// Records `ns` of injected stall time (the simulator calls this
    /// when it lengthens a launch or transfer on the session's behalf).
    pub fn add_stall_ns(&mut self, ns: f64) {
        self.stall_ns += ns;
    }

    /// Events that have fired so far (across every run of the session).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Total injected stall time so far, ns.
    pub fn stall_ns(&self) -> f64 {
        self.stall_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_in_range() {
        let mut a = FaultRng::new(7);
        let mut b = FaultRng::new(7);
        for _ in 0..100 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!(x > 0.0 && x <= 1.0);
        }
        let mut c = FaultRng::new(8);
        assert_ne!(a.next_u64(), c.next_u64(), "nearby seeds diverge");
        assert_eq!(FaultRng::new(0).next_u64(), FaultRng::new(0).next_u64());
    }

    #[test]
    fn presets_are_seed_reproducible() {
        for name in PRESETS {
            let a = FaultPlan::preset(name, 42, 0.5, 2, 3, 1e6).unwrap();
            let b = FaultPlan::preset(name, 42, 0.5, 2, 3, 1e6).unwrap();
            assert_eq!(a, b, "{name} not reproducible");
            if *name != "none" {
                assert!(!a.is_empty(), "{name} scheduled nothing");
                for e in &a.events {
                    assert!(e.cluster < 2 && e.group < 3);
                    assert!(e.at_ns >= 0.0 && e.at_ns <= 1e6);
                }
            }
        }
        let a = FaultPlan::preset("mixed", 1, 0.5, 2, 3, 1e6).unwrap();
        let b = FaultPlan::preset("mixed", 2, 0.5, 2, 3, 1e6).unwrap();
        assert_ne!(a, b, "different seeds differ");
    }

    #[test]
    fn unknown_preset_is_an_error() {
        let err = FaultPlan::preset("meteor-strike", 1, 0.5, 2, 3, 1e6).unwrap_err();
        assert!(err.contains("meteor-strike"));
        assert!(err.contains("core-failure"));
    }

    #[test]
    fn empty_session_answers_nothing() {
        let mut s = FaultSession::new(&FaultPlan::empty(), 2, 3);
        assert!(s.is_empty());
        assert!(s.core_failure(0, 1e9).is_none());
        assert!(s.take_uncorrectable(0, 0.0, 1e9).is_none());
        assert_eq!(s.take_correctable_scrubs(0, 0.0, 1e9), 0);
        assert!(s.take_dma_timeout(0, 1e9).is_none());
        assert_eq!(s.dma_slowdown(0, 0.0).factor, 1.0);
        assert_eq!(s.thermal_throttle(0, 0.0).factor, 1.0);
        assert!(!s.take_icache_corruption(0, 1e9));
        assert_eq!(s.injected(), 0);
    }

    #[test]
    fn core_failure_is_permanent_but_counted_once() {
        let plan = FaultPlan {
            seed: 0,
            name: String::new(),
            events: vec![FaultEvent {
                at_ns: 100.0,
                cluster: 0,
                group: 1,
                kind: FaultKind::CoreFailure,
            }],
        };
        let mut s = FaultSession::new(&plan, 2, 3);
        assert!(s.core_failure(1, 50.0).is_none(), "not yet due");
        let e = s.core_failure(1, 150.0).unwrap();
        assert!(e.is_permanent());
        assert_eq!(e.location(), (0, 1));
        assert_eq!(e.at_ns(), 100.0);
        // Still failing on a later run of the same session…
        assert!(s.core_failure(1, 1e9).is_some());
        // …but other groups are unaffected, and injection counted once.
        assert!(s.core_failure(0, 1e9).is_none());
        assert_eq!(s.injected(), 1);
    }

    #[test]
    fn transient_events_are_one_shot() {
        let plan = FaultPlan {
            seed: 0,
            name: String::new(),
            events: vec![
                FaultEvent {
                    at_ns: 10.0,
                    cluster: 0,
                    group: 0,
                    kind: FaultKind::EccError { correctable: false },
                },
                FaultEvent {
                    at_ns: 20.0,
                    cluster: 0,
                    group: 0,
                    kind: FaultKind::DmaTimeout,
                },
                FaultEvent {
                    at_ns: 30.0,
                    cluster: 0,
                    group: 0,
                    kind: FaultKind::IcacheCorruption,
                },
            ],
        };
        let mut s = FaultSession::new(&plan, 1, 1);
        assert!(s.take_uncorrectable(0, 0.0, 100.0).is_some());
        assert!(s.take_uncorrectable(0, 0.0, 100.0).is_none(), "consumed");
        assert!(s.take_dma_timeout(0, 100.0).is_some());
        assert!(s.take_dma_timeout(0, 100.0).is_none());
        assert!(s.take_icache_corruption(0, 100.0));
        assert!(!s.take_icache_corruption(0, 100.0));
        assert_eq!(s.injected(), 3);
    }

    #[test]
    fn windows_only_apply_inside_their_interval() {
        let plan = FaultPlan {
            seed: 0,
            name: String::new(),
            events: vec![
                FaultEvent {
                    at_ns: 100.0,
                    cluster: 0,
                    group: 0,
                    kind: FaultKind::DmaStall {
                        factor: 3.0,
                        duration_ns: 50.0,
                    },
                },
                FaultEvent {
                    at_ns: 100.0,
                    cluster: 0,
                    group: 0,
                    kind: FaultKind::ThermalThrottle { duration_ns: 50.0 },
                },
            ],
        };
        let mut s = FaultSession::new(&plan, 1, 1);
        assert_eq!(s.dma_slowdown(0, 99.0).factor, 1.0);
        let hit = s.dma_slowdown(0, 120.0);
        assert_eq!(hit.factor, 3.0);
        assert_eq!(hit.newly_fired, 1);
        // Second touch inside the window: active but not re-counted.
        assert_eq!(s.dma_slowdown(0, 140.0).newly_fired, 0);
        assert_eq!(s.dma_slowdown(0, 150.0).factor, 1.0, "window closed");
        assert!(s.thermal_throttle(0, 120.0).factor.is_infinite());
        assert_eq!(s.thermal_throttle(0, 160.0).factor, 1.0);
        assert_eq!(s.injected(), 2);
    }

    #[test]
    fn out_of_range_events_are_dropped() {
        let plan = FaultPlan {
            seed: 0,
            name: String::new(),
            events: vec![FaultEvent {
                at_ns: 0.0,
                cluster: 9,
                group: 9,
                kind: FaultKind::CoreFailure,
            }],
        };
        let s = FaultSession::new(&plan, 2, 3);
        assert!(s.is_empty());
    }

    #[test]
    fn stall_accounting_accumulates() {
        let mut s = FaultSession::new(&FaultPlan::empty(), 1, 1);
        s.add_stall_ns(10.0);
        s.add_stall_ns(5.0);
        assert_eq!(s.stall_ns(), 15.0);
    }

    #[test]
    fn error_display_names_the_location() {
        let e = FaultError::UncorrectableEcc {
            cluster: 1,
            group: 2,
            at_ns: 1234.0,
        };
        assert!(e.to_string().contains("1.2"));
        assert!(e.to_string().contains("ECC"));
        assert!(!e.is_permanent());
    }

    #[test]
    fn fault_kind_labels() {
        assert_eq!(FaultKind::CoreFailure.label(), "core-failure");
        assert_eq!(
            FaultKind::EccError { correctable: true }.label(),
            "ecc-correctable"
        );
        assert_eq!(FaultKind::DmaTimeout.label(), "dma-timeout");
    }
}
