//! Resource abstraction and workload placement (Fig. 7).
//!
//! The processing group is "the minimal unit for workload deployment":
//! large workloads take all 3 groups of a cluster (or the whole chip),
//! medium ones 2, small ones 1. Placements also shard batches across
//! groups for the multi-tenancy experiments.

use dtu_sim::{ChipConfig, GroupId};
use std::fmt;

/// A set of processing groups a workload is deployed on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    groups: Vec<GroupId>,
}

impl Placement {
    /// Every group on the chip (the single-tenant, lowest-latency
    /// deployment used for the Fig. 13 latency runs).
    pub fn full_chip(cfg: &ChipConfig) -> Self {
        let mut groups = Vec::new();
        for c in 0..cfg.clusters {
            for g in 0..cfg.groups_per_cluster {
                groups.push(GroupId::new(c, g));
            }
        }
        Placement { groups }
    }

    /// `n` groups of one cluster (Fig. 7's small/medium/large workloads
    /// are 1, 2, and 3 groups).
    ///
    /// `n` is clamped to the cluster's group count; `n = 0` becomes 1.
    pub fn cluster_groups(cluster: usize, n: usize, cfg: &ChipConfig) -> Self {
        let n = n.clamp(1, cfg.groups_per_cluster);
        Placement {
            groups: (0..n).map(|g| GroupId::new(cluster, g)).collect(),
        }
    }

    /// An explicit group list.
    pub fn explicit(groups: Vec<GroupId>) -> Self {
        Placement { groups }
    }

    /// The groups, in stream order.
    pub fn groups(&self) -> &[GroupId] {
        &self.groups
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the placement is empty (invalid for compilation).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Validates the placement against a chip.
    pub fn fits(&self, cfg: &ChipConfig) -> bool {
        !self.is_empty()
            && self
                .groups
                .iter()
                .all(|g| g.cluster < cfg.clusters && g.group < cfg.groups_per_cluster)
    }

    /// Groups belonging to `cluster`.
    pub fn groups_in_cluster(&self, cluster: usize) -> usize {
        self.groups.iter().filter(|g| g.cluster == cluster).count()
    }

    /// Clusters this placement touches.
    pub fn clusters(&self) -> Vec<usize> {
        let mut cs: Vec<usize> = self.groups.iter().map(|g| g.cluster).collect();
        cs.sort_unstable();
        cs.dedup();
        cs
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "placement[")?;
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{g}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_chip_covers_all_groups() {
        let cfg = ChipConfig::dtu20();
        let p = Placement::full_chip(&cfg);
        assert_eq!(p.len(), 6);
        assert!(p.fits(&cfg));
        assert_eq!(p.clusters(), vec![0, 1]);
    }

    #[test]
    fn fig7_sizes() {
        let cfg = ChipConfig::dtu20();
        for n in 1..=3 {
            let p = Placement::cluster_groups(0, n, &cfg);
            assert_eq!(p.len(), n);
            assert!(p.fits(&cfg));
            assert_eq!(p.groups_in_cluster(0), n);
            assert_eq!(p.groups_in_cluster(1), 0);
        }
        // Clamping.
        assert_eq!(Placement::cluster_groups(0, 9, &cfg).len(), 3);
        assert_eq!(Placement::cluster_groups(0, 0, &cfg).len(), 1);
    }

    #[test]
    fn invalid_placement_detected() {
        let cfg = ChipConfig::dtu20();
        let p = Placement::explicit(vec![GroupId::new(5, 0)]);
        assert!(!p.fits(&cfg));
        assert!(!Placement::explicit(vec![]).fits(&cfg));
    }

    #[test]
    fn display() {
        let p = Placement::explicit(vec![GroupId::new(0, 0), GroupId::new(1, 2)]);
        assert_eq!(p.to_string(), "placement[g0.0,g1.2]");
    }
}
