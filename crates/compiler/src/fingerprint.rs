//! Stable content fingerprints for compiled sessions.
//!
//! The harness cache (`dtu-harness`) keys compiled programs by *what
//! produced them*: the graph, the chip configuration, the placement,
//! the compiler configuration, the batch, and the compiler version.
//! The fingerprint must be identical across processes and runs (so an
//! on-disk cache entry written yesterday still matches today) and must
//! change whenever any ingredient changes (so a stale artifact can
//! never be replayed against a different configuration).
//!
//! The hash is 64-bit FNV-1a over the `Debug` rendering of each
//! ingredient. Every hashed type derives `Debug` structurally — the
//! rendering is a pure function of the value with no addresses,
//! pointers, or iteration-order dependence — which makes it a cheap,
//! dependency-free canonical form. `COMPILER_VERSION` is mixed in so
//! that lowering changes invalidate old artifacts wholesale.

use crate::{CompilerConfig, Placement};
use dtu_graph::Graph;
use dtu_sim::ChipConfig;

/// Version tag of the lowering pipeline, mixed into every fingerprint.
///
/// Bump this whenever `compile` could emit a different program for the
/// same inputs — all previously cached artifacts then miss and are
/// recompiled, which is always safe.
pub const COMPILER_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental 64-bit FNV-1a hasher over byte strings.
///
/// Used by the fingerprint functions below and exposed so callers can
/// fold extra discriminants (e.g. a workload label) into a key of
/// their own without inventing a second hash scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// A hasher at the standard FNV offset basis.
    pub fn new() -> Self {
        Fnv1a::default()
    }

    /// Folds raw bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a string (by UTF-8 bytes) into the state.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
    }

    /// Folds a `u64` (little-endian bytes) into the state.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds any `Debug` value via its structural rendering.
    pub fn write_debug(&mut self, v: &dyn std::fmt::Debug) {
        self.write_str(&format!("{v:?}"));
    }

    /// The current 64-bit hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Fingerprint of a graph alone (structure, shapes, dtypes, names).
pub fn graph_fingerprint(graph: &Graph) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str("graph/");
    h.write_debug(graph);
    h.finish()
}

/// Fingerprint of one compiled-session identity.
///
/// Two sessions share a fingerprint exactly when [`compile`] would
/// produce the same program for both: same graph content, chip
/// configuration, placement, compiler configuration, batch, and
/// [`COMPILER_VERSION`]. This is the cache key used by
/// `dtu-harness`'s compiled-session cache (memory and disk tiers).
///
/// [`compile`]: crate::compile
pub fn session_fingerprint(
    graph: &Graph,
    chip: &ChipConfig,
    placement: &Placement,
    compiler: &CompilerConfig,
    batch: usize,
) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str("session/v");
    h.write_u64(u64::from(COMPILER_VERSION));
    h.write_u64(graph_fingerprint(graph));
    h.write_str("/chip/");
    h.write_debug(chip);
    h.write_str("/placement/");
    h.write_debug(placement);
    h.write_str("/compiler/");
    h.write_debug(compiler);
    h.write_str("/batch/");
    h.write_u64(batch as u64);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_graph::{Op, TensorType};

    fn toy(batch: usize) -> Graph {
        let mut g = Graph::new("toy");
        let x = g.input("x", TensorType::fixed(&[batch, 8, 32, 32]));
        let c = g.add_node(Op::conv2d(16, 3, 1, 1), vec![x]).unwrap();
        g.mark_output(c);
        g
    }

    #[test]
    fn fingerprint_is_stable_for_equal_inputs() {
        let chip = ChipConfig::dtu20();
        let p = Placement::full_chip(&chip);
        let cfg = CompilerConfig::for_chip(&chip);
        let a = session_fingerprint(&toy(1), &chip, &p, &cfg, 1);
        let b = session_fingerprint(&toy(1), &chip, &p, &cfg, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_changes_with_each_ingredient() {
        let chip = ChipConfig::dtu20();
        let p = Placement::full_chip(&chip);
        let cfg = CompilerConfig::for_chip(&chip);
        let base = session_fingerprint(&toy(1), &chip, &p, &cfg, 1);
        // Graph change.
        assert_ne!(base, session_fingerprint(&toy(2), &chip, &p, &cfg, 1));
        // Chip change.
        let i10 = ChipConfig::dtu10();
        assert_ne!(base, session_fingerprint(&toy(1), &i10, &p, &cfg, 1));
        // Placement change.
        let p1 = Placement::cluster_groups(0, 1, &chip);
        assert_ne!(base, session_fingerprint(&toy(1), &chip, &p1, &cfg, 1));
        // Batch change.
        assert_ne!(base, session_fingerprint(&toy(1), &chip, &p, &cfg, 2));
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c.
        let mut h = Fnv1a::new();
        h.write_str("a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
