//! The DSL codegen path: packetizer, register allocator, tensorizer,
//! vectorizer.
//!
//! §V-B: "Independent instructions are discovered and packed into one
//! instruction packet, then issued all at once" (the VLIW packetizer);
//! the register allocator "tries to avoid register bank conflicts that
//! lead to pipeline stalls"; auto-vectorization and auto-tensorization
//! map element-wise loops and matmul patterns onto the vector and matrix
//! engines. The functions here operate on real [`dtu_isa::Instruction`]
//! streams that execute on the `dtu-sim` interpreter.

use dtu_isa::{Instruction, Packet, RegClass, RegId, SfuFunc};
use std::collections::BTreeMap;

/// Packs an in-order instruction stream into VLIW packets.
///
/// Greedy list scheduling: walk the stream, adding each instruction to
/// the current packet unless it conflicts on a functional-unit slot or
/// depends on a register written in the same packet; conflicts start a
/// new packet. The input order is program order, so dependencies across
/// packets are preserved by construction.
pub fn packetize(instrs: &[Instruction]) -> Vec<Packet> {
    let mut packets: Vec<Packet> = Vec::new();
    let mut current: Vec<Instruction> = Vec::new();
    for ins in instrs {
        let mut candidate = current.clone();
        candidate.push(ins.clone());
        match Packet::try_bundle(candidate) {
            Ok(_) => current.push(ins.clone()),
            Err(_) => {
                if !current.is_empty() {
                    packets
                        .push(Packet::try_bundle(current.clone()).expect("previously validated"));
                }
                current = vec![ins.clone()];
            }
        }
    }
    if !current.is_empty() {
        packets.push(Packet::try_bundle(current).expect("previously validated"));
    }
    packets
}

/// Renames vector registers so that instructions avoid reading two
/// registers from the same bank (the stall the paper's register
/// allocator prevents).
///
/// A simple graph-colouring-lite approach: process instructions in
/// order, and when an instruction would read two same-bank registers,
/// remap the later-assigned virtual register to a free register in a
/// different bank. The remapping is global (a register keeps its new
/// name for the rest of the stream).
pub fn assign_banks(instrs: &[Instruction]) -> Vec<Instruction> {
    let banks = RegClass::Vector.banks();
    let count = RegClass::Vector.count();

    // Pass 1: every vector register the stream touches is "used"; a
    // remap target must be entirely fresh so that a whole-stream rename
    // is semantics-preserving.
    let mut used: Vec<bool> = vec![false; count];
    for ins in instrs {
        for r in ins.reads().into_iter().chain(ins.writes()) {
            if r.class == RegClass::Vector {
                used[r.index] = true;
            }
        }
    }

    // Pass 2: walk the stream, accumulating renames whenever an
    // instruction would read two same-bank registers.
    let mut map: BTreeMap<usize, usize> = BTreeMap::new();
    for ins in instrs {
        let reads: Vec<usize> = ins
            .reads()
            .into_iter()
            .filter(|r| r.class == RegClass::Vector)
            .map(|r| *map.get(&r.index).unwrap_or(&r.index))
            .collect();
        let originals: Vec<usize> = ins
            .reads()
            .into_iter()
            .filter(|r| r.class == RegClass::Vector)
            .map(|r| r.index)
            .collect();
        for i in 0..reads.len() {
            for j in (i + 1)..reads.len() {
                if reads[i] != reads[j] && reads[i] % banks == reads[j] % banks {
                    let bank_of_first = reads[i] % banks;
                    if let Some(free) = (0..count).find(|&c| !used[c] && c % banks != bank_of_first)
                    {
                        map.insert(originals[j], free);
                        used[free] = true;
                    }
                }
            }
        }
    }

    // Pass 3: rewrite the whole stream with the final map.
    let remap = |r: RegId| -> RegId {
        if r.class == RegClass::Vector {
            RegId::new(RegClass::Vector, *map.get(&r.index).unwrap_or(&r.index))
        } else {
            r
        }
    };
    instrs.iter().map(|ins| rewrite(ins, &remap)).collect()
}

/// Rewrites every register operand of an instruction.
fn rewrite(ins: &Instruction, f: &dyn Fn(RegId) -> RegId) -> Instruction {
    match ins.clone() {
        Instruction::Scalar { op, dst, srcs } => Instruction::Scalar {
            op,
            dst: f(dst),
            srcs: srcs.into_iter().map(f).collect(),
        },
        Instruction::Vector { op, dst, srcs } => Instruction::Vector {
            op,
            dst: f(dst),
            srcs: srcs.into_iter().map(f).collect(),
        },
        Instruction::MatrixFill { dst, row, src } => Instruction::MatrixFill {
            dst: f(dst),
            row,
            src: f(src),
        },
        Instruction::Vmm {
            pattern,
            acc,
            vec,
            mat,
        } => Instruction::Vmm {
            pattern,
            acc: f(acc),
            vec: f(vec),
            mat: f(mat),
        },
        Instruction::AccRead { dst, acc } => Instruction::AccRead {
            dst: f(dst),
            acc: f(acc),
        },
        Instruction::Sfu { func, dst, src } => Instruction::Sfu {
            func,
            dst: f(dst),
            src: f(src),
        },
        Instruction::Load { dst, addr } => Instruction::Load { dst: f(dst), addr },
        Instruction::Store { src, addr } => Instruction::Store { src: f(src), addr },
        other => other,
    }
}

/// Auto-tensorization: emits the VLIW instruction sequence computing
/// `y[16] (+)= x[rows] × W[rows x 16]`, with the matrix filled row by row
/// from L1 and the result stored back to L1.
///
/// Memory layout (word addresses): `x` at `x_addr`, `W` rows contiguous
/// at `w_addr` (16 words per row), `y` at `y_addr`. Uses v0 for row
/// staging, v1 for the input vector, v2 for the result; m0 and acc0.
pub fn tensorize_vmm(rows: usize, x_addr: usize, w_addr: usize, y_addr: usize) -> Vec<Instruction> {
    let v = |i: usize| RegId::new(RegClass::Vector, i);
    let m0 = RegId::new(RegClass::Matrix, 0);
    let acc0 = RegId::new(RegClass::Accum, 0);
    let mut out = Vec::new();
    for r in 0..rows {
        out.push(Instruction::Load {
            dst: v(0),
            addr: (w_addr + r * 16) * 4,
        });
        out.push(Instruction::MatrixFill {
            dst: m0,
            row: r,
            src: v(0),
        });
    }
    out.push(Instruction::Load {
        dst: v(1),
        addr: x_addr * 4,
    });
    out.push(Instruction::Vmm {
        pattern: 0,
        acc: acc0,
        vec: v(1),
        mat: m0,
    });
    out.push(Instruction::AccRead {
        dst: v(2),
        acc: acc0,
    });
    out.push(Instruction::Store {
        src: v(2),
        addr: y_addr * 4,
    });
    out
}

/// Auto-vectorization: emits the instruction sequence applying an SFU
/// transcendental over `n` contiguous L1 words in 16-lane strips
/// (`dst[i] = f(src[i])`).
pub fn vectorize_map(
    func: SfuFunc,
    n: usize,
    src_addr: usize,
    dst_addr: usize,
) -> Vec<Instruction> {
    let v = |i: usize| RegId::new(RegClass::Vector, i);
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < n {
        out.push(Instruction::Load {
            dst: v(0),
            addr: (src_addr + off) * 4,
        });
        out.push(Instruction::Sfu {
            func,
            dst: v(1),
            src: v(0),
        });
        out.push(Instruction::Store {
            src: v(1),
            addr: (dst_addr + off) * 4,
        });
        off += 16;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_isa::{DataType, VectorOp};
    use dtu_sim::Interpreter;
    use dtu_tensor::Tensor;

    fn v(i: usize) -> RegId {
        RegId::new(RegClass::Vector, i)
    }

    #[test]
    fn packetizer_bundles_independent_work() {
        let instrs = vec![
            Instruction::Vector {
                op: VectorOp::Add,
                dst: v(2),
                srcs: vec![v(0), v(1)],
            },
            Instruction::Sfu {
                func: SfuFunc::Tanh,
                dst: v(5),
                src: v(3),
            },
            Instruction::Load { dst: v(6), addr: 0 },
        ];
        let packets = packetize(&instrs);
        assert_eq!(packets.len(), 1, "three independent units bundle into one");
        assert_eq!(packets[0].len(), 3);
    }

    #[test]
    fn packetizer_splits_on_dependence() {
        let instrs = vec![
            Instruction::Vector {
                op: VectorOp::Add,
                dst: v(2),
                srcs: vec![v(0), v(1)],
            },
            // Reads v2 written above: must start a new packet.
            Instruction::Sfu {
                func: SfuFunc::Exp,
                dst: v(3),
                src: v(2),
            },
        ];
        let packets = packetize(&instrs);
        assert_eq!(packets.len(), 2);
    }

    #[test]
    fn packetizer_splits_on_slot_conflict() {
        let instrs = vec![
            Instruction::Vector {
                op: VectorOp::Add,
                dst: v(2),
                srcs: vec![v(0), v(1)],
            },
            Instruction::Vector {
                op: VectorOp::Mul,
                dst: v(5),
                srcs: vec![v(3), v(4)],
            },
        ];
        let packets = packetize(&instrs);
        assert_eq!(packets.len(), 2);
    }

    #[test]
    fn packetizer_preserves_semantics_on_interpreter() {
        // add then dependent exp, interleaved with an independent load.
        let instrs = vec![
            Instruction::Vector {
                op: VectorOp::Add,
                dst: v(2),
                srcs: vec![v(0), v(1)],
            },
            Instruction::Load { dst: v(6), addr: 0 },
            Instruction::Sfu {
                func: SfuFunc::Exp,
                dst: v(3),
                src: v(2),
            },
        ];
        let packets = packetize(&instrs);
        let mut it = Interpreter::new(4096, DataType::Fp32);
        it.set_tensor(v(0), Tensor::from_vec(vec![1.0; 16]));
        it.set_tensor(v(1), Tensor::from_vec(vec![2.0; 16]));
        it.run(&packets).unwrap();
        let y = it.tensor(v(3)).unwrap();
        assert!((y.data()[0] as f64 - (3.0f64).exp()).abs() < 0.05);
    }

    #[test]
    fn bank_allocator_removes_conflicts() {
        // v0 and v4 collide (4 banks).
        let instrs = vec![Instruction::Vector {
            op: VectorOp::Add,
            dst: v(1),
            srcs: vec![v(0), v(4)],
        }];
        let fixed = assign_banks(&instrs);
        let pkt = Packet::try_bundle(fixed.clone()).unwrap();
        assert!(!pkt.has_bank_conflict(), "conflict survived: {fixed:?}");
    }

    #[test]
    fn bank_allocator_keeps_dataflow_consistent() {
        // Write v4, then read v0 and v4 together (conflict), then use the
        // renamed result downstream.
        let instrs = vec![
            Instruction::Load { dst: v(4), addr: 0 },
            Instruction::Vector {
                op: VectorOp::Add,
                dst: v(2),
                srcs: vec![v(0), v(4)],
            },
            Instruction::Store {
                src: v(2),
                addr: 64,
            },
        ];
        let fixed = assign_banks(&instrs);
        let packets = packetize(&fixed);
        let mut it = Interpreter::new(4096, DataType::Fp32);
        it.set_tensor(v(0), Tensor::from_vec(vec![10.0; 16]));
        for w in 0..16 {
            it.poke_l1(w, 1.0).unwrap();
        }
        let report = it.run(&packets).unwrap();
        assert_eq!(report.bank_conflict_stalls, 0);
        assert_eq!(it.peek_l1(16).unwrap(), 11.0);
    }

    #[test]
    fn tensorized_vmm_computes_correct_product() {
        let rows = 4;
        let instrs = tensorize_vmm(rows, 100, 0, 200);
        let packets = packetize(&instrs);
        let mut it = Interpreter::new(64 * 1024, DataType::Fp32);
        // W[r][c] = r + c at words 0..64; x = [1,2,3,4] at word 100.
        for r in 0..rows {
            for c in 0..16 {
                it.poke_l1(r * 16 + c, (r + c) as f32).unwrap();
            }
        }
        for (i, val) in [1.0f32, 2.0, 3.0, 4.0].iter().enumerate() {
            it.poke_l1(100 + i, *val).unwrap();
        }
        it.run(&packets).unwrap();
        // y[c] = Σ_r x[r]·(r+c) = Σ x[r]·r + c·Σ x[r] = 20 + 10c.
        for c in 0..16 {
            let y = it.peek_l1(200 + c).unwrap();
            assert_eq!(y, 20.0 + 10.0 * c as f32, "col {c}");
        }
    }

    #[test]
    fn vectorized_map_applies_function_in_strips() {
        let n = 48;
        let instrs = vectorize_map(SfuFunc::Sigmoid, n, 0, 1000);
        let packets = packetize(&instrs);
        let mut it = Interpreter::new(64 * 1024, DataType::Fp32);
        for w in 0..n {
            it.poke_l1(w, (w as f32 - 24.0) * 0.25).unwrap();
        }
        it.run(&packets).unwrap();
        for w in 0..n {
            let x = (w as f32 - 24.0) * 0.25;
            let want = 1.0 / (1.0 + (-x as f64).exp());
            let got = it.peek_l1(1000 + w).unwrap() as f64;
            assert!((got - want).abs() < 1e-3, "elem {w}: {got} vs {want}");
        }
        // Strips of 16: 3 load/sfu/store rounds.
        assert_eq!(instrs.len(), 9);
    }

    #[test]
    fn packetize_empty_stream() {
        assert!(packetize(&[]).is_empty());
    }
}
