//! The operator compiler (the paper's TopsEngine, §V-B).
//!
//! Two compilation paths exist, mirroring the two programming interfaces
//! the paper describes:
//!
//! * the **graph path** ([`compile`]) lowers a fused `dtu-graph` model
//!   into a [`dtu_sim::Program`]: placement over processing groups
//!   (Fig. 7), data-flow tiling tuned against the memory hierarchy
//!   ([`TilePlan`]), DMA staging with repeat/broadcast/sparse options,
//!   kernel-code prefetch, and inter-group barriers;
//! * the **codegen path** (the DSL analogue) builds real VLIW packet
//!   streams: [`packetize`] discovers independent instructions and packs
//!   them, [`assign_banks`] renames vector registers to dodge
//!   register-bank conflicts, and the tensorizer/vectorizer emit
//!   [`dtu_isa::Instruction`] sequences for dense and element-wise
//!   kernels that run on the `dtu-sim` interpreter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codegen;
mod fingerprint;
mod lower;
mod placement;
mod tiling;

pub use codegen::{assign_banks, packetize, tensorize_vmm, vectorize_map};
pub use fingerprint::{graph_fingerprint, session_fingerprint, Fnv1a, COMPILER_VERSION};
pub use lower::{compile, compile_recorded, CompileError, CompilerConfig, Mode};
pub use placement::Placement;
pub use tiling::{plan_tiles, TilePlan};
