//! Lowering: fused graph → simulator program.
//!
//! Every fused group becomes either a kernel launch (compute) or a DMA
//! transfer (pure layout manipulation — "DTU utilizes DMA engines to
//! accomplish tensor manipulation while data transfer", §III). Work is
//! sharded across the placement's processing groups; barriers keep the
//! groups in lockstep between kernels; input activations are staged by
//! overlapped, tiled DMA (double buffering); and the repeat / broadcast /
//! sparse / prefetch features are applied when the target chip has them.

use crate::placement::Placement;
use crate::tiling::plan_tiles;
use dtu_graph::{
    characterize, fuse, optimize, search_fuse, FusionConfig, Graph, GraphError, Op, OpCost,
    SearchConfig,
};
use dtu_isa::{DataType, KernelDescriptor, KernelId, OpClass};
use dtu_sim::{
    ChipConfig, Command, DmaDescriptor, DmaPath, MemLevel, Program, Stream, SyncPattern,
};
use dtu_telemetry::{Layer, NullRecorder, Recorder, Span, SpanKind};
use dtu_tensor::SparseFormat;
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// How the placement's groups divide the work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// One sample, split across groups (tensor/data parallel inside each
    /// operator): weights and activations shard; lowest latency.
    LatencyOptimized,
    /// Independent replicas: each group runs the whole model on its share
    /// of the batch; weights replicate (broadcast-friendly).
    ThroughputBatched,
}

/// Compiler options. Feature flags default to the chip's capabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerConfig {
    /// Fusion settings.
    pub fusion: FusionConfig,
    /// Execution mode.
    pub mode: Mode,
    /// Issue kernel-code prefetches.
    pub enable_prefetch: bool,
    /// Use repeat-mode DMA for tiled staging.
    pub enable_repeat_dma: bool,
    /// Broadcast replicated weights across a cluster's L2 partitions.
    pub enable_broadcast: bool,
    /// Compress sparse activations on the wire.
    pub enable_sparse_dma: bool,
    /// Assumed zero-fraction of post-ReLU activations.
    pub relu_sparsity: f64,
    /// Run the structural graph optimiser (DCE / identity elimination /
    /// CSE) before fusion.
    pub enable_graph_optimize: bool,
    /// Use the search-based fusion pass (the paper's future-work item)
    /// instead of the expert rules.
    pub search_fusion: Option<SearchConfig>,
}

impl CompilerConfig {
    /// Defaults derived from a chip's feature set.
    pub fn for_chip(chip: &ChipConfig) -> Self {
        CompilerConfig {
            fusion: FusionConfig::default(),
            mode: Mode::LatencyOptimized,
            enable_prefetch: chip.features.instruction_cache,
            enable_repeat_dma: chip.features.dma_repeat,
            enable_broadcast: chip.features.dma_broadcast,
            enable_sparse_dma: chip.features.sparse_dma,
            relu_sparsity: 0.45,
            enable_graph_optimize: true,
            search_fusion: None,
        }
    }
}

/// Errors from compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Graph analysis failed.
    Graph(GraphError),
    /// The placement is empty or outside the chip.
    BadPlacement {
        /// Description.
        reason: String,
    },
    /// The model's weights do not fit in device memory.
    ModelTooLarge {
        /// Required bytes.
        required: u64,
        /// Available bytes.
        available: u64,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Graph(e) => write!(f, "graph: {e}"),
            CompileError::BadPlacement { reason } => write!(f, "bad placement: {reason}"),
            CompileError::ModelTooLarge {
                required,
                available,
            } => write!(
                f,
                "model needs {required} B of device memory but only {available} B exist"
            ),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CompileError {
    fn from(e: GraphError) -> Self {
        CompileError::Graph(e)
    }
}

/// One lowered unit of work shared by all streams.
#[derive(Debug, Clone)]
enum LoweredStep {
    Kernel {
        kernel: KernelId,
        descriptor: KernelDescriptor,
        /// Input-activation bytes to stage per group (pre-shard).
        stage_in_bytes: u64,
        /// Replicated weight bytes (ThroughputBatched only).
        replicated_weight_bytes: u64,
        /// Whether the staged input is post-ReLU (sparse-compressible).
        sparse_input: bool,
    },
    Movement {
        bytes_per_group: u64,
    },
}

/// Compiles a graph for a chip and placement.
///
/// # Errors
///
/// [`CompileError::BadPlacement`] for invalid placements,
/// [`CompileError::ModelTooLarge`] when weights exceed L3, and graph /
/// shape errors as [`CompileError::Graph`].
pub fn compile(
    graph: &Graph,
    chip: &ChipConfig,
    placement: &Placement,
    cfg: &CompilerConfig,
) -> Result<Program, CompileError> {
    compile_recorded(graph, chip, placement, cfg, &mut NullRecorder)
}

/// Tracks host time spent in one compiler phase and records it as a
/// `Layer::Compiler` span. Compile phases run in host (not simulated)
/// time, so they live on their own layer/track starting at 0 and do
/// not perturb the simulated-time lanes.
struct PhaseTimer {
    compile_start: Instant,
    phase_start_ns: f64,
}

impl PhaseTimer {
    fn start() -> Self {
        PhaseTimer {
            compile_start: Instant::now(),
            phase_start_ns: 0.0,
        }
    }

    fn finish_phase(&mut self, rec: &mut dyn Recorder, name: &str) {
        let now_ns = self.compile_start.elapsed().as_nanos() as f64;
        rec.record(Span::new(
            SpanKind::Compile,
            Layer::Compiler,
            0,
            name,
            self.phase_start_ns,
            now_ns,
        ));
        self.phase_start_ns = now_ns;
    }
}

/// Compiles a graph while recording per-phase `Layer::Compiler` spans
/// (graph optimisation, shape inference, fusion, lowering, stream
/// emission) into `rec`.
///
/// # Errors
///
/// As for [`compile`].
pub fn compile_recorded(
    graph: &Graph,
    chip: &ChipConfig,
    placement: &Placement,
    cfg: &CompilerConfig,
    rec: &mut dyn Recorder,
) -> Result<Program, CompileError> {
    if !placement.fits(chip) {
        return Err(CompileError::BadPlacement {
            reason: format!("{placement} does not fit {}", chip.name),
        });
    }
    let mut timer = rec.enabled().then(PhaseTimer::start);
    let n = placement.len() as u64;
    let optimized;
    let graph = if cfg.enable_graph_optimize {
        optimized = optimize(graph).map_err(CompileError::Graph)?.0;
        &optimized
    } else {
        graph
    };
    if let Some(t) = timer.as_mut() {
        t.finish_phase(rec, "optimize");
    }
    let shapes = graph.infer_shapes()?;
    if let Some(t) = timer.as_mut() {
        t.finish_phase(rec, "infer-shapes");
    }
    let plan = match &cfg.search_fusion {
        Some(search_cfg) => search_fuse(graph, search_cfg)?.plan,
        None => fuse(graph, &cfg.fusion)?,
    };
    if let Some(t) = timer.as_mut() {
        t.finish_phase(rec, "fuse");
    }

    // Lower each fused group to a step.
    let mut steps: Vec<LoweredStep> = Vec::new();
    let mut total_weight_bytes: u64 = 0;
    let mut prev_ends_in_relu = false;
    for (gi, group) in plan.groups.iter().enumerate() {
        let mut cost = OpCost::default();
        let mut class = OpClass::Elementwise;
        let mut best_flops = 0u64;
        let mut dtype = DataType::Fp16;
        let mut all_layout = true;
        for (i, &nid) in group.nodes.iter().enumerate() {
            let node = graph.node(nid)?;
            if !node.op.is_layout_op() {
                all_layout = false;
            }
            let input_types: Vec<_> = node.inputs.iter().map(|x| &shapes[x]).collect();
            let c = characterize(&node.op, &input_types, &shapes[&nid])?;
            let mut c2 = c;
            if i > 0 {
                c2.input_bytes = c2
                    .input_bytes
                    .saturating_sub(shapes[&group.nodes[i - 1]].bytes().unwrap_or(0));
            }
            if i + 1 < group.nodes.len() {
                c2.output_bytes = 0;
            }
            if c.flops() >= best_flops {
                best_flops = c.flops();
                class = c.class;
                dtype = shapes[&nid].dtype;
            }
            cost.merge(&c2);
        }
        total_weight_bytes += cost.weight_bytes;

        let last_node = graph.node(*group.nodes.last().expect("non-empty"))?;
        let ends_in_relu = matches!(last_node.op, Op::Relu | Op::LeakyRelu { .. });

        // Pure layout groups lower to DMA (Reshape is a free view).
        if all_layout {
            let is_pure_view = group
                .nodes
                .iter()
                .all(|&nid| matches!(graph.node(nid).map(|x| &x.op), Ok(Op::Reshape { .. })));
            if !is_pure_view && cost.output_bytes > 0 {
                steps.push(LoweredStep::Movement {
                    bytes_per_group: cost.output_bytes / n,
                });
            }
            prev_ends_in_relu = ends_in_relu;
            continue;
        }
        if cost.flops() == 0 && cost.total_bytes() == 0 {
            prev_ends_in_relu = ends_in_relu;
            continue; // input placeholders
        }

        let anchor = graph.node(group.anchor())?;
        let mut d = KernelDescriptor::new(
            group
                .nodes
                .iter()
                .map(|&nid| graph.node(nid).map(|x| x.op.mnemonic()))
                .collect::<Result<Vec<_>, _>>()?
                .join("+"),
        );
        let _ = anchor;
        d.class = class;
        d.dtype = dtype;
        d.macs = cost.macs / n;
        d.vector_ops = cost.vector_ops / n;
        d.sfu_ops = cost.sfu_ops / n;
        let (weight_l3, replicated) = match cfg.mode {
            Mode::LatencyOptimized => (cost.weight_bytes / n, 0),
            Mode::ThroughputBatched => (0, cost.weight_bytes),
        };
        d.l3_bytes = cost.output_bytes / n + weight_l3;
        d.l2_bytes = (cost.input_bytes + cost.output_bytes) / n + weight_l3 + replicated;
        d.l1_bytes = 2 * d.l2_bytes;
        d.code_bytes = 6 * 1024 + 3 * 1024 * group.len() as u64;
        d.narrow_dim = cost.narrow_dim;

        steps.push(LoweredStep::Kernel {
            kernel: KernelId(gi as u64 + 1),
            descriptor: d,
            stage_in_bytes: cost.input_bytes / n,
            replicated_weight_bytes: replicated,
            sparse_input: prev_ends_in_relu,
        });
        prev_ends_in_relu = ends_in_relu;
    }

    // Device-memory capacity check (weights + double-buffered activations).
    let l3_capacity = chip.l3_bytes();
    if total_weight_bytes > l3_capacity {
        return Err(CompileError::ModelTooLarge {
            required: total_weight_bytes,
            available: l3_capacity,
        });
    }
    if let Some(t) = timer.as_mut() {
        t.finish_phase(rec, "lower");
    }

    // Emit one stream per group.
    let mut program = Program::new(graph.name.clone());
    let kernel_steps: Vec<usize> = steps
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, LoweredStep::Kernel { .. }))
        .map(|(i, _)| i)
        .collect();
    let flexible_sync = chip.features.flexible_sync;
    let nstreams = placement.len();
    // Event numbering: flexible barriers use one event per step; the
    // DTU 1.0 fallback builds each barrier from 1-to-1 events through a
    // hub stream — (n-1) gather events plus (n-1) release events per step.
    let hub_gather = |step: usize, si: usize| (step * 2 * nstreams + si) as u32 + 1;
    let hub_release = |step: usize, si: usize| (step * 2 * nstreams + nstreams + si) as u32 + 1;
    for (si, &gid) in placement.groups().iter().enumerate() {
        let mut stream = Stream::new(gid);
        // Stream 0 registers every barrier event up front.
        if si == 0 && nstreams > 1 {
            for (i, _) in steps.iter().enumerate() {
                if flexible_sync {
                    stream.push(Command::RegisterEvent {
                        event: i as u32 + 1,
                        pattern: SyncPattern::NToM {
                            producers: nstreams,
                            consumers: nstreams,
                        },
                    });
                } else {
                    for peer in 1..nstreams {
                        stream.push(Command::RegisterEvent {
                            event: hub_gather(i, peer),
                            pattern: SyncPattern::OneToOne,
                        });
                        stream.push(Command::RegisterEvent {
                            event: hub_release(i, peer),
                            pattern: SyncPattern::OneToOne,
                        });
                    }
                }
            }
        }
        let first_in_cluster = placement
            .groups()
            .iter()
            .position(|g| g.cluster == gid.cluster)
            == Some(si);
        for (i, step) in steps.iter().enumerate() {
            match step {
                LoweredStep::Movement { bytes_per_group } => {
                    if *bytes_per_group > 0 {
                        let path = if *bytes_per_group <= chip.l2_bytes_per_group() / 2 {
                            DmaPath::new(MemLevel::L2, MemLevel::L2)
                        } else {
                            DmaPath::new(MemLevel::L3, MemLevel::L3)
                        };
                        stream.push(Command::Dma {
                            descriptor: DmaDescriptor::copy(path, *bytes_per_group),
                            overlapped: false,
                        });
                    }
                }
                LoweredStep::Kernel {
                    kernel,
                    descriptor,
                    stage_in_bytes,
                    replicated_weight_bytes,
                    sparse_input,
                } => {
                    // Prefetch the *next* kernel's code while this one is
                    // being staged/run.
                    if cfg.enable_prefetch {
                        if let Some(&next) = kernel_steps.iter().find(|&&ks| ks > i) {
                            if let LoweredStep::Kernel {
                                kernel: nk,
                                descriptor: nd,
                                ..
                            } = &steps[next]
                            {
                                stream.push(Command::Prefetch {
                                    kernel: *nk,
                                    code_bytes: nd.code_bytes,
                                });
                            }
                        }
                    }
                    // Replicated-weight staging (ThroughputBatched).
                    if *replicated_weight_bytes > 0 {
                        let cluster_groups = placement.groups_in_cluster(gid.cluster);
                        if cfg.enable_broadcast && cluster_groups > 1 {
                            if first_in_cluster {
                                let mut wd = DmaDescriptor::copy(
                                    DmaPath::new(MemLevel::L3, MemLevel::L2),
                                    *replicated_weight_bytes,
                                );
                                wd.broadcast = cluster_groups;
                                stream.push(Command::Dma {
                                    descriptor: wd,
                                    overlapped: true,
                                });
                            }
                        } else {
                            stream.push(Command::Dma {
                                descriptor: DmaDescriptor::copy(
                                    DmaPath::new(MemLevel::L3, MemLevel::L2),
                                    *replicated_weight_bytes,
                                ),
                                overlapped: true,
                            });
                        }
                    }
                    // Input staging: tiled, overlapped, optionally sparse.
                    if *stage_in_bytes > 0 {
                        let tp = plan_tiles(*stage_in_bytes, placement.len(), chip);
                        let sparse = cfg.enable_sparse_dma && *sparse_input;
                        let mk = |bytes: u64, repeat: usize| {
                            let mut dd = DmaDescriptor::copy(
                                DmaPath::new(MemLevel::L3, MemLevel::L2),
                                bytes,
                            );
                            dd.repeat = repeat;
                            if sparse {
                                dd.sparse = SparseFormat::BitmapBlock;
                                dd.zero_fraction = cfg.relu_sparsity;
                            }
                            dd
                        };
                        if tp.use_repeat && cfg.enable_repeat_dma && tp.tiles > 1 {
                            stream.push(Command::Dma {
                                descriptor: mk(tp.tile_bytes, tp.tiles),
                                overlapped: true,
                            });
                        } else {
                            for _ in 0..tp.tiles.max(1) {
                                stream.push(Command::Dma {
                                    descriptor: mk(tp.tile_bytes.max(1), 1),
                                    overlapped: true,
                                });
                            }
                        }
                    }
                    stream.push(Command::Launch {
                        kernel: *kernel,
                        descriptor: descriptor.clone(),
                    });
                }
            }
            // Barrier after every step when multiple groups cooperate.
            if nstreams > 1 {
                if flexible_sync {
                    stream.push(Command::Signal {
                        event: i as u32 + 1,
                    });
                    stream.push(Command::Wait {
                        event: i as u32 + 1,
                    });
                } else if si == 0 {
                    // Hub: gather every peer, then release them all.
                    for peer in 1..nstreams {
                        stream.push(Command::Wait {
                            event: hub_gather(i, peer),
                        });
                    }
                    for peer in 1..nstreams {
                        stream.push(Command::Signal {
                            event: hub_release(i, peer),
                        });
                    }
                } else {
                    stream.push(Command::Signal {
                        event: hub_gather(i, si),
                    });
                    stream.push(Command::Wait {
                        event: hub_release(i, si),
                    });
                }
            }
        }
        program.add_stream(stream);
    }
    if let Some(t) = timer.as_mut() {
        t.finish_phase(rec, "emit-streams");
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_graph::{BinaryKind, TensorType};
    use dtu_sim::Chip;

    fn small_cnn() -> Graph {
        let mut g = Graph::new("small_cnn");
        let x = g.input("x", TensorType::fixed(&[1, 3, 64, 64]));
        let c1 = g.add_node(Op::conv2d(32, 3, 1, 1), vec![x]).unwrap();
        let b1 = g.add_node(Op::BatchNorm, vec![c1]).unwrap();
        let r1 = g.add_node(Op::Relu, vec![b1]).unwrap();
        let c2 = g.add_node(Op::conv2d(32, 3, 2, 1), vec![r1]).unwrap();
        let r2 = g.add_node(Op::Relu, vec![c2]).unwrap();
        let t = g
            .add_node(
                Op::Transpose {
                    perm: vec![0, 2, 3, 1],
                },
                vec![r2],
            )
            .unwrap();
        g.mark_output(t);
        g
    }

    fn residual() -> Graph {
        let mut g = Graph::new("residual");
        let x = g.input("x", TensorType::fixed(&[1, 16, 32, 32]));
        let c = g.add_node(Op::conv2d(16, 3, 1, 1), vec![x]).unwrap();
        let a = g
            .add_node(
                Op::Binary {
                    kind: BinaryKind::Add,
                },
                vec![c, x],
            )
            .unwrap();
        g.mark_output(a);
        g
    }

    #[test]
    fn compile_produces_streams_for_placement() {
        let chip = ChipConfig::dtu20();
        let g = small_cnn();
        let p = Placement::full_chip(&chip);
        let prog = compile(&g, &chip, &p, &CompilerConfig::for_chip(&chip)).unwrap();
        assert_eq!(prog.streams.len(), 6);
        // Two fused kernels (conv+bn+relu, conv+relu) per stream.
        for s in &prog.streams {
            assert_eq!(s.launch_count(), 2);
        }
    }

    #[test]
    fn compiled_program_runs_on_chip() {
        let chip_cfg = ChipConfig::dtu20();
        let chip = Chip::new(chip_cfg.clone());
        let g = small_cnn();
        let p = Placement::full_chip(&chip_cfg);
        let prog = compile(&g, &chip_cfg, &p, &CompilerConfig::for_chip(&chip_cfg)).unwrap();
        let report = chip.run(&prog).unwrap();
        assert!(report.latency_ns > 0.0);
        assert!(report.counters.kernel_launches >= 12); // 2 kernels x 6 groups
        assert!(report.counters.macs > 0);
    }

    #[test]
    fn single_group_placement_has_no_barriers() {
        let chip = ChipConfig::dtu20();
        let g = small_cnn();
        let p = Placement::cluster_groups(0, 1, &chip);
        let prog = compile(&g, &chip, &p, &CompilerConfig::for_chip(&chip)).unwrap();
        assert_eq!(prog.streams.len(), 1);
        assert!(!prog.streams[0]
            .commands
            .iter()
            .any(|c| matches!(c, Command::Signal { .. } | Command::Wait { .. })));
    }

    #[test]
    fn layout_group_lowers_to_dma() {
        let chip = ChipConfig::dtu20();
        let g = small_cnn();
        let p = Placement::cluster_groups(0, 1, &chip);
        let prog = compile(&g, &chip, &p, &CompilerConfig::for_chip(&chip)).unwrap();
        let dmas = prog.streams[0]
            .commands
            .iter()
            .filter(|c| matches!(c, Command::Dma { .. }))
            .count();
        assert!(dmas >= 1, "transpose should become a DMA");
    }

    #[test]
    fn bad_placement_rejected() {
        let chip = ChipConfig::dtu20();
        let g = small_cnn();
        let p = Placement::explicit(vec![dtu_sim::GroupId::new(9, 9)]);
        assert!(matches!(
            compile(&g, &chip, &p, &CompilerConfig::for_chip(&chip)),
            Err(CompileError::BadPlacement { .. })
        ));
    }

    #[test]
    fn oversized_model_rejected() {
        let chip = ChipConfig::dtu20();
        // A dense layer with > 16 GB of weights: 100k x 100k fp16 = 20 GB.
        let mut g = Graph::new("huge");
        let x = g.input("x", TensorType::fixed(&[1, 100_000]));
        let d = g.add_node(Op::Dense { units: 100_000 }, vec![x]).unwrap();
        g.mark_output(d);
        let p = Placement::full_chip(&chip);
        assert!(matches!(
            compile(&g, &chip, &p, &CompilerConfig::for_chip(&chip)),
            Err(CompileError::ModelTooLarge { .. })
        ));
    }

    #[test]
    fn prefetch_emitted_when_enabled() {
        let chip = ChipConfig::dtu20();
        let g = small_cnn();
        let p = Placement::cluster_groups(0, 1, &chip);
        let with = compile(&g, &chip, &p, &CompilerConfig::for_chip(&chip)).unwrap();
        let mut cfg = CompilerConfig::for_chip(&chip);
        cfg.enable_prefetch = false;
        let without = compile(&g, &chip, &p, &cfg).unwrap();
        let count = |p: &Program| {
            p.streams[0]
                .commands
                .iter()
                .filter(|c| matches!(c, Command::Prefetch { .. }))
                .count()
        };
        assert!(count(&with) > 0);
        assert_eq!(count(&without), 0);
    }

    #[test]
    fn sparse_staging_follows_relu_producers() {
        let chip = ChipConfig::dtu20();
        let g = small_cnn();
        let p = Placement::cluster_groups(0, 1, &chip);
        let prog = compile(&g, &chip, &p, &CompilerConfig::for_chip(&chip)).unwrap();
        let sparse_dmas = prog.streams[0]
            .commands
            .iter()
            .filter(|c| {
                matches!(
                    c,
                    Command::Dma { descriptor, .. }
                        if descriptor.sparse == SparseFormat::BitmapBlock
                )
            })
            .count();
        // The second conv's input comes from a ReLU.
        assert!(sparse_dmas >= 1);
    }

    #[test]
    fn throughput_mode_broadcasts_weights() {
        let chip = ChipConfig::dtu20();
        let g = residual();
        let p = Placement::cluster_groups(0, 3, &chip);
        let mut cfg = CompilerConfig::for_chip(&chip);
        cfg.mode = Mode::ThroughputBatched;
        let prog = compile(&g, &chip, &p, &cfg).unwrap();
        // Only the first stream in the cluster holds a broadcast DMA.
        let has_bcast = |s: &Stream| {
            s.commands
                .iter()
                .any(|c| matches!(c, Command::Dma { descriptor, .. } if descriptor.broadcast > 1))
        };
        assert!(has_bcast(&prog.streams[0]));
        assert!(!has_bcast(&prog.streams[1]));
        assert!(!has_bcast(&prog.streams[2]));
        // Without broadcast every stream stages its own copy.
        cfg.enable_broadcast = false;
        let prog2 = compile(&g, &chip, &p, &cfg).unwrap();
        for s in &prog2.streams {
            let weight_dmas = s
                .commands
                .iter()
                .filter(|c| {
                    matches!(
                        c,
                        Command::Dma {
                            overlapped: true,
                            ..
                        }
                    )
                })
                .count();
            assert!(weight_dmas >= 1);
        }
    }

    #[test]
    fn residual_runs_end_to_end_on_multiple_groups() {
        let chip_cfg = ChipConfig::dtu20();
        let chip = Chip::new(chip_cfg.clone());
        let g = residual();
        for n in 1..=3 {
            let p = Placement::cluster_groups(0, n, &chip_cfg);
            let prog = compile(&g, &chip_cfg, &p, &CompilerConfig::for_chip(&chip_cfg)).unwrap();
            let r = chip.run(&prog).unwrap();
            assert!(r.latency_ns > 0.0, "n={n}");
        }
    }

    #[test]
    fn search_fusion_compiles_and_runs_end_to_end() {
        let chip_cfg = ChipConfig::dtu20();
        let chip = Chip::new(chip_cfg.clone());
        let g = small_cnn();
        let p = Placement::cluster_groups(0, 1, &chip_cfg);
        let mut cfg = CompilerConfig::for_chip(&chip_cfg);
        let expert = chip
            .run(&compile(&g, &chip_cfg, &p, &cfg).unwrap())
            .unwrap();
        cfg.search_fusion = Some(dtu_graph::SearchConfig::default());
        let searched = chip
            .run(&compile(&g, &chip_cfg, &p, &cfg).unwrap())
            .unwrap();
        // The search plan fuses at least as deep, so it launches no more
        // kernels and is no slower (within rounding).
        assert!(searched.counters.kernel_launches <= expert.counters.kernel_launches);
        assert!(searched.latency_ns <= expert.latency_ns * 1.05);
    }

    #[test]
    fn compile_recorded_emits_phase_spans() {
        use dtu_telemetry::TraceBuffer;
        let chip = ChipConfig::dtu20();
        let g = small_cnn();
        let p = Placement::full_chip(&chip);
        let mut buf = TraceBuffer::new();
        let prog =
            compile_recorded(&g, &chip, &p, &CompilerConfig::for_chip(&chip), &mut buf).unwrap();
        assert!(!prog.streams.is_empty());
        let phases: Vec<&str> = buf.spans().iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            phases,
            ["optimize", "infer-shapes", "fuse", "lower", "emit-streams"]
        );
        for s in buf.spans() {
            assert_eq!(s.layer, Layer::Compiler);
            assert!(s.end_ns >= s.start_ns);
        }
        // Phases tile host time contiguously from 0.
        assert_eq!(buf.spans()[0].start_ns, 0.0);
        for w in buf.spans().windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns);
        }
    }

    #[test]
    fn dtu10_compile_respects_missing_features() {
        let chip_cfg = ChipConfig::dtu10();
        let chip = Chip::new(chip_cfg.clone());
        let g = small_cnn();
        let p = Placement::explicit(vec![dtu_sim::GroupId::new(0, 0)]);
        let cfg = CompilerConfig::for_chip(&chip_cfg);
        assert!(!cfg.enable_prefetch);
        assert!(!cfg.enable_repeat_dma);
        assert!(!cfg.enable_sparse_dma);
        let prog = compile(&g, &chip_cfg, &p, &cfg).unwrap();
        // Must run without tripping feature checks.
        let r = chip.run(&prog).unwrap();
        assert!(r.latency_ns > 0.0);
    }
}
