//! Data-flow auto-tuning (§V-B "Auto-tuning on data flows").
//!
//! The tuner "searches for efficient data tiling solutions that benefit
//! most from DTU's memory hierarchy and bandwidth": for a kernel's input
//! stream it enumerates candidate tile sizes that fit the double-buffered
//! L2 budget, estimates the pipeline time of each (DMA configuration +
//! transfer, overlapped against compute), and keeps the best.

use dtu_sim::ChipConfig;

/// The tiling the tuner selected for one kernel's input stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TilePlan {
    /// Bytes per tile (per processing group).
    pub tile_bytes: u64,
    /// Number of tiles (DMA transactions).
    pub tiles: usize,
    /// Whether the regular stride pattern qualifies for repeat-mode DMA.
    pub use_repeat: bool,
    /// Estimated staging time per group, ns (config + transfer, assuming
    /// the configured bandwidth share).
    pub estimated_ns: f64,
}

/// Plans the tiling of `bytes_per_group` of input data streamed into one
/// processing group's L2.
///
/// Double buffering reserves half the group's L2 partition for in-flight
/// tiles; the candidate set halves the tile size repeatedly and the cost
/// model trades fewer-configurations (big tiles) against pipeline overlap
/// granularity (small tiles). With repeat-mode DMA the configuration cost
/// is paid once regardless of tile count, so the tuner picks smaller
/// tiles than it can afford without it — the Fig. 6 effect surfacing in
/// the compiler.
pub fn plan_tiles(bytes_per_group: u64, bw_share: usize, cfg: &ChipConfig) -> TilePlan {
    let l2_budget = cfg.l2_bytes_per_group() / 2; // double buffering
    let config_ns = cfg.dma_config_cycles as f64 * cfg.cycle_ns();
    let gbps = cfg.l3_gb_per_s / bw_share.max(1) as f64;
    let repeat_ok = cfg.features.dma_repeat;

    if bytes_per_group == 0 {
        return TilePlan {
            tile_bytes: 0,
            tiles: 0,
            use_repeat: false,
            estimated_ns: 0.0,
        };
    }

    let mut best: Option<TilePlan> = None;
    // Candidates: the full payload, then halvings down to 64 KiB.
    let mut tile = bytes_per_group.min(l2_budget.max(64 * 1024));
    loop {
        let tiles = bytes_per_group.div_ceil(tile).max(1) as usize;
        let use_repeat = repeat_ok && tiles > 1;
        let configs = if use_repeat { 1 } else { tiles } as f64;
        let transfer_ns = bytes_per_group as f64 / gbps;
        // Smaller tiles overlap better with compute: the non-overlappable
        // exposure is one tile's transfer plus all configuration time.
        let exposure_ns = configs * config_ns + tile as f64 / gbps;
        let estimated_ns = transfer_ns + configs * config_ns;
        let candidate = TilePlan {
            tile_bytes: tile,
            tiles,
            use_repeat,
            estimated_ns,
        };
        let better = match &best {
            None => true,
            Some(b) => {
                let b_exposure = (if b.use_repeat { 1.0 } else { b.tiles as f64 }) * config_ns
                    + b.tile_bytes as f64 / gbps;
                exposure_ns < b_exposure
            }
        };
        if better {
            best = Some(candidate);
        }
        if tile / 2 < 64 * 1024 {
            break;
        }
        tile /= 2;
    }
    best.expect("at least one candidate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_trivial_plan() {
        let cfg = ChipConfig::dtu20();
        let p = plan_tiles(0, 1, &cfg);
        assert_eq!(p.tiles, 0);
        assert_eq!(p.estimated_ns, 0.0);
    }

    #[test]
    fn small_payload_single_tile() {
        let cfg = ChipConfig::dtu20();
        let p = plan_tiles(100 * 1024, 1, &cfg);
        assert!(p.tiles >= 1);
        assert!(p.tile_bytes >= 64 * 1024);
    }

    #[test]
    fn large_payload_tiles_within_l2_budget() {
        let cfg = ChipConfig::dtu20();
        let p = plan_tiles(64 * 1024 * 1024, 1, &cfg);
        assert!(p.tiles > 1);
        assert!(p.tile_bytes <= cfg.l2_bytes_per_group() / 2);
        assert!(p.use_repeat);
    }

    #[test]
    fn repeat_mode_prefers_finer_tiles() {
        let with = plan_tiles(16 * 1024 * 1024, 1, &ChipConfig::dtu20());
        let mut cfg10 = ChipConfig::dtu20();
        cfg10.features.dma_repeat = false;
        let without = plan_tiles(16 * 1024 * 1024, 1, &cfg10);
        assert!(with.use_repeat);
        assert!(!without.use_repeat);
        // Without repeat, per-tile configs push the tuner to coarser tiles.
        assert!(without.tile_bytes >= with.tile_bytes);
    }

    #[test]
    fn bandwidth_share_raises_estimate() {
        let cfg = ChipConfig::dtu20();
        let solo = plan_tiles(8 * 1024 * 1024, 1, &cfg);
        let shared = plan_tiles(8 * 1024 * 1024, 6, &cfg);
        assert!(shared.estimated_ns > solo.estimated_ns * 3.0);
    }
}
