//! A functional VLIW interpreter for small kernels.
//!
//! Model-scale kernels run as descriptors through the timing layer, but
//! hand-written kernels (examples, operator unit tests, the DSL path of
//! TopsEngine) execute here for real: packets issue one per cycle, each
//! slot dispatches to its engine, register files hold live values, and
//! bank conflicts add stall cycles — the hazard the compiler's register
//! allocator exists to avoid.

use crate::{MatrixEngine, MatrixEngineError, Spu, SpuError, VectorEngine};
use dtu_isa::{DataType, Instruction, Packet, RegClass, RegId, ScalarOp, VectorOp};
use dtu_tensor::{Shape, Tensor, TensorError};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors raised while interpreting a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// A register was read before being written.
    UninitializedRegister {
        /// The offending register.
        reg: String,
    },
    /// A memory access fell outside the L1 window.
    L1OutOfBounds {
        /// Byte address.
        addr: usize,
        /// L1 size in bytes.
        size: usize,
    },
    /// The matrix engine rejected an operation.
    Matrix(MatrixEngineError),
    /// The SPU rejected an operation.
    Spu(SpuError),
    /// A tensor-level operation failed.
    Tensor(TensorError),
    /// Instruction shape did not match its operands (e.g. VMM with a
    /// scalar register).
    Malformed {
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::UninitializedRegister { reg } => {
                write!(f, "register {reg} read before write")
            }
            InterpError::L1OutOfBounds { addr, size } => {
                write!(f, "L1 access at {addr} outside {size}-byte buffer")
            }
            InterpError::Matrix(e) => write!(f, "matrix engine: {e}"),
            InterpError::Spu(e) => write!(f, "spu: {e}"),
            InterpError::Tensor(e) => write!(f, "tensor: {e}"),
            InterpError::Malformed { reason } => write!(f, "malformed instruction: {reason}"),
        }
    }
}

impl Error for InterpError {}

impl From<MatrixEngineError> for InterpError {
    fn from(e: MatrixEngineError) -> Self {
        InterpError::Matrix(e)
    }
}

impl From<SpuError> for InterpError {
    fn from(e: SpuError) -> Self {
        InterpError::Spu(e)
    }
}

impl From<TensorError> for InterpError {
    fn from(e: TensorError) -> Self {
        InterpError::Tensor(e)
    }
}

/// Execution statistics of one interpreted kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InterpReport {
    /// Packets issued.
    pub packets: u64,
    /// Total cycles including stalls.
    pub cycles: u64,
    /// Stall cycles due to register bank conflicts.
    pub bank_conflict_stalls: u64,
    /// Sync events signalled.
    pub signals: u64,
}

/// Register-file contents: scalars hold one value, vector/matrix/accum
/// registers hold tensors.
#[derive(Debug, Clone, PartialEq)]
enum RegValue {
    Scalar(f32),
    Tensor(Tensor),
}

/// The interpreter for one compute core.
#[derive(Debug)]
pub struct Interpreter {
    regs: BTreeMap<RegId, RegValue>,
    l1: Vec<f32>,
    matrix: MatrixEngine,
    vector: VectorEngine,
    spu: Spu,
    dtype: DataType,
    signalled: Vec<u32>,
}

impl Interpreter {
    /// Creates an interpreter with an L1 buffer of `l1_bytes` and the
    /// compute data type for vector/matrix ops.
    pub fn new(l1_bytes: usize, dtype: DataType) -> Self {
        Interpreter {
            regs: BTreeMap::new(),
            l1: vec![0.0; l1_bytes / 4],
            matrix: MatrixEngine::default(),
            vector: VectorEngine::new(),
            spu: Spu::default(),
            dtype,
            signalled: Vec::new(),
        }
    }

    /// Writes a scalar register before execution (kernel arguments).
    pub fn set_scalar(&mut self, reg: RegId, v: f32) {
        self.regs.insert(reg, RegValue::Scalar(v));
    }

    /// Writes a vector/matrix register before execution.
    pub fn set_tensor(&mut self, reg: RegId, t: Tensor) {
        self.regs.insert(reg, RegValue::Tensor(t));
    }

    /// Reads back a tensor register after execution.
    ///
    /// # Errors
    ///
    /// [`InterpError::UninitializedRegister`] if never written, and
    /// [`InterpError::Malformed`] if it holds a scalar.
    pub fn tensor(&self, reg: RegId) -> Result<&Tensor, InterpError> {
        match self.regs.get(&reg) {
            Some(RegValue::Tensor(t)) => Ok(t),
            Some(RegValue::Scalar(_)) => Err(InterpError::Malformed {
                reason: format!("{reg} holds a scalar, not a tensor"),
            }),
            None => Err(InterpError::UninitializedRegister {
                reg: reg.to_string(),
            }),
        }
    }

    /// Reads back a scalar register after execution.
    ///
    /// # Errors
    ///
    /// As for [`Interpreter::tensor`], with roles swapped.
    pub fn scalar(&self, reg: RegId) -> Result<f32, InterpError> {
        match self.regs.get(&reg) {
            Some(RegValue::Scalar(v)) => Ok(*v),
            Some(RegValue::Tensor(_)) => Err(InterpError::Malformed {
                reason: format!("{reg} holds a tensor, not a scalar"),
            }),
            None => Err(InterpError::UninitializedRegister {
                reg: reg.to_string(),
            }),
        }
    }

    /// Writes a word into L1 (word-addressed helper for tests/examples).
    ///
    /// # Errors
    ///
    /// [`InterpError::L1OutOfBounds`].
    pub fn poke_l1(&mut self, word: usize, v: f32) -> Result<(), InterpError> {
        let size = self.l1.len() * 4;
        *self.l1.get_mut(word).ok_or(InterpError::L1OutOfBounds {
            addr: word * 4,
            size,
        })? = v;
        Ok(())
    }

    /// Reads a word from L1.
    ///
    /// # Errors
    ///
    /// [`InterpError::L1OutOfBounds`].
    pub fn peek_l1(&self, word: usize) -> Result<f32, InterpError> {
        self.l1
            .get(word)
            .copied()
            .ok_or(InterpError::L1OutOfBounds {
                addr: word * 4,
                size: self.l1.len() * 4,
            })
    }

    /// Events signalled by the kernel.
    pub fn signalled_events(&self) -> &[u32] {
        &self.signalled
    }

    fn read_scalar(&self, reg: RegId) -> Result<f32, InterpError> {
        self.scalar(reg)
    }

    fn read_tensor(&self, reg: RegId) -> Result<Tensor, InterpError> {
        self.tensor(reg).cloned()
    }

    /// Executes one instruction (ignoring issue timing — the packet loop
    /// handles cycles).
    fn execute(&mut self, ins: &Instruction) -> Result<(), InterpError> {
        match ins {
            Instruction::Scalar { op, dst, srcs } => {
                let a = srcs.first().map(|&r| self.read_scalar(r)).transpose()?;
                let b = srcs.get(1).map(|&r| self.read_scalar(r)).transpose()?;
                let (a, b) = (a.unwrap_or(0.0), b.unwrap_or(0.0));
                let v = match op {
                    ScalarOp::Add => a + b,
                    ScalarOp::Sub => a - b,
                    ScalarOp::Mul => a * b,
                    ScalarOp::Cmp => {
                        if a < b {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    // Control flow is resolved by the compiler in this
                    // model; branches compute their condition only.
                    ScalarOp::Branch | ScalarOp::LoopEnd => a,
                };
                self.regs.insert(*dst, RegValue::Scalar(v));
            }
            Instruction::Vector { op, dst, srcs } => {
                let a = self.read_tensor(srcs[0])?;
                let out = match op {
                    VectorOp::ReduceSum | VectorOp::ReduceMax => {
                        let v = self.vector.reduce(*op, &a);
                        Tensor::from_vec(vec![v])
                    }
                    VectorOp::Recip => self.vector.recip(&a),
                    VectorOp::Fma => {
                        let b = self.read_tensor(srcs[1])?;
                        let c = self.read_tensor(srcs[2])?;
                        self.vector.fma(&a, &b, &c, self.dtype)?
                    }
                    _ => {
                        let b = self.read_tensor(srcs[1])?;
                        self.vector.binary(*op, &a, &b, self.dtype)?
                    }
                };
                self.regs.insert(*dst, RegValue::Tensor(out));
            }
            Instruction::MatrixFill { dst, row, src } => {
                let vec = self.read_tensor(*src)?;
                let cols = vec.len();
                let mut m = match self.regs.get(dst) {
                    Some(RegValue::Tensor(t)) if t.shape().rank() == 2 => t.clone(),
                    _ => Tensor::zeros(Shape::new(vec![row + 1, cols])),
                };
                // Grow the matrix if the row is beyond current extent.
                if *row >= m.shape().dims()[0] || m.shape().dims()[1] != cols {
                    let rows = (*row + 1).max(m.shape().dims()[0]);
                    let mut grown = Tensor::zeros(Shape::new(vec![rows, cols]));
                    for r in 0..m.shape().dims()[0].min(rows) {
                        for c in 0..m.shape().dims()[1].min(cols) {
                            let v = m.get(&[r, c])?;
                            grown.set(&[r, c], v)?;
                        }
                    }
                    m = grown;
                }
                for c in 0..cols {
                    let v = vec.data()[c];
                    m.set(&[*row, c], v)?;
                }
                self.regs.insert(*dst, RegValue::Tensor(m));
            }
            Instruction::Vmm { acc, vec, mat, .. } => {
                let mut v = self.read_tensor(*vec)?;
                let m = self.read_tensor(*mat)?;
                let rows = m
                    .shape()
                    .dims()
                    .first()
                    .copied()
                    .ok_or(InterpError::Malformed {
                        reason: "VMM matrix operand is not rank-2".into(),
                    })?;
                // The VMM pattern selects the vector length: a full
                // 16-lane register feeding a shorter matrix uses only its
                // first `rows` lanes.
                if v.len() > rows {
                    v = dtu_tensor::Tensor::from_vec(v.data()[..rows].to_vec());
                }
                let cols = m
                    .shape()
                    .dims()
                    .get(1)
                    .copied()
                    .ok_or(InterpError::Malformed {
                        reason: "VMM matrix operand is not rank-2".into(),
                    })?;
                let a = match self.regs.get(acc) {
                    Some(RegValue::Tensor(t)) => t.clone(),
                    _ => Tensor::zeros(Shape::new(vec![cols])),
                };
                let out = self.matrix.vmm(&v, &m, &a, self.dtype)?;
                self.regs.insert(*acc, RegValue::Tensor(out));
            }
            Instruction::AccRead { dst, acc } => {
                let t = self.read_tensor(*acc)?;
                self.regs.insert(*dst, RegValue::Tensor(t));
            }
            Instruction::Sfu { func, dst, src } => {
                let t = self.read_tensor(*src)?;
                let out = self.spu.eval_tensor(*func, &t)?;
                self.regs.insert(*dst, RegValue::Tensor(out));
            }
            Instruction::Load { dst, addr } => {
                let lanes = if dst.class == RegClass::Scalar { 1 } else { 16 };
                let word = addr / 4;
                if word + lanes > self.l1.len() {
                    return Err(InterpError::L1OutOfBounds {
                        addr: *addr,
                        size: self.l1.len() * 4,
                    });
                }
                if lanes == 1 {
                    self.regs.insert(*dst, RegValue::Scalar(self.l1[word]));
                } else {
                    let t = Tensor::from_vec(self.l1[word..word + lanes].to_vec());
                    self.regs.insert(*dst, RegValue::Tensor(t));
                }
            }
            Instruction::Store { src, addr } => {
                let word = addr / 4;
                match self.regs.get(src) {
                    Some(RegValue::Scalar(v)) => {
                        let size = self.l1.len() * 4;
                        *self
                            .l1
                            .get_mut(word)
                            .ok_or(InterpError::L1OutOfBounds { addr: *addr, size })? = *v;
                    }
                    Some(RegValue::Tensor(t)) => {
                        if word + t.len() > self.l1.len() {
                            return Err(InterpError::L1OutOfBounds {
                                addr: *addr,
                                size: self.l1.len() * 4,
                            });
                        }
                        self.l1[word..word + t.len()].copy_from_slice(t.data());
                    }
                    None => {
                        return Err(InterpError::UninitializedRegister {
                            reg: src.to_string(),
                        })
                    }
                }
            }
            Instruction::SyncSignal { event } => self.signalled.push(*event),
            // Waits resolve at the chip scheduler level; prefetch is a
            // timing hint.
            Instruction::SyncWait { .. } | Instruction::KernelPrefetch { .. } => {}
        }
        Ok(())
    }

    /// Runs a packet stream to completion.
    ///
    /// Each packet costs one cycle plus one stall cycle per register bank
    /// conflict it contains.
    ///
    /// # Errors
    ///
    /// The first execution error aborts the kernel.
    pub fn run(&mut self, packets: &[Packet]) -> Result<InterpReport, InterpError> {
        let mut report = InterpReport::default();
        for pkt in packets {
            report.packets += 1;
            report.cycles += 1;
            if pkt.has_bank_conflict() {
                report.cycles += 1;
                report.bank_conflict_stalls += 1;
            }
            for ins in pkt.instructions() {
                if matches!(ins, Instruction::SyncSignal { .. }) {
                    report.signals += 1;
                }
                self.execute(ins)?;
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_isa::{Packet, SfuFunc};

    fn vreg(i: usize) -> RegId {
        RegId::new(RegClass::Vector, i)
    }
    fn sreg(i: usize) -> RegId {
        RegId::new(RegClass::Scalar, i)
    }
    fn areg(i: usize) -> RegId {
        RegId::new(RegClass::Accum, i)
    }
    fn mreg(i: usize) -> RegId {
        RegId::new(RegClass::Matrix, i)
    }

    fn interp() -> Interpreter {
        Interpreter::new(64 * 1024, DataType::Fp32)
    }

    #[test]
    fn scalar_arithmetic() {
        let mut it = interp();
        it.set_scalar(sreg(0), 3.0);
        it.set_scalar(sreg(1), 4.0);
        let pkts = vec![Packet::single(Instruction::Scalar {
            op: ScalarOp::Mul,
            dst: sreg(2),
            srcs: vec![sreg(0), sreg(1)],
        })];
        it.run(&pkts).unwrap();
        assert_eq!(it.scalar(sreg(2)).unwrap(), 12.0);
    }

    #[test]
    fn vector_add_through_packets() {
        let mut it = interp();
        it.set_tensor(vreg(0), Tensor::from_vec(vec![1.0, 2.0, 3.0]));
        it.set_tensor(vreg(1), Tensor::from_vec(vec![10.0, 20.0, 30.0]));
        let pkts = vec![Packet::single(Instruction::Vector {
            op: VectorOp::Add,
            dst: vreg(2),
            srcs: vec![vreg(0), vreg(1)],
        })];
        let r = it.run(&pkts).unwrap();
        assert_eq!(it.tensor(vreg(2)).unwrap().data(), &[11.0, 22.0, 33.0]);
        assert_eq!(r.cycles, 1);
    }

    #[test]
    fn load_compute_store_roundtrip() {
        let mut it = interp();
        for w in 0..16 {
            it.poke_l1(w, w as f32).unwrap();
        }
        let pkts = vec![
            Packet::single(Instruction::Load {
                dst: vreg(0),
                addr: 0,
            }),
            Packet::single(Instruction::Sfu {
                func: SfuFunc::Exp,
                dst: vreg(1),
                src: vreg(0),
            }),
            Packet::single(Instruction::Store {
                src: vreg(1),
                addr: 64,
            }),
        ];
        it.run(&pkts).unwrap();
        let y = it.peek_l1(16).unwrap(); // word 16 = byte 64
        assert!((y - 1.0).abs() < 1e-3); // exp(0)
        let y5 = it.peek_l1(21).unwrap();
        assert!((y5 as f64 - (5.0f64).exp()).abs() / (5.0f64).exp() < 1e-3);
    }

    #[test]
    fn vmm_via_matrix_fill() {
        let mut it = interp();
        // Fill a 4x16 matrix of ones row by row, then multiply by ones.
        let ones16 = Tensor::from_vec(vec![1.0; 16]);
        it.set_tensor(vreg(0), ones16.clone());
        let mut pkts = Vec::new();
        for row in 0..4 {
            pkts.push(Packet::single(Instruction::MatrixFill {
                dst: mreg(0),
                row,
                src: vreg(0),
            }));
        }
        it.set_tensor(vreg(1), Tensor::from_vec(vec![2.0; 4]));
        pkts.push(Packet::single(Instruction::Vmm {
            pattern: 0,
            acc: areg(0),
            vec: vreg(1),
            mat: mreg(0),
        }));
        pkts.push(Packet::single(Instruction::AccRead {
            dst: vreg(2),
            acc: areg(0),
        }));
        it.run(&pkts).unwrap();
        let out = it.tensor(vreg(2)).unwrap();
        assert!(out.data().iter().all(|&x| x == 8.0)); // 4 rows × 2.0
    }

    #[test]
    fn bank_conflicts_cost_cycles() {
        let mut it = interp();
        // v0 and v4 share a bank (4 banks).
        it.set_tensor(vreg(0), Tensor::from_vec(vec![1.0]));
        it.set_tensor(vreg(4), Tensor::from_vec(vec![2.0]));
        let pkts = vec![Packet::single(Instruction::Vector {
            op: VectorOp::Add,
            dst: vreg(1),
            srcs: vec![vreg(0), vreg(4)],
        })];
        let r = it.run(&pkts).unwrap();
        assert_eq!(r.bank_conflict_stalls, 1);
        assert_eq!(r.cycles, 2);
    }

    #[test]
    fn uninitialized_register_detected() {
        let mut it = interp();
        let pkts = vec![Packet::single(Instruction::Vector {
            op: VectorOp::Add,
            dst: vreg(1),
            srcs: vec![vreg(0), vreg(2)],
        })];
        assert!(matches!(
            it.run(&pkts),
            Err(InterpError::UninitializedRegister { .. })
        ));
    }

    #[test]
    fn l1_bounds_checked() {
        let mut it = Interpreter::new(64, DataType::Fp32); // 16 words
        assert!(it.poke_l1(16, 1.0).is_err());
        let pkts = vec![Packet::single(Instruction::Load {
            dst: vreg(0),
            addr: 60, // word 15 + 16 lanes > 16 words
        })];
        assert!(matches!(
            it.run(&pkts),
            Err(InterpError::L1OutOfBounds { .. })
        ));
    }

    #[test]
    fn sync_signal_recorded() {
        let mut it = interp();
        let pkts = vec![Packet::single(Instruction::SyncSignal { event: 42 })];
        let r = it.run(&pkts).unwrap();
        assert_eq!(it.signalled_events(), &[42]);
        assert_eq!(r.signals, 1);
    }

    #[test]
    fn reductions_and_fma() {
        let mut it = interp();
        it.set_tensor(vreg(0), Tensor::from_vec(vec![1.0, 2.0, 3.0]));
        it.set_tensor(vreg(1), Tensor::from_vec(vec![4.0, 5.0, 6.0]));
        it.set_tensor(vreg(2), Tensor::from_vec(vec![0.5, 0.5, 0.5]));
        let pkts = vec![
            Packet::single(Instruction::Vector {
                op: VectorOp::Fma,
                dst: vreg(3),
                srcs: vec![vreg(0), vreg(1), vreg(2)],
            }),
            Packet::single(Instruction::Vector {
                op: VectorOp::ReduceSum,
                dst: vreg(4),
                srcs: vec![vreg(3)],
            }),
        ];
        it.run(&pkts).unwrap();
        // 1*4+.5 + 2*5+.5 + 3*6+.5 = 4.5 + 10.5 + 18.5 = 33.5
        assert_eq!(it.tensor(vreg(4)).unwrap().data(), &[33.5]);
    }

    #[test]
    fn scalar_tensor_type_confusion_detected() {
        let mut it = interp();
        it.set_scalar(sreg(0), 1.0);
        assert!(matches!(
            it.tensor(sreg(0)),
            Err(InterpError::Malformed { .. })
        ));
        it.set_tensor(vreg(0), Tensor::from_vec(vec![1.0]));
        assert!(matches!(
            it.scalar(vreg(0)),
            Err(InterpError::Malformed { .. })
        ));
    }
}
