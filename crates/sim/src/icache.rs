//! The instruction buffer's cache mode and kernel-code prefetch.
//!
//! §IV-B: "DTU 2.0 enables instruction cache and provides specific
//! instructions to the programmers for controlling kernel code prefetch
//! ... On cache misses, the instruction buffer triggers kernel code
//! loading automatically." Without the cache (DTU 1.0), every kernel
//! launch pays the full code-load latency from L3; with it, resident
//! kernels hit, and prefetched kernels overlap their load with prior
//! compute.

use dtu_isa::KernelId;
use std::collections::VecDeque;

/// What happened when a core fetched a kernel's code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FetchOutcome {
    /// Code already resident; no stall.
    Hit,
    /// Code was being prefetched; the core stalls only for the remainder.
    PrefetchInFlight {
        /// Nanoseconds the core still has to wait at fetch time.
        remaining_ns: f64,
    },
    /// Cold miss; the core stalls for the full load.
    Miss {
        /// Nanoseconds of load stall.
        load_ns: f64,
    },
}

impl FetchOutcome {
    /// The stall this outcome imposes on the core.
    pub fn stall_ns(&self) -> f64 {
        match self {
            FetchOutcome::Hit => 0.0,
            FetchOutcome::PrefetchInFlight { remaining_ns } => *remaining_ns,
            FetchOutcome::Miss { load_ns } => *load_ns,
        }
    }
}

#[derive(Debug, Clone)]
struct Resident {
    kernel: KernelId,
    bytes: u64,
    /// Completion time of the load that brought this kernel in.
    loaded_at_ns: f64,
}

/// One compute core's instruction buffer with optional cache mode.
#[derive(Debug, Clone)]
pub struct InstructionCache {
    capacity_bytes: u64,
    cache_mode: bool,
    load_gbps: f64,
    /// LRU-ordered resident kernels (front = oldest).
    resident: VecDeque<Resident>,
    hits: u64,
    misses: u64,
    prefetches: u64,
}

impl InstructionCache {
    /// Creates an instruction buffer.
    ///
    /// `cache_mode` keeps kernels resident across launches and enables
    /// prefetch; without it the buffer holds only the current kernel.
    pub fn new(capacity_bytes: u64, cache_mode: bool, load_gbps: f64) -> Self {
        InstructionCache {
            capacity_bytes,
            cache_mode,
            load_gbps,
            resident: VecDeque::new(),
            hits: 0,
            misses: 0,
            prefetches: 0,
        }
    }

    /// Buffer capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Time to load `bytes` of code from L3, ns.
    pub fn load_ns(&self, bytes: u64) -> f64 {
        bytes as f64 / self.load_gbps
    }

    fn find(&self, kernel: KernelId) -> Option<usize> {
        self.resident.iter().position(|r| r.kernel == kernel)
    }

    fn evict_for(&mut self, bytes: u64) {
        let need = bytes.min(self.capacity_bytes);
        let mut used: u64 = self.resident.iter().map(|r| r.bytes).sum();
        while used + need > self.capacity_bytes {
            match self.resident.pop_front() {
                Some(r) => used -= r.bytes,
                None => break,
            }
        }
    }

    /// Issues a user-controlled prefetch of `kernel` at time `now_ns`.
    /// The load proceeds in the background; a later fetch pays only the
    /// remaining time. No-op without cache mode.
    pub fn prefetch(&mut self, kernel: KernelId, bytes: u64, now_ns: f64) {
        if !self.cache_mode || self.find(kernel).is_some() {
            return;
        }
        self.prefetches += 1;
        self.evict_for(bytes);
        let done = now_ns + self.load_ns(bytes);
        self.resident.push_back(Resident {
            kernel,
            bytes,
            loaded_at_ns: done,
        });
    }

    /// The core fetches `kernel` (of `bytes` code) at `now_ns`.
    ///
    /// Oversized kernels (code larger than the buffer) always stream from
    /// L3 — "it solves the problem of loading extremely large kernels
    /// that exceed the capacity of the instruction buffer" means they
    /// *run*, not that they become free — so they report a miss each time.
    pub fn fetch(&mut self, kernel: KernelId, bytes: u64, now_ns: f64) -> FetchOutcome {
        if !self.cache_mode {
            self.misses += 1;
            return FetchOutcome::Miss {
                load_ns: self.load_ns(bytes),
            };
        }
        if bytes > self.capacity_bytes {
            self.misses += 1;
            return FetchOutcome::Miss {
                load_ns: self.load_ns(bytes),
            };
        }
        if let Some(pos) = self.find(kernel) {
            // Touch for LRU.
            let r = self.resident.remove(pos).expect("present");
            let loaded_at = r.loaded_at_ns;
            self.resident.push_back(r);
            if loaded_at <= now_ns {
                self.hits += 1;
                return FetchOutcome::Hit;
            }
            // Prefetch still in flight.
            self.hits += 1;
            return FetchOutcome::PrefetchInFlight {
                remaining_ns: loaded_at - now_ns,
            };
        }
        // Cold miss: load now and keep resident.
        self.misses += 1;
        self.evict_for(bytes);
        let load = self.load_ns(bytes);
        self.resident.push_back(Resident {
            kernel,
            bytes,
            loaded_at_ns: now_ns + load,
        });
        FetchOutcome::Miss { load_ns: load }
    }

    /// Drops every resident kernel (fault injection models corrupted
    /// code with this: subsequent fetches reload from L3). Hit/miss
    /// statistics are preserved.
    pub fn invalidate(&mut self) {
        self.resident.clear();
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Prefetch instructions executed so far.
    pub fn prefetches(&self) -> u64 {
        self.prefetches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> InstructionCache {
        // 128 KiB buffer, 819 GB/s load path.
        InstructionCache::new(128 * 1024, true, 819.0)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cache();
        let k = KernelId(1);
        let first = c.fetch(k, 64 * 1024, 0.0);
        assert!(matches!(first, FetchOutcome::Miss { .. }));
        assert!(first.stall_ns() > 0.0);
        let second = c.fetch(k, 64 * 1024, 1000.0);
        assert_eq!(second, FetchOutcome::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn prefetch_hides_load_latency() {
        let mut c = cache();
        let k = KernelId(2);
        c.prefetch(k, 64 * 1024, 0.0);
        let load = c.load_ns(64 * 1024);
        // Fetch long after the prefetch completed: free.
        let f = c.fetch(k, 64 * 1024, load + 1.0);
        assert_eq!(f, FetchOutcome::Hit);
        assert_eq!(c.prefetches(), 1);
    }

    #[test]
    fn early_fetch_pays_remaining_prefetch_time() {
        let mut c = cache();
        let k = KernelId(3);
        c.prefetch(k, 81_900, 0.0); // load = 100 ns
        let f = c.fetch(k, 81_900, 40.0);
        match f {
            FetchOutcome::PrefetchInFlight { remaining_ns } => {
                assert!((remaining_ns - 60.0).abs() < 1.0);
            }
            other => panic!("expected in-flight prefetch, got {other:?}"),
        }
    }

    #[test]
    fn no_cache_mode_always_misses() {
        let mut c = InstructionCache::new(128 * 1024, false, 819.0);
        let k = KernelId(4);
        assert!(matches!(c.fetch(k, 1024, 0.0), FetchOutcome::Miss { .. }));
        assert!(matches!(c.fetch(k, 1024, 9.9), FetchOutcome::Miss { .. }));
        c.prefetch(k, 1024, 0.0);
        assert_eq!(c.prefetches(), 0);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn oversized_kernel_always_streams() {
        let mut c = cache();
        let k = KernelId(5);
        let big = 512 * 1024;
        assert!(matches!(c.fetch(k, big, 0.0), FetchOutcome::Miss { .. }));
        assert!(matches!(c.fetch(k, big, 1e9), FetchOutcome::Miss { .. }));
    }

    #[test]
    fn lru_eviction() {
        let mut c = InstructionCache::new(100, true, 819.0);
        c.fetch(KernelId(1), 40, 0.0);
        c.fetch(KernelId(2), 40, 0.0);
        // Touch 1 so 2 becomes LRU.
        c.fetch(KernelId(1), 40, 10.0);
        // Insert 3: evicts 2.
        c.fetch(KernelId(3), 40, 20.0);
        assert_eq!(c.fetch(KernelId(1), 40, 1e6), FetchOutcome::Hit);
        assert!(matches!(
            c.fetch(KernelId(2), 40, 1e6),
            FetchOutcome::Miss { .. }
        ));
    }

    #[test]
    fn duplicate_prefetch_is_idempotent() {
        let mut c = cache();
        c.prefetch(KernelId(9), 1000, 0.0);
        c.prefetch(KernelId(9), 1000, 5.0);
        assert_eq!(c.prefetches(), 1);
    }

    #[test]
    fn load_time_scales_with_size() {
        let c = cache();
        assert!(c.load_ns(2048) > c.load_ns(1024));
        assert!((c.load_ns(819) - 1.0).abs() < 1e-9);
    }
}
