//! The matrix engine: vector-matrix multiplication and VMM-assisted sorting.
//!
//! §IV-A1: the engine holds 2 matrix registers (32x512-bit), 32 vector
//! registers (512-bit), and 1024 accumulation registers (512-bit), and
//! computes VMM as a series of outer-product steps, accumulating into an
//! accumulation register (Fig. 3). It also implements the Fig. 4 sorting
//! facility: a relationship matrix compares all vector elements pairwise,
//! column sums give the rank of each element, the ranks define a
//! permutation (transformation) matrix, and one VMM against that matrix
//! yields the sorted vector.

use dtu_isa::{find_pattern, DataType, MatrixShape};
use dtu_tensor::{Shape, Tensor};
use std::error::Error;
use std::fmt;

/// Errors from matrix-engine operations.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixEngineError {
    /// The requested (shape, dtype) combination is not in the VMM catalog.
    UnsupportedPattern {
        /// Requested shape.
        shape: MatrixShape,
        /// Requested data type.
        dtype: DataType,
    },
    /// Operand dimensions disagree with the requested pattern.
    OperandMismatch {
        /// What went wrong.
        reason: String,
    },
    /// The sorting facility only handles vectors up to the engine's
    /// maximum matrix rows.
    VectorTooLong {
        /// Requested length.
        len: usize,
        /// Hardware maximum.
        max: usize,
    },
    /// The fine-grained VMM feature is disabled (DTU 1.0 ablation) and the
    /// requested pattern is not one of the coarse GEMM tiles.
    FeatureDisabled {
        /// Description of the disabled path.
        what: String,
    },
}

impl fmt::Display for MatrixEngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixEngineError::UnsupportedPattern { shape, dtype } => {
                write!(f, "unsupported VMM pattern {shape} {dtype}")
            }
            MatrixEngineError::OperandMismatch { reason } => {
                write!(f, "operand mismatch: {reason}")
            }
            MatrixEngineError::VectorTooLong { len, max } => {
                write!(f, "sort vector length {len} exceeds engine maximum {max}")
            }
            MatrixEngineError::FeatureDisabled { what } => write!(f, "feature disabled: {what}"),
        }
    }
}

impl Error for MatrixEngineError {}

/// Intermediate artefacts of the Fig. 4 sorting flow, exposed so tests and
/// examples can inspect each hardware step.
#[derive(Debug, Clone, PartialEq)]
pub struct SortArtifacts {
    /// Step 1: pairwise relationship matrix (`n x n`, entries 0/1).
    pub relationship: Tensor,
    /// Step 2: per-element rank ("order vector") — column sums.
    pub order: Vec<usize>,
    /// Step 3: the permutation (transformation) matrix.
    pub transformation: Tensor,
    /// Step 4: the sorted vector (ascending).
    pub sorted: Tensor,
}

/// The functional model of one compute core's matrix engine.
#[derive(Debug, Clone)]
pub struct MatrixEngine {
    fine_grained: bool,
    /// Cycle counter accumulated across macro-ops (timing layer hook).
    cycles: u64,
}

impl MatrixEngine {
    /// Maximum rows a sort vector may have (one matrix register's rows).
    pub const MAX_SORT_LEN: usize = 32;

    /// Creates a matrix engine. `fine_grained` selects the DTU 2.0 VMM
    /// catalog; when false only the DTU 1.0 coarse 16x16 GEMM tile exists.
    pub fn new(fine_grained: bool) -> Self {
        MatrixEngine {
            fine_grained,
            cycles: 0,
        }
    }

    /// Total matrix-pipeline cycles charged so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Resets the cycle counter.
    pub fn reset_cycles(&mut self) {
        self.cycles = 0;
    }

    /// Validates a (shape, dtype) pattern against the hardware catalog.
    ///
    /// # Errors
    ///
    /// [`MatrixEngineError::FeatureDisabled`] when fine-grained VMM is off
    /// and the shape is not the square GEMM tile;
    /// [`MatrixEngineError::UnsupportedPattern`] when the catalog lacks it.
    pub fn check_pattern(
        &self,
        shape: MatrixShape,
        dtype: DataType,
    ) -> Result<(), MatrixEngineError> {
        if !self.fine_grained && shape.rows != shape.cols {
            return Err(MatrixEngineError::FeatureDisabled {
                what: format!("fine-grained VMM (requested {shape})"),
            });
        }
        if find_pattern(shape, dtype).is_none() {
            return Err(MatrixEngineError::UnsupportedPattern { shape, dtype });
        }
        Ok(())
    }

    /// Computes `vector × matrix + acc`, quantising through `dtype`.
    ///
    /// `vector` must be `[rows]`, `matrix` `[rows, cols]`, and `acc`
    /// `[cols]`; the result replaces the accumulator, mirroring the
    /// accumulate-in-place semantics of the accumulation registers.
    ///
    /// # Errors
    ///
    /// Pattern errors as in [`MatrixEngine::check_pattern`], plus
    /// [`MatrixEngineError::OperandMismatch`] for dimension disagreements.
    pub fn vmm(
        &mut self,
        vector: &Tensor,
        matrix: &Tensor,
        acc: &Tensor,
        dtype: DataType,
    ) -> Result<Tensor, MatrixEngineError> {
        let vdims = vector.shape().dims();
        let mdims = matrix.shape().dims();
        if vdims.len() != 1 || mdims.len() != 2 {
            return Err(MatrixEngineError::OperandMismatch {
                reason: format!(
                    "expected vector [n] and matrix [n,m], got {} and {}",
                    vector.shape(),
                    matrix.shape()
                ),
            });
        }
        let shape = MatrixShape::new(mdims[0], mdims[1]);
        self.check_pattern(shape, dtype)?;
        if vdims[0] != mdims[0] {
            return Err(MatrixEngineError::OperandMismatch {
                reason: format!("vector length {} != matrix rows {}", vdims[0], mdims[0]),
            });
        }
        if acc.shape().dims() != [mdims[1]] {
            return Err(MatrixEngineError::OperandMismatch {
                reason: format!(
                    "accumulator {} does not match matrix cols {}",
                    acc.shape(),
                    mdims[1]
                ),
            });
        }
        let pattern = find_pattern(shape, dtype).expect("checked");
        self.cycles += pattern.cycles();

        // Outer-product accumulation, element values quantised through the
        // machine type on load and the accumulator kept at the wider
        // accumulate precision (f32 here), as on hardware.
        let mut out = acc.clone();
        for r in 0..shape.rows {
            let vq = dtype.quantize(vector.data()[r]);
            for c in 0..shape.cols {
                let mq = dtype.quantize(matrix.data()[r * shape.cols + c]);
                out.data_mut()[c] += vq * mq;
            }
        }
        Ok(out)
    }

    /// Multiplies an arbitrary `[m, k] x [k, n]` matrix pair by tiling it
    /// over VMM macro-ops — the software-visible GEMM built from VMM.
    ///
    /// # Errors
    ///
    /// Propagates pattern and operand errors from [`MatrixEngine::vmm`].
    pub fn gemm(
        &mut self,
        a: &Tensor,
        b: &Tensor,
        dtype: DataType,
    ) -> Result<Tensor, MatrixEngineError> {
        let (ad, bd) = (a.shape().dims(), b.shape().dims());
        if ad.len() != 2 || bd.len() != 2 || ad[1] != bd[0] {
            return Err(MatrixEngineError::OperandMismatch {
                reason: format!("gemm {} x {}", a.shape(), b.shape()),
            });
        }
        let (m, k, n) = (ad[0], ad[1], bd[1]);
        // Tile sizes: the largest catalog row count <= k remainder, fixed
        // 16-wide columns.
        let col_tile = 16usize;
        let mut out = Tensor::zeros(Shape::new(vec![m, n]));
        for row in 0..m {
            for c0 in (0..n).step_by(col_tile) {
                let cols = col_tile.min(n - c0);
                // Pad the column tile to 16 (hardware tile is fixed).
                let mut acc = Tensor::zeros(Shape::new(vec![col_tile]));
                let mut k0 = 0usize;
                while k0 < k {
                    let rows = Self::pick_row_tile(k - k0, dtype, self.fine_grained);
                    // Gather the operands for this tile (zero-padded).
                    let vec_tile = Tensor::from_fn(Shape::new(vec![rows]), |i| {
                        let kk = k0 + i[0];
                        if kk < k {
                            a.data()[row * k + kk]
                        } else {
                            0.0
                        }
                    });
                    let mat_tile = Tensor::from_fn(Shape::new(vec![rows, col_tile]), |i| {
                        let (kk, cc) = (k0 + i[0], c0 + i[1]);
                        if kk < k && cc < n {
                            b.data()[kk * n + cc]
                        } else {
                            0.0
                        }
                    });
                    acc = self.vmm(&vec_tile, &mat_tile, &acc, dtype)?;
                    k0 += rows;
                }
                for cc in 0..cols {
                    out.data_mut()[row * n + c0 + cc] = acc.data()[cc];
                }
            }
        }
        Ok(out)
    }

    /// Chooses the largest catalog row tile that fits the remaining `k`.
    fn pick_row_tile(remaining: usize, dtype: DataType, fine: bool) -> usize {
        if !fine {
            return 16;
        }
        let mut best = 4usize;
        for rows in [4usize, 8, 16, 32, 64, 128] {
            if find_pattern(MatrixShape::new(rows, 16), dtype).is_some() && rows <= remaining.max(4)
            {
                best = rows;
            }
        }
        best
    }

    /// Runs the full Fig. 4 sorting flow on a vector, ascending.
    ///
    /// Identical elements are ordered by original index (stable), exactly
    /// as the paper describes ("identical elements in the input vector are
    /// appropriately handled according to their original indices").
    ///
    /// # Errors
    ///
    /// [`MatrixEngineError::VectorTooLong`] beyond
    /// [`MatrixEngine::MAX_SORT_LEN`] elements.
    pub fn sort(&mut self, input: &Tensor) -> Result<SortArtifacts, MatrixEngineError> {
        let n = input.len();
        if n > Self::MAX_SORT_LEN {
            return Err(MatrixEngineError::VectorTooLong {
                len: n,
                max: Self::MAX_SORT_LEN,
            });
        }
        let v = input.data();

        // Step 1: relationship matrix. R[i][j] = 1 if element j must come
        // before element i (strictly smaller, or equal with lower index).
        let relationship = Tensor::from_fn(Shape::new(vec![n, n]), |idx| {
            let (i, j) = (idx[0], idx[1]);
            if i == j {
                0.0
            } else if v[j] < v[i] || (v[j] == v[i] && j < i) {
                1.0
            } else {
                0.0
            }
        });

        // Step 2: order vector = row sums = how many elements precede i =
        // i's rank in the sorted output.
        let mut order = vec![0usize; n];
        for (i, slot) in order.iter_mut().enumerate() {
            let mut s = 0usize;
            for j in 0..n {
                s += relationship.get(&[i, j]).expect("in range") as usize;
            }
            *slot = s;
        }

        // Step 3: transformation (permutation) matrix T with
        // T[src][rank(src)] = 1, so that v × T lands each element at its
        // rank position.
        let transformation = Tensor::from_fn(Shape::new(vec![n, n]), |idx| {
            let (row, col) = (idx[0], idx[1]);
            if order[row] == col {
                1.0
            } else {
                0.0
            }
        });

        // Step 4: one VMM against the transformation matrix. Use the plain
        // matmul path (sort vectors are small); charge matrix cycles.
        let row_vec = input.reshape(Shape::new(vec![1, n])).expect("same len");
        let sorted2d = row_vec
            .matmul(&transformation)
            .expect("shapes agree by construction");
        let sorted = sorted2d.reshape(Shape::new(vec![n])).expect("same len");
        self.cycles += (n as u64).div_ceil(16).max(1) * 3;

        Ok(SortArtifacts {
            relationship,
            order,
            transformation,
            sorted,
        })
    }

    /// Top-K selection via the sorting facility: returns the `k` largest
    /// values, descending.
    ///
    /// # Errors
    ///
    /// As for [`MatrixEngine::sort`].
    pub fn top_k(&mut self, input: &Tensor, k: usize) -> Result<Vec<f32>, MatrixEngineError> {
        let art = self.sort(input)?;
        let data = art.sorted.data();
        Ok(data.iter().rev().take(k).copied().collect())
    }
}

impl Default for MatrixEngine {
    fn default() -> Self {
        MatrixEngine::new(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec())
    }

    #[test]
    fn vmm_matches_reference_matmul_fp32() {
        let mut eng = MatrixEngine::default();
        let v = Tensor::from_fn(Shape::new(vec![16]), |i| i[0] as f32 * 0.5 - 3.0);
        let m = Tensor::from_fn(Shape::new(vec![16, 16]), |i| {
            ((i[0] * 16 + i[1]) % 7) as f32 - 3.0
        });
        let acc = Tensor::zeros(Shape::new(vec![16]));
        let got = eng.vmm(&v, &m, &acc, DataType::Fp32).unwrap();
        let reference = v
            .reshape(Shape::new(vec![1, 16]))
            .unwrap()
            .matmul(&m)
            .unwrap();
        assert!(
            got.max_abs_diff(&reference.reshape(Shape::new(vec![16])).unwrap())
                .unwrap()
                < 1e-4
        );
        assert!(eng.cycles() >= 1);
    }

    #[test]
    fn vmm_accumulates_into_acc() {
        let mut eng = MatrixEngine::default();
        let v = vec_t(&[1.0; 4]);
        let m = Tensor::full(Shape::new(vec![4, 16]), 1.0);
        let acc = Tensor::full(Shape::new(vec![16]), 10.0);
        let out = eng.vmm(&v, &m, &acc, DataType::Fp32).unwrap();
        assert!(out.data().iter().all(|&x| x == 14.0));
    }

    #[test]
    fn vmm_rejects_mismatched_operands() {
        let mut eng = MatrixEngine::default();
        let v = vec_t(&[1.0; 8]);
        let m = Tensor::zeros(Shape::new(vec![4, 16]));
        let acc = Tensor::zeros(Shape::new(vec![16]));
        assert!(matches!(
            eng.vmm(&v, &m, &acc, DataType::Fp32),
            Err(MatrixEngineError::OperandMismatch { .. })
        ));
        let bad_acc = Tensor::zeros(Shape::new(vec![8]));
        let v4 = vec_t(&[1.0; 4]);
        assert!(eng.vmm(&v4, &m, &bad_acc, DataType::Fp32).is_err());
    }

    #[test]
    fn vmm_rejects_uncataloged_pattern() {
        let mut eng = MatrixEngine::default();
        let v = vec_t(&[1.0; 5]);
        let m = Tensor::zeros(Shape::new(vec![5, 16]));
        let acc = Tensor::zeros(Shape::new(vec![16]));
        assert!(matches!(
            eng.vmm(&v, &m, &acc, DataType::Fp32),
            Err(MatrixEngineError::UnsupportedPattern { .. })
        ));
    }

    #[test]
    fn coarse_engine_rejects_tall_skinny() {
        let eng = MatrixEngine::new(false);
        assert!(matches!(
            eng.check_pattern(MatrixShape::new(4, 16), DataType::Fp32),
            Err(MatrixEngineError::FeatureDisabled { .. })
        ));
        eng.check_pattern(MatrixShape::new(16, 16), DataType::Fp32)
            .unwrap();
    }

    #[test]
    fn vmm_quantises_through_dtype() {
        let mut eng = MatrixEngine::default();
        // A value below BF16 resolution near 1.0 vanishes.
        let v = vec_t(&[1.0 + 1.0 / 512.0, 0.0, 0.0, 0.0]);
        let mut m = Tensor::zeros(Shape::new(vec![4, 16]));
        m.set(&[0, 0], 1.0).unwrap();
        let acc = Tensor::zeros(Shape::new(vec![16]));
        let out = eng.vmm(&v, &m, &acc, DataType::Bf16).unwrap();
        assert_eq!(out.data()[0], 1.0);
        let out32 = eng.vmm(&v, &m, &acc, DataType::Fp32).unwrap();
        assert!(out32.data()[0] > 1.0);
    }

    #[test]
    fn gemm_matches_reference_for_odd_shapes() {
        let mut eng = MatrixEngine::default();
        // Tall-and-skinny: 3 x 21 times 21 x 5.
        let a = Tensor::from_fn(Shape::new(vec![3, 21]), |i| {
            ((i[0] * 21 + i[1]) % 11) as f32 * 0.25 - 1.0
        });
        let b = Tensor::from_fn(Shape::new(vec![21, 5]), |i| {
            ((i[0] * 5 + i[1]) % 13) as f32 * 0.125 - 0.5
        });
        let got = eng.gemm(&a, &b, DataType::Fp32).unwrap();
        let want = a.matmul(&b).unwrap();
        assert!(got.max_abs_diff(&want).unwrap() < 1e-3);
    }

    #[test]
    fn gemm_rejects_mismatch() {
        let mut eng = MatrixEngine::default();
        let a = Tensor::zeros(Shape::new(vec![2, 3]));
        let b = Tensor::zeros(Shape::new(vec![4, 2]));
        assert!(eng.gemm(&a, &b, DataType::Fp32).is_err());
    }

    #[test]
    fn sort_produces_ascending_order() {
        let mut eng = MatrixEngine::default();
        let input = vec_t(&[3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.0, 3.5]);
        let art = eng.sort(&input).unwrap();
        let mut want = input.data().to_vec();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(art.sorted.data(), want.as_slice());
    }

    #[test]
    fn sort_handles_duplicates_stably() {
        let mut eng = MatrixEngine::default();
        let input = vec_t(&[2.0, 2.0, 1.0, 2.0]);
        let art = eng.sort(&input).unwrap();
        assert_eq!(art.sorted.data(), &[1.0, 2.0, 2.0, 2.0]);
        // Ranks of the three 2.0s follow original indices: 1, 2, 3.
        assert_eq!(art.order, vec![1, 2, 0, 3]);
    }

    #[test]
    fn sort_artifacts_are_consistent() {
        let mut eng = MatrixEngine::default();
        let input = vec_t(&[0.5, -1.0, 2.0]);
        let art = eng.sort(&input).unwrap();
        // Transformation is a permutation matrix: one 1 per row and column.
        for r in 0..3 {
            let row_sum: f32 = (0..3)
                .map(|c| art.transformation.get(&[r, c]).unwrap())
                .sum();
            assert_eq!(row_sum, 1.0);
            let col_sum: f32 = (0..3)
                .map(|c| art.transformation.get(&[c, r]).unwrap())
                .sum();
            assert_eq!(col_sum, 1.0);
        }
        // Relationship matrix diag is zero.
        for i in 0..3 {
            assert_eq!(art.relationship.get(&[i, i]).unwrap(), 0.0);
        }
    }

    #[test]
    fn sort_rejects_oversized_vector() {
        let mut eng = MatrixEngine::default();
        let input = Tensor::zeros(Shape::new(vec![33]));
        assert!(matches!(
            eng.sort(&input),
            Err(MatrixEngineError::VectorTooLong { len: 33, max: 32 })
        ));
    }

    #[test]
    fn top_k_returns_largest_descending() {
        let mut eng = MatrixEngine::default();
        let input = vec_t(&[0.3, 0.9, 0.1, 0.7, 0.5]);
        let top = eng.top_k(&input, 3).unwrap();
        assert_eq!(top, vec![0.9, 0.7, 0.5]);
        // k larger than n clamps.
        let all = eng.top_k(&input, 10).unwrap();
        assert_eq!(all.len(), 5);
    }
}
