//! The synchronisation engine.
//!
//! §IV-D: each processing group integrates a dedicated synchronisation
//! engine supporting 1-to-1, 1-to-N, N-to-1, and N-to-M patterns, inside
//! or across processing groups. In the simulator, synchronisation is
//! event-based: producers *signal* an event with a timestamp; consumers
//! *wait* and adopt `max(own time, event ready time)`. The engine tracks
//! arrival counts so that N-to-1 and N-to-M barriers release only when
//! every producer has arrived.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// The synchronisation patterns of §IV-D.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncPattern {
    /// One producer releases one consumer.
    OneToOne,
    /// One producer releases `n` consumers.
    OneToN {
        /// Consumer count.
        consumers: usize,
    },
    /// `n` producers release one consumer (barrier-in).
    NToOne {
        /// Producer count.
        producers: usize,
    },
    /// `n` producers release `m` consumers (full barrier).
    NToM {
        /// Producer count.
        producers: usize,
        /// Consumer count.
        consumers: usize,
    },
}

impl SyncPattern {
    /// Producers that must signal before the event is ready.
    pub fn required_signals(self) -> usize {
        match self {
            SyncPattern::OneToOne | SyncPattern::OneToN { .. } => 1,
            SyncPattern::NToOne { producers } | SyncPattern::NToM { producers, .. } => producers,
        }
    }

    /// Consumers allowed to wait on the event.
    pub fn allowed_waiters(self) -> usize {
        match self {
            SyncPattern::OneToOne | SyncPattern::NToOne { .. } => 1,
            SyncPattern::OneToN { consumers } | SyncPattern::NToM { consumers, .. } => consumers,
        }
    }
}

impl fmt::Display for SyncPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncPattern::OneToOne => write!(f, "1-to-1"),
            SyncPattern::OneToN { consumers } => write!(f, "1-to-{consumers}"),
            SyncPattern::NToOne { producers } => write!(f, "{producers}-to-1"),
            SyncPattern::NToM {
                producers,
                consumers,
            } => write!(f, "{producers}-to-{consumers}"),
        }
    }
}

/// Errors from the synchronisation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SyncError {
    /// An event id was signalled/waited without being registered.
    UnknownEvent {
        /// The event id.
        event: u32,
    },
    /// More producers signalled than the pattern declares.
    TooManySignals {
        /// The event id.
        event: u32,
        /// Declared producer count.
        expected: usize,
    },
    /// More consumers waited than the pattern declares.
    TooManyWaiters {
        /// The event id.
        event: u32,
        /// Declared consumer count.
        expected: usize,
    },
    /// The chip only supports 1-to-1 sync (DTU 1.0 ablation) and a richer
    /// pattern was registered.
    PatternUnsupported {
        /// The rejected pattern.
        pattern: String,
    },
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::UnknownEvent { event } => write!(f, "unknown sync event {event}"),
            SyncError::TooManySignals { event, expected } => {
                write!(f, "event {event}: more than {expected} signals")
            }
            SyncError::TooManyWaiters { event, expected } => {
                write!(f, "event {event}: more than {expected} waiters")
            }
            SyncError::PatternUnsupported { pattern } => {
                write!(f, "sync pattern {pattern} not supported on this chip")
            }
        }
    }
}

impl Error for SyncError {}

#[derive(Debug, Clone)]
struct EventState {
    pattern: SyncPattern,
    signals: usize,
    waiters: usize,
    /// The latest signal timestamp: consumers are released at this time.
    ready_at_ns: f64,
}

/// One synchronisation engine (typically one per processing group, but
/// events are visible chip-wide, matching "inside or across processing
/// groups").
#[derive(Debug, Clone, Default)]
pub struct SyncEngine {
    flexible: bool,
    events: BTreeMap<u32, EventState>,
    /// Total sync operations processed, for reporting.
    ops: u64,
}

impl SyncEngine {
    /// Creates a sync engine; `flexible` enables the 1-to-N / N-to-1 /
    /// N-to-M patterns (DTU 2.0).
    pub fn new(flexible: bool) -> Self {
        SyncEngine {
            flexible,
            events: BTreeMap::new(),
            ops: 0,
        }
    }

    /// Registers an event with its pattern.
    ///
    /// # Errors
    ///
    /// [`SyncError::PatternUnsupported`] for non-1-to-1 patterns on
    /// inflexible chips.
    pub fn register(&mut self, event: u32, pattern: SyncPattern) -> Result<(), SyncError> {
        if !self.flexible && pattern != SyncPattern::OneToOne {
            return Err(SyncError::PatternUnsupported {
                pattern: pattern.to_string(),
            });
        }
        self.events.insert(
            event,
            EventState {
                pattern,
                signals: 0,
                waiters: 0,
                ready_at_ns: 0.0,
            },
        );
        Ok(())
    }

    /// A producer signals `event` at time `now_ns`.
    ///
    /// # Errors
    ///
    /// [`SyncError::UnknownEvent`] / [`SyncError::TooManySignals`].
    pub fn signal(&mut self, event: u32, now_ns: f64) -> Result<(), SyncError> {
        let st = self
            .events
            .get_mut(&event)
            .ok_or(SyncError::UnknownEvent { event })?;
        let need = st.pattern.required_signals();
        if st.signals >= need {
            return Err(SyncError::TooManySignals {
                event,
                expected: need,
            });
        }
        st.signals += 1;
        st.ready_at_ns = st.ready_at_ns.max(now_ns);
        self.ops += 1;
        Ok(())
    }

    /// Whether all required producers have arrived.
    ///
    /// # Errors
    ///
    /// [`SyncError::UnknownEvent`].
    pub fn is_ready(&self, event: u32) -> Result<bool, SyncError> {
        let st = self
            .events
            .get(&event)
            .ok_or(SyncError::UnknownEvent { event })?;
        Ok(st.signals >= st.pattern.required_signals())
    }

    /// A consumer at `now_ns` waits on `event`. Returns the release time
    /// (`max(now, ready)`) if the event is ready, or `None` if the
    /// consumer must block (the caller re-polls after advancing others).
    ///
    /// # Errors
    ///
    /// [`SyncError::UnknownEvent`] / [`SyncError::TooManyWaiters`].
    pub fn wait(&mut self, event: u32, now_ns: f64) -> Result<Option<f64>, SyncError> {
        let ready = self.is_ready(event)?;
        let st = self.events.get_mut(&event).expect("checked");
        if !ready {
            return Ok(None);
        }
        let allowed = st.pattern.allowed_waiters();
        if st.waiters >= allowed {
            return Err(SyncError::TooManyWaiters {
                event,
                expected: allowed,
            });
        }
        st.waiters += 1;
        self.ops += 1;
        Ok(Some(st.ready_at_ns.max(now_ns)))
    }

    /// Sync operations processed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Registered but not-yet-ready events (for deadlock diagnostics).
    pub fn pending_events(&self) -> Vec<u32> {
        self.events
            .iter()
            .filter(|(_, st)| st.signals < st.pattern.required_signals())
            .map(|(&e, _)| e)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_to_one_releases_at_signal_time() {
        let mut s = SyncEngine::new(true);
        s.register(1, SyncPattern::OneToOne).unwrap();
        assert_eq!(s.wait(1, 5.0).unwrap(), None);
        s.signal(1, 10.0).unwrap();
        assert_eq!(s.wait(1, 5.0).unwrap(), Some(10.0));
    }

    #[test]
    fn late_waiter_keeps_own_time() {
        let mut s = SyncEngine::new(true);
        s.register(1, SyncPattern::OneToOne).unwrap();
        s.signal(1, 10.0).unwrap();
        assert_eq!(s.wait(1, 30.0).unwrap(), Some(30.0));
    }

    #[test]
    fn n_to_one_needs_all_producers() {
        let mut s = SyncEngine::new(true);
        s.register(7, SyncPattern::NToOne { producers: 3 }).unwrap();
        s.signal(7, 1.0).unwrap();
        s.signal(7, 9.0).unwrap();
        assert_eq!(s.wait(7, 0.0).unwrap(), None);
        s.signal(7, 4.0).unwrap();
        // Released at the LATEST producer time.
        assert_eq!(s.wait(7, 0.0).unwrap(), Some(9.0));
    }

    #[test]
    fn one_to_n_releases_many() {
        let mut s = SyncEngine::new(true);
        s.register(2, SyncPattern::OneToN { consumers: 3 }).unwrap();
        s.signal(2, 5.0).unwrap();
        for _ in 0..3 {
            assert!(s.wait(2, 1.0).unwrap().is_some());
        }
        assert!(matches!(
            s.wait(2, 1.0),
            Err(SyncError::TooManyWaiters { .. })
        ));
    }

    #[test]
    fn n_to_m_full_barrier() {
        let mut s = SyncEngine::new(true);
        s.register(
            3,
            SyncPattern::NToM {
                producers: 2,
                consumers: 2,
            },
        )
        .unwrap();
        s.signal(3, 2.0).unwrap();
        assert_eq!(s.wait(3, 0.0).unwrap(), None);
        s.signal(3, 8.0).unwrap();
        assert_eq!(s.wait(3, 0.0).unwrap(), Some(8.0));
        assert_eq!(s.wait(3, 9.5).unwrap(), Some(9.5));
    }

    #[test]
    fn extra_signal_rejected() {
        let mut s = SyncEngine::new(true);
        s.register(1, SyncPattern::OneToOne).unwrap();
        s.signal(1, 1.0).unwrap();
        assert!(matches!(
            s.signal(1, 2.0),
            Err(SyncError::TooManySignals { .. })
        ));
    }

    #[test]
    fn unknown_event_rejected() {
        let mut s = SyncEngine::new(true);
        assert!(matches!(
            s.signal(99, 0.0),
            Err(SyncError::UnknownEvent { event: 99 })
        ));
        assert!(s.wait(99, 0.0).is_err());
        assert!(s.is_ready(99).is_err());
    }

    #[test]
    fn inflexible_engine_rejects_rich_patterns() {
        let mut s = SyncEngine::new(false);
        s.register(1, SyncPattern::OneToOne).unwrap();
        assert!(matches!(
            s.register(2, SyncPattern::NToOne { producers: 2 }),
            Err(SyncError::PatternUnsupported { .. })
        ));
    }

    #[test]
    fn pending_events_lists_unready() {
        let mut s = SyncEngine::new(true);
        s.register(1, SyncPattern::OneToOne).unwrap();
        s.register(2, SyncPattern::NToOne { producers: 2 }).unwrap();
        s.signal(2, 1.0).unwrap();
        assert_eq!(s.pending_events(), vec![1, 2]);
        s.signal(1, 1.0).unwrap();
        assert_eq!(s.pending_events(), vec![2]);
    }

    #[test]
    fn pattern_display_and_counts() {
        assert_eq!(SyncPattern::OneToOne.to_string(), "1-to-1");
        assert_eq!(
            SyncPattern::NToM {
                producers: 4,
                consumers: 2
            }
            .to_string(),
            "4-to-2"
        );
        assert_eq!(SyncPattern::OneToN { consumers: 5 }.allowed_waiters(), 5);
        assert_eq!(SyncPattern::NToOne { producers: 5 }.required_signals(), 5);
    }
}
