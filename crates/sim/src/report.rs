//! Run reports: the latency / energy / counter bundle a simulation yields.

use dtu_power::EnergyAccount;
use dtu_telemetry::{Counter, CounterSet};
use std::fmt;

/// Activity counters for the function engines, aggregated chip-wide.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineCounters {
    /// Kernel launches executed.
    pub kernel_launches: u64,
    /// Multiply-accumulate operations retired.
    pub macs: u64,
    /// Non-MAC vector ALU operations.
    pub vector_ops: u64,
    /// SFU transcendental evaluations.
    pub sfu_ops: u64,
    /// DMA transfers executed.
    pub dma_transfers: u64,
    /// Bytes that crossed the interconnect.
    pub dma_wire_bytes: u64,
    /// DMA configuration time, ns.
    pub dma_config_ns: f64,
    /// Instruction-cache hits.
    pub icache_hits: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Nanoseconds cores spent stalled on kernel-code loads.
    pub code_load_stall_ns: f64,
    /// Nanoseconds cores spent busy computing.
    pub compute_busy_ns: f64,
    /// Nanoseconds cores spent waiting on data (L2/L3).
    pub memory_stall_ns: f64,
    /// Nanoseconds cores spent waiting on sync events.
    pub sync_wait_ns: f64,
    /// Nanoseconds of LPME-inserted power-throttle stalls.
    pub power_stall_ns: f64,
    /// Sync operations processed.
    pub sync_ops: u64,
    /// Fault events injected during the run (0 without a fault plan).
    pub faults_injected: u64,
    /// Nanoseconds of stall added by injected faults.
    pub fault_stall_ns: f64,
}

impl EngineCounters {
    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &EngineCounters) {
        self.kernel_launches += other.kernel_launches;
        self.macs += other.macs;
        self.vector_ops += other.vector_ops;
        self.sfu_ops += other.sfu_ops;
        self.dma_transfers += other.dma_transfers;
        self.dma_wire_bytes += other.dma_wire_bytes;
        self.dma_config_ns += other.dma_config_ns;
        self.icache_hits += other.icache_hits;
        self.icache_misses += other.icache_misses;
        self.code_load_stall_ns += other.code_load_stall_ns;
        self.compute_busy_ns += other.compute_busy_ns;
        self.memory_stall_ns += other.memory_stall_ns;
        self.sync_wait_ns += other.sync_wait_ns;
        self.power_stall_ns += other.power_stall_ns;
        self.sync_ops += other.sync_ops;
        self.faults_injected += other.faults_injected;
        self.fault_stall_ns += other.fault_stall_ns;
    }

    /// Converts the counters into the telemetry registry's typed
    /// [`CounterSet`] (zero-valued counters are omitted).
    pub fn to_counter_set(&self) -> CounterSet {
        let mut set = CounterSet::new();
        set.add(Counter::KernelLaunches, self.kernel_launches as f64);
        set.add(Counter::Macs, self.macs as f64);
        set.add(Counter::VectorOps, self.vector_ops as f64);
        set.add(Counter::SfuOps, self.sfu_ops as f64);
        set.add(Counter::DmaTransfers, self.dma_transfers as f64);
        set.add(Counter::DmaWireBytes, self.dma_wire_bytes as f64);
        set.add(Counter::DmaConfigNs, self.dma_config_ns);
        set.add(Counter::IcacheHits, self.icache_hits as f64);
        set.add(Counter::IcacheMisses, self.icache_misses as f64);
        set.add(Counter::CodeLoadStallNs, self.code_load_stall_ns);
        set.add(Counter::ComputeBusyNs, self.compute_busy_ns);
        set.add(Counter::MemoryStallNs, self.memory_stall_ns);
        set.add(Counter::SyncWaitNs, self.sync_wait_ns);
        set.add(Counter::PowerStallNs, self.power_stall_ns);
        set.add(Counter::SyncOps, self.sync_ops as f64);
        set.add(Counter::FaultsInjected, self.faults_injected as f64);
        set.add(Counter::FaultStallNs, self.fault_stall_ns);
        set
    }

    /// Instruction-cache hit rate (0 when no fetches happened).
    pub fn icache_hit_rate(&self) -> f64 {
        let total = self.icache_hits + self.icache_misses;
        if total == 0 {
            0.0
        } else {
            self.icache_hits as f64 / total as f64
        }
    }
}

/// The result of running one [`crate::Program`] on a [`crate::Chip`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// End-to-end latency, nanoseconds.
    pub latency_ns: f64,
    /// Integrated energy.
    pub energy: EnergyAccount,
    /// Aggregated engine counters.
    pub counters: EngineCounters,
    /// Mean core frequency over the run, MHz (reflects DVFS activity).
    pub mean_freq_mhz: f64,
    /// Name of the program that ran.
    pub program: String,
}

impl RunReport {
    /// Latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.latency_ns / 1e6
    }

    /// Total energy in joules.
    pub fn energy_joules(&self) -> f64 {
        self.energy.total_joules()
    }

    /// Average board power over the run, watts.
    pub fn average_watts(&self) -> f64 {
        self.energy.average_watts(self.latency_ns)
    }

    /// Achieved arithmetic throughput in TFLOPS (2 FLOPs per MAC).
    pub fn achieved_tflops(&self) -> f64 {
        if self.latency_ns <= 0.0 {
            0.0
        } else {
            (2 * self.counters.macs + self.counters.vector_ops + self.counters.sfu_ops) as f64
                / self.latency_ns
                / 1e3
        }
    }

    /// Samples-per-joule efficiency proxy: 1 / (latency × power).
    pub fn energy_efficiency(&self) -> f64 {
        let j = self.energy_joules();
        if j <= 0.0 {
            0.0
        } else {
            1.0 / j
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3} ms, {:.3} J, {:.1} W avg, {:.1} TFLOPS, icache {:.0}%",
            self.program,
            self.latency_ms(),
            self.energy_joules(),
            self.average_watts(),
            self.achieved_tflops(),
            self.counters.icache_hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        let mut energy = EnergyAccount::new();
        energy.dynamic_pj = 1e12; // 1 J
        RunReport {
            latency_ns: 1e6, // 1 ms
            energy,
            counters: EngineCounters {
                macs: 1_000_000,
                icache_hits: 9,
                icache_misses: 1,
                ..Default::default()
            },
            mean_freq_mhz: 1_400.0,
            program: "test".into(),
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert_eq!(r.latency_ms(), 1.0);
        assert_eq!(r.energy_joules(), 1.0);
        assert_eq!(r.average_watts(), 1000.0);
        assert!((r.achieved_tflops() - 0.002).abs() < 1e-9);
        assert!((r.counters.icache_hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(r.energy_efficiency(), 1.0);
    }

    #[test]
    fn counters_merge() {
        let mut a = EngineCounters {
            macs: 10,
            dma_wire_bytes: 100,
            ..Default::default()
        };
        let b = EngineCounters {
            macs: 5,
            sync_ops: 2,
            compute_busy_ns: 7.0,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.macs, 15);
        assert_eq!(a.sync_ops, 2);
        assert_eq!(a.compute_busy_ns, 7.0);
        assert_eq!(a.dma_wire_bytes, 100);
    }

    #[test]
    fn counter_set_conversion_drops_zeros() {
        let c = EngineCounters {
            macs: 7,
            compute_busy_ns: 3.5,
            ..Default::default()
        };
        let set = c.to_counter_set();
        assert_eq!(set.get(Counter::Macs), 7.0);
        assert_eq!(set.get(Counter::ComputeBusyNs), 3.5);
        assert_eq!(set.len(), 2, "zero counters stay out of the set");
    }

    #[test]
    fn hit_rate_with_no_fetches_is_zero() {
        assert_eq!(EngineCounters::default().icache_hit_rate(), 0.0);
    }

    #[test]
    fn display_contains_key_numbers() {
        let s = report().to_string();
        assert!(s.contains("1.000 ms"));
        assert!(s.contains("test"));
    }
}
