//! JSON serialization of lowered [`Program`]s for the on-disk
//! compiled-session cache.
//!
//! `dtu-harness` persists compiled programs under `target/dtu-cache/` so
//! repeated sweeps skip recompilation across *processes*, not just
//! within one. The format is a small, explicit JSON schema covering
//! exactly what the graph compiler emits today: descriptor-only kernel
//! launches, dense/bitmap DMA copies (with repeat, broadcast, and
//! known-zero-fraction sparse estimates), code prefetches, and sync
//! events. Anything outside that set — in particular DMA descriptors
//! carrying a layout [`TransformOp`] other than `Identity` — is
//! rejected at serialization time rather than silently dropped, so a
//! cache round-trip can never change what a program does.
//!
//! The parser is a hand-written recursive-descent JSON reader (the
//! workspace deliberately has no serde): unknown fields are ignored
//! for forward compatibility, and *every* malformed input — truncated
//! file, bad escape, wrong type, missing field — surfaces as
//! [`ProgramIoError::Parse`], never a panic, which is what lets the
//! cache treat a corrupt artifact as a plain miss.
//!
//! [`TransformOp`]: dtu_tensor::TransformOp

use crate::dma::{DmaDescriptor, DmaPath, MemLevel};
use crate::program::{Command, GroupId, Program, Stream};
use crate::sync::SyncPattern;
use dtu_isa::{DataType, KernelDescriptor, KernelId, OpClass};
use dtu_telemetry::json::{escape, JsonObject};
use dtu_tensor::{SparseFormat, TransformOp};
use std::error::Error;
use std::fmt;

/// Errors from program serialization or parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramIoError {
    /// The program uses a feature the JSON schema does not cover.
    Unsupported(String),
    /// The JSON input is malformed or does not describe a program.
    Parse(String),
}

impl fmt::Display for ProgramIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramIoError::Unsupported(what) => {
                write!(f, "program not serializable: {what}")
            }
            ProgramIoError::Parse(why) => write!(f, "program JSON invalid: {why}"),
        }
    }
}

impl Error for ProgramIoError {}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn mem_level_name(level: MemLevel) -> &'static str {
    match level {
        MemLevel::L1 => "l1",
        MemLevel::L2 => "l2",
        MemLevel::L3 => "l3",
        MemLevel::Host => "host",
    }
}

fn op_class_name(class: OpClass) -> &'static str {
    match class {
        OpClass::MatrixDense => "matrix_dense",
        OpClass::Elementwise => "elementwise",
        OpClass::Activation => "activation",
        OpClass::Reduction => "reduction",
        OpClass::Movement => "movement",
        OpClass::Gather => "gather",
    }
}

fn dtype_name(dtype: DataType) -> &'static str {
    match dtype {
        DataType::Fp32 => "fp32",
        DataType::Tf32 => "tf32",
        DataType::Fp16 => "fp16",
        DataType::Bf16 => "bf16",
        DataType::Int32 => "int32",
        DataType::Int16 => "int16",
        DataType::Int8 => "int8",
    }
}

fn sync_pattern_json(pattern: SyncPattern) -> String {
    let (kind, producers, consumers) = match pattern {
        SyncPattern::OneToOne => ("one_to_one", 1, 1),
        SyncPattern::OneToN { consumers } => ("one_to_n", 1, consumers),
        SyncPattern::NToOne { producers } => ("n_to_one", producers, 1),
        SyncPattern::NToM {
            producers,
            consumers,
        } => ("n_to_m", producers, consumers),
    };
    JsonObject::new()
        .string("kind", kind)
        .raw("producers", &producers.to_string())
        .raw("consumers", &consumers.to_string())
        .build()
}

fn command_json(cmd: &Command) -> Result<String, ProgramIoError> {
    let json = match cmd {
        Command::Launch { kernel, descriptor } => JsonObject::new()
            .string("op", "launch")
            .raw("kernel", &kernel.0.to_string())
            .string("name", &descriptor.name)
            .string("class", op_class_name(descriptor.class))
            .string("dtype", dtype_name(descriptor.dtype))
            .raw("macs", &descriptor.macs.to_string())
            .raw("vector_ops", &descriptor.vector_ops.to_string())
            .raw("sfu_ops", &descriptor.sfu_ops.to_string())
            .raw("l1_bytes", &descriptor.l1_bytes.to_string())
            .raw("l2_bytes", &descriptor.l2_bytes.to_string())
            .raw("l3_bytes", &descriptor.l3_bytes.to_string())
            .raw("code_bytes", &descriptor.code_bytes.to_string())
            .raw("narrow_dim", &descriptor.narrow_dim.to_string())
            .build(),
        Command::Dma {
            descriptor,
            overlapped,
        } => {
            if descriptor.transform != TransformOp::Identity {
                return Err(ProgramIoError::Unsupported(format!(
                    "DMA layout transform {:?} (only Identity copies are cacheable)",
                    descriptor.transform
                )));
            }
            let sparse = match descriptor.sparse {
                SparseFormat::Dense => "dense",
                SparseFormat::BitmapBlock => "bitmap_block",
            };
            JsonObject::new()
                .string("op", "dma")
                .string("src", mem_level_name(descriptor.path.src))
                .string("dst", mem_level_name(descriptor.path.dst))
                .raw("bytes", &descriptor.bytes.to_string())
                .string("sparse", sparse)
                .raw("broadcast", &descriptor.broadcast.to_string())
                .raw("repeat", &descriptor.repeat.to_string())
                .num("zero_fraction", descriptor.zero_fraction)
                .raw("overlapped", if *overlapped { "true" } else { "false" })
                .build()
        }
        Command::Prefetch { kernel, code_bytes } => JsonObject::new()
            .string("op", "prefetch")
            .raw("kernel", &kernel.0.to_string())
            .raw("code_bytes", &code_bytes.to_string())
            .build(),
        Command::RegisterEvent { event, pattern } => JsonObject::new()
            .string("op", "register")
            .raw("event", &event.to_string())
            .raw("pattern", &sync_pattern_json(*pattern))
            .build(),
        Command::Signal { event } => JsonObject::new()
            .string("op", "signal")
            .raw("event", &event.to_string())
            .build(),
        Command::Wait { event } => JsonObject::new()
            .string("op", "wait")
            .raw("event", &event.to_string())
            .build(),
    };
    Ok(json)
}

/// Serializes a program into the cacheable JSON schema.
///
/// # Errors
///
/// [`ProgramIoError::Unsupported`] when the program carries constructs
/// the schema cannot represent losslessly (non-`Identity` DMA
/// transforms). The graph compiler never emits those today, but
/// hand-built programs can.
pub fn program_to_json(program: &Program) -> Result<String, ProgramIoError> {
    let mut streams = Vec::with_capacity(program.streams.len());
    for stream in &program.streams {
        let mut commands = Vec::with_capacity(stream.commands.len());
        for cmd in &stream.commands {
            commands.push(command_json(cmd)?);
        }
        streams.push(
            JsonObject::new()
                .raw("cluster", &stream.group.cluster.to_string())
                .raw("group", &stream.group.group.to_string())
                .raw("commands", &format!("[{}]", commands.join(",")))
                .build(),
        );
    }
    Ok(format!(
        "{{\"name\":\"{}\",\"streams\":[{}]}}",
        escape(&program.name),
        streams.join(",")
    ))
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers keep their raw token text so `u64`
/// quantities (MAC counts can exceed 2^53) never round-trip through
/// `f64`.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn get<'v>(&'v self, key: &str) -> Option<&'v Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn field<'v>(&'v self, key: &str) -> Result<&'v Value, ProgramIoError> {
        self.get(key)
            .ok_or_else(|| ProgramIoError::Parse(format!("missing field `{key}`")))
    }

    fn str_field<'v>(&'v self, key: &str) -> Result<&'v str, ProgramIoError> {
        match self.field(key)? {
            Value::Str(s) => Ok(s),
            other => Err(ProgramIoError::Parse(format!(
                "field `{key}` should be a string, got {other:?}"
            ))),
        }
    }

    fn u64_field(&self, key: &str) -> Result<u64, ProgramIoError> {
        match self.field(key)? {
            Value::Num(raw) => raw
                .parse::<u64>()
                .map_err(|_| ProgramIoError::Parse(format!("field `{key}`: `{raw}` is not a u64"))),
            other => Err(ProgramIoError::Parse(format!(
                "field `{key}` should be a number, got {other:?}"
            ))),
        }
    }

    fn usize_field(&self, key: &str) -> Result<usize, ProgramIoError> {
        let v = self.u64_field(key)?;
        usize::try_from(v)
            .map_err(|_| ProgramIoError::Parse(format!("field `{key}`: {v} overflows usize")))
    }

    fn f64_field(&self, key: &str) -> Result<f64, ProgramIoError> {
        match self.field(key)? {
            Value::Num(raw) => raw.parse::<f64>().map_err(|_| {
                ProgramIoError::Parse(format!("field `{key}`: `{raw}` is not a number"))
            }),
            other => Err(ProgramIoError::Parse(format!(
                "field `{key}` should be a number, got {other:?}"
            ))),
        }
    }

    fn bool_field(&self, key: &str) -> Result<bool, ProgramIoError> {
        match self.field(key)? {
            Value::Bool(b) => Ok(*b),
            other => Err(ProgramIoError::Parse(format!(
                "field `{key}` should be a bool, got {other:?}"
            ))),
        }
    }

    fn arr_field<'v>(&'v self, key: &str) -> Result<&'v [Value], ProgramIoError> {
        match self.field(key)? {
            Value::Arr(items) => Ok(items),
            other => Err(ProgramIoError::Parse(format!(
                "field `{key}` should be an array, got {other:?}"
            ))),
        }
    }
}

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

impl<'s> Parser<'s> {
    fn new(text: &'s str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, why: impl Into<String>) -> ProgramIoError {
        ProgramIoError::Parse(format!("{} at byte {}", why.into(), self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ProgramIoError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ProgramIoError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(format!("unexpected byte `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, ProgramIoError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, ProgramIoError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("empty number"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?;
        // Validate now so field accessors can trust the token shape.
        raw.parse::<f64>()
            .map_err(|_| self.err(format!("`{raw}` is not a number")))?;
        Ok(Value::Num(raw.to_string()))
    }

    fn parse_string(&mut self) -> Result<String, ProgramIoError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-UTF-8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("non-scalar \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume the longest run of unescaped bytes in one
                    // shot. Splitting on `"` / `\` is multi-byte safe:
                    // ASCII bytes never occur inside a UTF-8 sequence.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("non-UTF-8 string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ProgramIoError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, ProgramIoError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn mem_level_from(name: &str) -> Result<MemLevel, ProgramIoError> {
    match name {
        "l1" => Ok(MemLevel::L1),
        "l2" => Ok(MemLevel::L2),
        "l3" => Ok(MemLevel::L3),
        "host" => Ok(MemLevel::Host),
        other => Err(ProgramIoError::Parse(format!(
            "unknown memory level `{other}`"
        ))),
    }
}

fn op_class_from(name: &str) -> Result<OpClass, ProgramIoError> {
    match name {
        "matrix_dense" => Ok(OpClass::MatrixDense),
        "elementwise" => Ok(OpClass::Elementwise),
        "activation" => Ok(OpClass::Activation),
        "reduction" => Ok(OpClass::Reduction),
        "movement" => Ok(OpClass::Movement),
        "gather" => Ok(OpClass::Gather),
        other => Err(ProgramIoError::Parse(format!("unknown op class `{other}`"))),
    }
}

fn dtype_from(name: &str) -> Result<DataType, ProgramIoError> {
    match name {
        "fp32" => Ok(DataType::Fp32),
        "tf32" => Ok(DataType::Tf32),
        "fp16" => Ok(DataType::Fp16),
        "bf16" => Ok(DataType::Bf16),
        "int32" => Ok(DataType::Int32),
        "int16" => Ok(DataType::Int16),
        "int8" => Ok(DataType::Int8),
        other => Err(ProgramIoError::Parse(format!("unknown dtype `{other}`"))),
    }
}

fn sync_pattern_from(value: &Value) -> Result<SyncPattern, ProgramIoError> {
    let producers = value.usize_field("producers")?;
    let consumers = value.usize_field("consumers")?;
    match value.str_field("kind")? {
        "one_to_one" => Ok(SyncPattern::OneToOne),
        "one_to_n" => Ok(SyncPattern::OneToN { consumers }),
        "n_to_one" => Ok(SyncPattern::NToOne { producers }),
        "n_to_m" => Ok(SyncPattern::NToM {
            producers,
            consumers,
        }),
        other => Err(ProgramIoError::Parse(format!(
            "unknown sync kind `{other}`"
        ))),
    }
}

fn command_from(value: &Value) -> Result<Command, ProgramIoError> {
    match value.str_field("op")? {
        "launch" => Ok(Command::Launch {
            kernel: KernelId(value.u64_field("kernel")?),
            descriptor: KernelDescriptor {
                name: value.str_field("name")?.to_string(),
                class: op_class_from(value.str_field("class")?)?,
                dtype: dtype_from(value.str_field("dtype")?)?,
                macs: value.u64_field("macs")?,
                vector_ops: value.u64_field("vector_ops")?,
                sfu_ops: value.u64_field("sfu_ops")?,
                l1_bytes: value.u64_field("l1_bytes")?,
                l2_bytes: value.u64_field("l2_bytes")?,
                l3_bytes: value.u64_field("l3_bytes")?,
                code_bytes: value.u64_field("code_bytes")?,
                narrow_dim: value.u64_field("narrow_dim")?,
            },
        }),
        "dma" => {
            let sparse = match value.str_field("sparse")? {
                "dense" => SparseFormat::Dense,
                "bitmap_block" => SparseFormat::BitmapBlock,
                other => {
                    return Err(ProgramIoError::Parse(format!(
                        "unknown sparse format `{other}`"
                    )))
                }
            };
            Ok(Command::Dma {
                descriptor: DmaDescriptor {
                    path: DmaPath::new(
                        mem_level_from(value.str_field("src")?)?,
                        mem_level_from(value.str_field("dst")?)?,
                    ),
                    bytes: value.u64_field("bytes")?,
                    transform: TransformOp::Identity,
                    sparse,
                    broadcast: value.usize_field("broadcast")?,
                    repeat: value.usize_field("repeat")?,
                    zero_fraction: value.f64_field("zero_fraction")?,
                },
                overlapped: value.bool_field("overlapped")?,
            })
        }
        "prefetch" => Ok(Command::Prefetch {
            kernel: KernelId(value.u64_field("kernel")?),
            code_bytes: value.u64_field("code_bytes")?,
        }),
        "register" => {
            let event = value.u64_field("event")?;
            let event = u32::try_from(event)
                .map_err(|_| ProgramIoError::Parse(format!("event id {event} overflows u32")))?;
            Ok(Command::RegisterEvent {
                event,
                pattern: sync_pattern_from(value.field("pattern")?)?,
            })
        }
        "signal" | "wait" => {
            let event = value.u64_field("event")?;
            let event = u32::try_from(event)
                .map_err(|_| ProgramIoError::Parse(format!("event id {event} overflows u32")))?;
            if value.str_field("op")? == "signal" {
                Ok(Command::Signal { event })
            } else {
                Ok(Command::Wait { event })
            }
        }
        other => Err(ProgramIoError::Parse(format!(
            "unknown command op `{other}`"
        ))),
    }
}

/// Parses a program from the JSON produced by [`program_to_json`].
///
/// # Errors
///
/// [`ProgramIoError::Parse`] on any malformed input — this function
/// never panics on untrusted bytes, which is what lets the disk cache
/// degrade a corrupt artifact into a recompile.
pub fn program_from_json(text: &str) -> Result<Program, ProgramIoError> {
    let mut parser = Parser::new(text);
    let root = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing bytes after program"));
    }
    let mut program = Program::new(root.str_field("name")?);
    for stream_v in root.arr_field("streams")? {
        let group = GroupId::new(
            stream_v.usize_field("cluster")?,
            stream_v.usize_field("group")?,
        );
        let mut stream = Stream::new(group);
        for cmd_v in stream_v.arr_field("commands")? {
            stream.push(command_from(cmd_v)?);
        }
        program.add_stream(stream);
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        let mut p = Program::new("unit \"quoted\" ☃");
        let mut s0 = Stream::new(GroupId::new(0, 0));
        s0.push(Command::RegisterEvent {
            event: 7,
            pattern: SyncPattern::NToM {
                producers: 2,
                consumers: 3,
            },
        })
        .push(Command::Prefetch {
            kernel: KernelId(3),
            code_bytes: 4096,
        })
        .push(Command::Launch {
            kernel: KernelId(3),
            descriptor: KernelDescriptor {
                name: "conv+relu".into(),
                class: OpClass::MatrixDense,
                dtype: DataType::Fp16,
                // > 2^53: must survive without a float round-trip.
                macs: (1u64 << 53) + 1,
                vector_ops: 10,
                sfu_ops: 5,
                l1_bytes: 1,
                l2_bytes: 2,
                l3_bytes: 3,
                code_bytes: 4096,
                narrow_dim: 64,
            },
        })
        .push(Command::Dma {
            descriptor: DmaDescriptor {
                path: DmaPath::new(MemLevel::L3, MemLevel::L2),
                bytes: 65536,
                transform: TransformOp::Identity,
                sparse: SparseFormat::BitmapBlock,
                broadcast: 3,
                repeat: 8,
                zero_fraction: 0.71,
            },
            overlapped: true,
        })
        .push(Command::Signal { event: 7 });
        let mut s1 = Stream::new(GroupId::new(1, 2));
        s1.push(Command::Wait { event: 7 });
        p.add_stream(s0);
        p.add_stream(s1);
        p
    }

    #[test]
    fn round_trip_preserves_program_exactly() {
        let p = sample_program();
        let json = program_to_json(&p).unwrap();
        let back = program_from_json(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn serialization_is_deterministic() {
        let p = sample_program();
        assert_eq!(program_to_json(&p).unwrap(), program_to_json(&p).unwrap());
    }

    #[test]
    fn non_identity_transform_is_rejected() {
        let mut p = Program::new("bad");
        let mut s = Stream::new(GroupId::new(0, 0));
        let mut d = DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 64);
        d.transform = TransformOp::Concat { axis: 1 };
        s.push(Command::Dma {
            descriptor: d,
            overlapped: false,
        });
        p.add_stream(s);
        assert!(matches!(
            program_to_json(&p),
            Err(ProgramIoError::Unsupported(_))
        ));
    }

    #[test]
    fn truncated_json_is_a_parse_error_not_a_panic() {
        let json = program_to_json(&sample_program()).unwrap();
        for cut in [0, 1, json.len() / 3, json.len() / 2, json.len() - 1] {
            let truncated = &json[..cut];
            if std::str::from_utf8(truncated.as_bytes()).is_err() {
                continue;
            }
            assert!(
                program_from_json(truncated).is_err(),
                "cut at {cut} should fail to parse"
            );
        }
    }

    #[test]
    fn garbage_inputs_are_parse_errors() {
        for bad in [
            "",
            "null",
            "[]",
            "{\"name\":1,\"streams\":[]}",
            "{\"name\":\"x\"}",
            "{\"name\":\"x\",\"streams\":[{\"cluster\":0}]}",
            "{\"name\":\"x\",\"streams\":[]} trailing",
            "{\"name\":\"x\",\"streams\":[{\"cluster\":-1,\"group\":0,\"commands\":[]}]}",
            "{\"name\":\"x\",\"streams\":[{\"cluster\":0,\"group\":0,\"commands\":[{\"op\":\"zap\"}]}]}",
        ] {
            assert!(program_from_json(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let json = "{\"name\":\"x\",\"future\":42,\"streams\":[{\"cluster\":0,\"group\":0,\
                    \"commands\":[{\"op\":\"signal\",\"event\":1,\"extra\":null}]}]}";
        let p = program_from_json(json).unwrap();
        assert_eq!(p.total_commands(), 1);
    }
}
