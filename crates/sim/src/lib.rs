//! Functional + transaction-level timing simulator of the Enflame DTU 2.0
//! SoC (and its predecessor DTU 1.0, for the Fig. 12/14 comparisons).
//!
//! The simulator has two coupled layers:
//!
//! * a **functional layer** that really computes — the matrix engine's
//!   vector-matrix multiply and its Fig. 4 sorting facility, the SPU's
//!   LUT-plus-Taylor transcendentals, the vector engine, and a VLIW
//!   interpreter for small kernels;
//! * a **timing/energy layer** that advances a clock at *transaction*
//!   granularity — kernel launches, DMA bursts, synchronisation — and
//!   models L2 port contention, HBM bandwidth sharing, DMA configuration
//!   overheads (with the repeat mode of Fig. 6), instruction-cache misses,
//!   and the CPME/LPME power loops from `dtu-power`.
//!
//! The unit of execution is a [`Program`]: per-processing-group command
//! streams produced by `dtu-compiler`. [`Chip::run`] executes a program
//! and returns a [`RunReport`] with latency, energy, and counters.
//!
//! # Example
//!
//! ```
//! use dtu_sim::{Chip, ChipConfig};
//!
//! let chip = Chip::new(ChipConfig::dtu20());
//! assert_eq!(chip.config().total_cores(), 24);
//! assert_eq!(chip.config().groups_per_cluster, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chip;
mod config;
mod dma;
mod icache;
mod interp;
mod matrix_engine;
mod memory;
mod profile;
mod program;
mod program_io;
mod report;
mod spu;
mod sync;
mod timing;
mod vector_engine;

pub use chip::{Chip, SimError};
pub use config::{ChipConfig, FeatureSet};
pub use dma::{DmaDescriptor, DmaEngine, DmaError, DmaPath, MemLevel};
pub use icache::{FetchOutcome, InstructionCache};
pub use interp::{InterpError, InterpReport, Interpreter};
pub use matrix_engine::{MatrixEngine, MatrixEngineError, SortArtifacts};
pub use memory::{MemoryError, MemoryHierarchy, MemoryPool};
pub use profile::{Timeline, TraceEvent, TraceKind};
pub use program::{Command, GroupId, Program, Stream};
pub use program_io::{program_from_json, program_to_json, ProgramIoError};
pub use report::{EngineCounters, RunReport};
pub use spu::{Spu, SpuError};
pub use sync::{SyncEngine, SyncError, SyncPattern};
pub use timing::{
    AnalyticBackend, AnalyticTiming, InterpretedBackend, TimingBackend, CALIBRATION_VERSION,
};
pub use vector_engine::{VectorEngine, VECTOR_LANES_FP32};
