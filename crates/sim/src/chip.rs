//! The chip: processing groups, the stream scheduler, and the power loops.
//!
//! [`Chip::run`] executes a [`Program`] — one command stream per occupied
//! processing group — to completion. Streams advance concurrently in
//! simulated time and coordinate through the synchronisation engine;
//! kernel launches are charged compute / L2 / L3 time (overlapped, the
//! multiple-buffering assumption of §III "Data flow v.s. Computation");
//! DMA commands run on the group's DMA engine; the instruction cache adds
//! code-load stalls; and, when power management is enabled, per-group
//! LPMEs throttle or borrow budget while the DVFS governor retunes the
//! clock every kernel.

use crate::config::ChipConfig;
use crate::dma::{DmaEngine, DmaError};
use crate::icache::InstructionCache;
use crate::memory::MemoryHierarchy;
use crate::profile::Timeline;
use crate::program::{Command, GroupId, Program};
use crate::report::{EngineCounters, RunReport};
use crate::sync::{SyncEngine, SyncError};
use dtu_faults::{FaultError, FaultSession};
use dtu_isa::KernelDescriptor;
use dtu_power::{
    Cpme, DvfsGovernor, EnergyAccount, EnergyModel, Lpme, LpmeAction, PowerConfig, UnitId,
    WindowObservation,
};
use dtu_telemetry::{
    Counter, CounterSet, CounterSnapshot, Layer, NullRecorder, Recorder, Span, SpanKind,
    TraceBuffer,
};
use std::error::Error;
use std::fmt;

/// Errors raised while running a program.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A stream targeted a group the chip does not have.
    UnknownGroup {
        /// The offending group.
        group: GroupId,
        /// Available clusters/groups.
        available: (usize, usize),
    },
    /// No stream could make progress and work remains.
    Deadlock {
        /// Events still pending when the scheduler wedged.
        pending_events: Vec<u32>,
    },
    /// A DMA descriptor was rejected.
    Dma(DmaError),
    /// A synchronisation operation failed.
    Sync(SyncError),
    /// An injected fault aborted the run (see `dtu-faults`); recovery
    /// layers inspect the payload to decide between retry and remap.
    Fault(FaultError),
    /// The chip configuration is inconsistent.
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownGroup { group, available } => write!(
                f,
                "group {group} does not exist (chip has {} clusters x {} groups)",
                available.0, available.1
            ),
            SimError::Deadlock { pending_events } => {
                write!(f, "scheduler deadlock; pending events {pending_events:?}")
            }
            SimError::Dma(e) => write!(f, "dma: {e}"),
            SimError::Sync(e) => write!(f, "sync: {e}"),
            SimError::Fault(e) => write!(f, "fault: {e}"),
            SimError::InvalidConfig(s) => write!(f, "invalid config: {s}"),
        }
    }
}

impl Error for SimError {}

impl From<DmaError> for SimError {
    fn from(e: DmaError) -> Self {
        SimError::Dma(e)
    }
}

impl From<SyncError> for SimError {
    fn from(e: SyncError) -> Self {
        SimError::Sync(e)
    }
}

impl From<FaultError> for SimError {
    fn from(e: FaultError) -> Self {
        SimError::Fault(e)
    }
}

/// Bytes scrubbed (read + write-back through an L2 port) per
/// correctable ECC event.
const ECC_SCRUB_BYTES: u64 = 64 * 1024;

/// Per-stream scheduler state.
#[derive(Debug)]
struct StreamState {
    /// Index into `program.streams`.
    index: usize,
    group_flat: usize,
    pc: usize,
    clock_ns: f64,
    /// Completion time of the latest overlapped DMA (data staging).
    staged_data_ready_ns: f64,
    done: bool,
}

/// Per-group runtime machinery.
#[derive(Debug)]
struct GroupRuntime {
    dma: DmaEngine,
    icache: InstructionCache,
    lpme: Lpme,
    governor: DvfsGovernor,
    /// Time-weighted frequency accumulator (MHz·ns).
    freq_time_product: f64,
    busy_time_ns: f64,
    /// DVFS observation accumulator: the governor classifies whole
    /// observation windows (Fig. 10), not individual kernels.
    window_acc: WindowObservation,
    window_elapsed_ns: f64,
}

/// The simulated accelerator chip.
#[derive(Debug)]
pub struct Chip {
    cfg: ChipConfig,
    power_cfg: PowerConfig,
    energy_model: EnergyModel,
}

impl Chip {
    /// Creates a chip from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ChipConfig::validate`]; use
    /// [`Chip::try_new`] to handle that as an error.
    pub fn new(cfg: ChipConfig) -> Self {
        Chip::try_new(cfg).expect("invalid chip configuration")
    }

    /// Creates a chip, validating the configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] when the config is inconsistent.
    pub fn try_new(cfg: ChipConfig) -> Result<Self, SimError> {
        cfg.validate().map_err(SimError::InvalidConfig)?;
        let power_cfg = PowerConfig {
            board_tdp_mw: (cfg.tdp_watts * 1000.0) as u64,
            f_max_mhz: cfg.clock_mhz,
            f_min_mhz: (cfg.clock_mhz * 5) / 7, // 1.0 GHz at a 1.4 GHz top
            ..PowerConfig::default()
        };
        Ok(Chip {
            cfg,
            power_cfg,
            energy_model: EnergyModel {
                nominal_mhz: 0, // patched below
                ..EnergyModel::default()
            },
        })
        .map(|mut chip: Chip| {
            chip.energy_model.nominal_mhz = chip.cfg.clock_mhz;
            chip
        })
    }

    /// The chip's configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.cfg
    }

    /// The power-management configuration derived from the chip config.
    pub fn power_config(&self) -> &PowerConfig {
        &self.power_cfg
    }

    /// The energy model in use.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy_model
    }

    /// Splits a group-level kernel descriptor across the group's cores
    /// and returns `(busy_ns, intra_stall_ns, l2_ns, l3_ns)` at the
    /// given frequency.
    ///
    /// `busy_ns` is true issue time (scales with 1/f); `intra_stall_ns`
    /// is the frequency-insensitive remainder of the pipeline time —
    /// tile fills, dependency bubbles, register-bank and L2-port waits.
    /// The split is what the DVFS governor harvests: windows dominated
    /// by stalls can downclock without losing latency.
    fn kernel_times(
        &self,
        d: &KernelDescriptor,
        memory: &mut MemoryHierarchy,
        freq_mhz: u32,
        l3_sharers: usize,
    ) -> (f64, f64, f64, f64) {
        let cores = self.cfg.cores_per_group() as f64;
        let fnom_hz = self.cfg.clock_mhz as f64 * 1e6;
        let fscale = self.cfg.clock_mhz as f64 / freq_mhz as f64;
        // Sustained issue efficiency of the matrix pipeline, and the
        // lower *effective* efficiency after the pipeline-ramp term
        // (small kernels can't fill the wide VLIW pipes) and — without
        // fine-grained VMM (DTU 1.0) — the tall-and-skinny tile penalty.
        let (issue_eff, base_eff) = if self.cfg.features.fine_grained_vmm {
            (0.92, 0.37)
        } else {
            (0.80, 0.31)
        };
        let ramp = self.cfg.kernel_ramp_macs;
        let ramp_eff = d.macs as f64 / (d.macs as f64 + ramp);
        let skinny_eff = if self.cfg.features.fine_grained_vmm || d.narrow_dim == 0 {
            1.0
        } else {
            (d.narrow_dim as f64 / 64.0).clamp(0.3, 1.0)
        };
        let vmm_eff = base_eff * ramp_eff * skinny_eff;
        let rate = |eff: f64| {
            cores * self.cfg.macs_per_core_cycle_fp32 * d.dtype.ops_multiplier() * fnom_hz * eff
        };
        let mac_total_ns = d.macs as f64 / rate(vmm_eff) * 1e9;
        let mac_busy_ns = d.macs as f64 / rate(issue_eff) * 1e9;
        let vec_per_s = cores * self.cfg.vector_lanes as f64 * d.dtype.ops_multiplier() * fnom_hz;
        let vec_ns = d.vector_ops as f64 / vec_per_s * 1e9;
        let sfu_eff = if self.cfg.features.enhanced_sfu {
            1.0
        } else {
            0.25
        };
        let sfu_per_s = cores * self.cfg.sfu_ops_per_cycle * fnom_hz * sfu_eff;
        let sfu_ns = d.sfu_ops as f64 / sfu_per_s * 1e9;
        // The VLIW core dual-issues matrix and vector/SFU work; the
        // longest pipe dominates. Busy time downclocks; stalls don't.
        let total_nominal = mac_total_ns.max(vec_ns).max(sfu_ns);
        let busy_nominal = mac_busy_ns.max(vec_ns).max(sfu_ns).min(total_nominal);
        let busy_ns = busy_nominal * fscale;
        let intra_stall_ns = total_nominal - busy_nominal;
        let l2_ns = memory.l2_transfer_ns(d.l2_bytes, self.cfg.cores_per_group());
        let l3_ns = memory.l3_transfer_ns(d.l3_bytes, l3_sharers);
        (busy_ns, intra_stall_ns, l2_ns, l3_ns)
    }

    /// Runs a program to completion.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownGroup`] for placements outside the chip;
    /// [`SimError::Deadlock`] when sync waits can never be satisfied; DMA
    /// and sync errors surface as their own variants.
    pub fn run(&self, program: &Program) -> Result<RunReport, SimError> {
        self.run_inner(program, &mut NullRecorder, None)
    }

    /// Runs a program under a fault-injection session (see `dtu-faults`).
    ///
    /// The session is queried at every kernel launch and DMA transfer;
    /// transient events lengthen the affected operation (DMA slowdown
    /// windows, ECC scrub penalties, thermal throttle windows, icache
    /// corruption) and hard events abort with [`SimError::Fault`]. The
    /// session carries fired-event state **across** runs, so a recovery
    /// layer that retries or remaps proceeds past consumed one-shot
    /// events while permanent core failures keep holding.
    ///
    /// A session over an empty plan takes the exact unfaulted code
    /// path, so the run is byte-identical to [`Chip::run`].
    ///
    /// # Errors
    ///
    /// As for [`Chip::run`], plus [`SimError::Fault`].
    pub fn run_faulted(
        &self,
        program: &Program,
        faults: &mut FaultSession,
    ) -> Result<RunReport, SimError> {
        self.run_inner(program, &mut NullRecorder, Some(faults))
    }

    /// [`Chip::run_faulted`] with a telemetry [`Recorder`] attached;
    /// injected faults additionally appear as `SpanKind::Fault` spans.
    ///
    /// # Errors
    ///
    /// As for [`Chip::run_faulted`].
    pub fn run_faulted_recorded(
        &self,
        program: &Program,
        faults: &mut FaultSession,
        rec: &mut dyn Recorder,
    ) -> Result<RunReport, SimError> {
        self.run_inner(program, rec, Some(faults))
    }

    /// Runs a program with a telemetry [`Recorder`] attached. Every
    /// kernel, DMA, code-load, and sync-wait interval is recorded as a
    /// [`Span`] on the `Layer::Sim` clock (track = flat group index),
    /// with per-launch counter deltas attached, and a chip-wide
    /// [`CounterSnapshot`] is emitted at the end of the run.
    ///
    /// # Errors
    ///
    /// As for [`Chip::run`].
    pub fn run_recorded(
        &self,
        program: &Program,
        rec: &mut dyn Recorder,
    ) -> Result<RunReport, SimError> {
        self.run_inner(program, rec, None)
    }

    /// Runs a program with the profiler attached, returning the report
    /// plus the per-command [`Timeline`].
    ///
    /// # Errors
    ///
    /// As for [`Chip::run`].
    pub fn run_traced(&self, program: &Program) -> Result<(RunReport, Timeline), SimError> {
        let mut buf = TraceBuffer::new();
        let report = self.run_inner(program, &mut buf, None)?;
        Ok((
            report,
            Timeline::from_spans(buf.spans(), self.cfg.groups_per_cluster),
        ))
    }

    fn run_inner(
        &self,
        program: &Program,
        rec: &mut dyn Recorder,
        faults: Option<&mut FaultSession>,
    ) -> Result<RunReport, SimError> {
        // Empty sessions are dropped up front so the no-fault path is
        // bit-for-bit untouched (the zero-cost invariant of dtu-faults).
        let mut faults = faults.filter(|f| !f.is_empty());
        // Validate placement.
        for s in &program.streams {
            if s.group.cluster >= self.cfg.clusters || s.group.group >= self.cfg.groups_per_cluster
            {
                return Err(SimError::UnknownGroup {
                    group: s.group,
                    available: (self.cfg.clusters, self.cfg.groups_per_cluster),
                });
            }
        }

        let mut memory = MemoryHierarchy::timing_only(&self.cfg);
        let mut sync = SyncEngine::new(self.cfg.features.flexible_sync);
        let pm_on = self.cfg.features.power_management;

        // CPME boots with per-group baselines: half the TDP spread over
        // groups as baseline, the rest in reserve.
        let n_groups = self.cfg.total_groups().max(1);
        let baseline_per_group = self.power_cfg.board_tdp_mw / 2 / n_groups as u64;
        let unit_of = |flat: usize| UnitId::core(flat / self.cfg.groups_per_cluster, flat);
        let baselines: Vec<(UnitId, u64)> = (0..n_groups)
            .map(|g| (unit_of(g), baseline_per_group))
            .collect();
        let mut cpme =
            Cpme::new(self.power_cfg.board_tdp_mw, &baselines).expect("baselines fit under TDP");

        let mut groups: Vec<GroupRuntime> = (0..n_groups)
            .map(|_| GroupRuntime {
                dma: DmaEngine::new(&self.cfg),
                icache: InstructionCache::new(
                    self.cfg.ibuf_kib as u64 * 1024,
                    self.cfg.features.instruction_cache,
                    self.cfg.l3_gb_per_s,
                ),
                lpme: Lpme::new(self.power_cfg.clone(), baseline_per_group),
                governor: if pm_on {
                    DvfsGovernor::new(self.power_cfg.clone())
                } else {
                    DvfsGovernor::disabled(self.power_cfg.clone())
                },
                freq_time_product: 0.0,
                busy_time_ns: 0.0,
                window_acc: WindowObservation::default(),
                window_elapsed_ns: 0.0,
            })
            .collect();
        let window_ns = self.power_cfg.window_cycles as f64 * self.cfg.cycle_ns() * 5.0;

        let mut streams: Vec<StreamState> = program
            .streams
            .iter()
            .enumerate()
            .map(|(i, s)| StreamState {
                index: i,
                group_flat: s.group.flat(self.cfg.groups_per_cluster),
                pc: 0,
                clock_ns: 0.0,
                staged_data_ready_ns: 0.0,
                done: s.commands.is_empty(),
            })
            .collect();

        let l3_sharers = streams.len().max(1);
        let mut counters = EngineCounters::default();
        let mut energy = EnergyAccount::new();

        // Round-robin scheduler: keep sweeping until everyone is done or
        // nobody moved.
        loop {
            let mut progressed = false;
            let mut all_done = true;
            #[allow(clippy::needless_range_loop)] // si also indexes per-stream defs
            for si in 0..streams.len() {
                if streams[si].done {
                    continue;
                }
                all_done = false;
                // Drain as many commands as possible for this stream.
                loop {
                    let st = &streams[si];
                    let stream_def = &program.streams[st.index];
                    let Some(cmd) = stream_def.commands.get(st.pc) else {
                        streams[si].done = true;
                        break;
                    };
                    match cmd {
                        Command::RegisterEvent { event, pattern } => {
                            sync.register(*event, *pattern)?;
                            streams[si].pc += 1;
                            progressed = true;
                        }
                        Command::Signal { event } => {
                            let now = streams[si].clock_ns;
                            sync.signal(*event, now)?;
                            counters.sync_ops += 1;
                            streams[si].pc += 1;
                            progressed = true;
                        }
                        Command::Wait { event } => {
                            let now = streams[si].clock_ns;
                            match sync.wait(*event, now)? {
                                Some(release) => {
                                    if release > now && rec.enabled() {
                                        let mut cs = CounterSet::new();
                                        cs.add(Counter::SyncWaitNs, release - now);
                                        cs.add(Counter::SyncOps, 1.0);
                                        rec.record(
                                            Span::new(
                                                SpanKind::SyncWait,
                                                Layer::Sim,
                                                streams[si].group_flat as u32,
                                                format!("event {event}"),
                                                now,
                                                release,
                                            )
                                            .with_counters(cs),
                                        );
                                    }
                                    counters.sync_wait_ns += release - now;
                                    counters.sync_ops += 1;
                                    streams[si].clock_ns = release;
                                    streams[si].pc += 1;
                                    progressed = true;
                                }
                                None => break, // blocked; try another stream
                            }
                        }
                        Command::Prefetch { kernel, code_bytes } => {
                            let g = streams[si].group_flat;
                            let now = streams[si].clock_ns;
                            groups[g].icache.prefetch(*kernel, *code_bytes, now);
                            streams[si].pc += 1;
                            progressed = true;
                        }
                        Command::Dma {
                            descriptor,
                            overlapped,
                        } => {
                            let g = streams[si].group_flat;
                            let now = streams[si].clock_ns;
                            if let Some(fs) = faults.as_deref_mut() {
                                if let Some(err) = fs.take_dma_timeout(g, now) {
                                    // The session keeps the injection count;
                                    // this run's report never materialises.
                                    return Err(SimError::Fault(err));
                                }
                            }
                            let completion = groups[g].dma.execute(descriptor, l3_sharers)?;
                            let mut dma_ns = completion.duration_ns;
                            if let Some(fs) = faults.as_deref_mut() {
                                let eff = fs.dma_slowdown(g, now);
                                if eff.factor > 1.0 {
                                    let extra = completion.duration_ns * (eff.factor - 1.0);
                                    fs.add_stall_ns(extra);
                                    counters.faults_injected += u64::from(eff.newly_fired);
                                    counters.fault_stall_ns += extra;
                                    dma_ns += extra;
                                    if rec.enabled() {
                                        let mut cs = CounterSet::new();
                                        cs.add(Counter::FaultsInjected, f64::from(eff.newly_fired));
                                        cs.add(Counter::FaultStallNs, extra);
                                        rec.record(
                                            Span::new(
                                                SpanKind::Fault,
                                                Layer::Sim,
                                                g as u32,
                                                format!("dma-stall x{:.1}", eff.factor),
                                                now,
                                                now + extra,
                                            )
                                            .with_counters(cs),
                                        );
                                    }
                                }
                            }
                            counters.dma_transfers += descriptor.repeat as u64;
                            counters.dma_wire_bytes += completion.wire_bytes;
                            counters.dma_config_ns += completion.config_ns;
                            energy.charge_memory(
                                &self.energy_model,
                                0,
                                if descriptor.path.touches_l3() {
                                    0
                                } else {
                                    completion.wire_bytes
                                },
                                if descriptor.path.touches_l3() {
                                    completion.wire_bytes
                                } else {
                                    0
                                },
                            );
                            if rec.enabled() {
                                let mut cs = CounterSet::new();
                                cs.add(Counter::DmaTransfers, descriptor.repeat as f64);
                                cs.add(Counter::DmaWireBytes, completion.wire_bytes as f64);
                                cs.add(Counter::DmaConfigNs, completion.config_ns);
                                rec.record(
                                    Span::new(
                                        SpanKind::Dma,
                                        Layer::Sim,
                                        g as u32,
                                        format!(
                                            "{} {}B{}",
                                            descriptor.path,
                                            descriptor.bytes,
                                            if *overlapped { " (bg)" } else { "" }
                                        ),
                                        now,
                                        now + dma_ns,
                                    )
                                    .with_counters(cs),
                                );
                            }
                            if *overlapped {
                                let done = now + dma_ns;
                                streams[si].staged_data_ready_ns =
                                    streams[si].staged_data_ready_ns.max(done);
                            } else {
                                streams[si].clock_ns = now + dma_ns;
                            }
                            streams[si].pc += 1;
                            progressed = true;
                        }
                        Command::Launch { kernel, descriptor } => {
                            let g = streams[si].group_flat;
                            let start = streams[si].clock_ns;
                            // Double buffering: staged input transfers
                            // pipeline with this kernel's tiles, so any
                            // remaining staging time competes with (not
                            // precedes) compute.
                            let stage_pending_ns =
                                (streams[si].staged_data_ready_ns - start).max(0.0);

                            // Icache corruption drops the group's resident
                            // code before the fetch: this launch (and any
                            // other resident kernel) reloads from L3.
                            if let Some(fs) = faults.as_deref_mut() {
                                if fs.take_icache_corruption(g, start) {
                                    groups[g].icache.invalidate();
                                    counters.faults_injected += 1;
                                    if rec.enabled() {
                                        let mut cs = CounterSet::new();
                                        cs.add(Counter::FaultsInjected, 1.0);
                                        rec.record(
                                            Span::new(
                                                SpanKind::Fault,
                                                Layer::Sim,
                                                g as u32,
                                                "icache-corruption".to_string(),
                                                start,
                                                start,
                                            )
                                            .with_counters(cs),
                                        );
                                    }
                                }
                            }

                            // Kernel code fetch.
                            let fetch =
                                groups[g]
                                    .icache
                                    .fetch(*kernel, descriptor.code_bytes, start);
                            let code_stall = fetch.stall_ns();
                            let icache_hit = match fetch {
                                crate::icache::FetchOutcome::Hit
                                | crate::icache::FetchOutcome::PrefetchInFlight { .. } => {
                                    counters.icache_hits += 1;
                                    true
                                }
                                crate::icache::FetchOutcome::Miss { .. } => {
                                    counters.icache_misses += 1;
                                    false
                                }
                            };
                            counters.code_load_stall_ns += code_stall;
                            // Baselines for the per-launch telemetry deltas.
                            let power_stall_before = counters.power_stall_ns;
                            let dynamic_pj_before = energy.dynamic_pj;

                            let mut freq = groups[g].governor.freq_mhz();
                            // A thermal throttle window pins the clock to
                            // the DVFS floor regardless of the governor.
                            if let Some(fs) = faults.as_deref_mut() {
                                let th = fs.thermal_throttle(g, start);
                                if th.factor > 1.0 {
                                    freq = freq.min(self.power_cfg.f_min_mhz);
                                    counters.faults_injected += u64::from(th.newly_fired);
                                    if rec.enabled() {
                                        let mut cs = CounterSet::new();
                                        cs.add(Counter::FaultsInjected, f64::from(th.newly_fired));
                                        rec.record(
                                            Span::new(
                                                SpanKind::Fault,
                                                Layer::Sim,
                                                g as u32,
                                                format!("thermal-throttle @{freq}MHz"),
                                                start,
                                                start,
                                            )
                                            .with_counters(cs),
                                        );
                                    }
                                }
                            }
                            let (busy_ns, intra_stall_ns, l2_ns, l3_ns) =
                                self.kernel_times(descriptor, &mut memory, freq, l3_sharers);
                            let work_ns = busy_ns + intra_stall_ns;
                            // Multiple buffering overlaps compute with data
                            // movement; the longest component dominates.
                            // Every launch pays a fixed dispatch overhead.
                            let launch_ns =
                                self.cfg.kernel_launch_cycles as f64 * 1e3 / freq as f64;
                            let mut duration =
                                work_ns.max(l2_ns).max(l3_ns).max(stage_pending_ns) + launch_ns;
                            let mem_stall = duration - launch_ns - busy_ns;

                            // --- power loops ---
                            // The observation (including the projected-power
                            // probe, a full dynamic-energy evaluation) is
                            // only needed when the LPME/governor will consume
                            // it; with power management off it used to be
                            // computed and discarded on every launch.
                            if pm_on {
                                let cycle_ns = 1e3 / freq as f64;
                                let obs = WindowObservation {
                                    busy_cycles: (busy_ns / cycle_ns) as u64,
                                    // Everything that is not issue time is
                                    // frequency-insensitive stall: intra-kernel
                                    // pipeline bubbles plus exposed memory time.
                                    stall_cycles: (mem_stall / cycle_ns) as u64,
                                    l3_stall_cycles: (mem_stall / cycle_ns) as u64,
                                    projected_power_mw: {
                                        // Projected dynamic power of this kernel.
                                        let mut probe = EnergyAccount::new();
                                        probe.charge_compute(
                                            &self.energy_model,
                                            &self.power_cfg,
                                            freq,
                                            (descriptor.macs as f64
                                                / descriptor.dtype.ops_multiplier())
                                                as u64,
                                            descriptor.vector_ops,
                                            descriptor.sfu_ops,
                                        );
                                        if duration > 0.0 {
                                            (probe.dynamic_pj / duration) as u64
                                        } else {
                                            0
                                        }
                                    },
                                };
                                let unit = unit_of(g);
                                match groups[g].lpme.observe(obs) {
                                    LpmeAction::InsertStalls(stalls) => {
                                        let stall_ns = stalls as f64 * cycle_ns;
                                        counters.power_stall_ns += stall_ns;
                                        duration += stall_ns;
                                    }
                                    LpmeAction::RequestBudget(want) => {
                                        let granted = cpme.request(unit, want);
                                        groups[g].lpme.grant(granted);
                                        if granted < want {
                                            // Partial grant: throttle the rest.
                                            let deficit =
                                                (want - granted) as f64 / want.max(1) as f64;
                                            let stall_ns = duration * deficit * 0.5;
                                            counters.power_stall_ns += stall_ns;
                                            duration += stall_ns;
                                        }
                                    }
                                    LpmeAction::ReturnBudget(surplus) => {
                                        if cpme.release(unit, surplus).is_ok() {
                                            groups[g].lpme.relinquish(surplus);
                                        }
                                    }
                                    LpmeAction::None => {}
                                }
                                // Accumulate into the group's observation
                                // window; the governor acts when a full
                                // window has elapsed.
                                let acc = &mut groups[g].window_acc;
                                acc.busy_cycles += obs.busy_cycles;
                                acc.stall_cycles += obs.stall_cycles;
                                acc.l3_stall_cycles += obs.l3_stall_cycles;
                                acc.projected_power_mw =
                                    acc.projected_power_mw.max(obs.projected_power_mw);
                                groups[g].window_elapsed_ns += duration;
                                if groups[g].window_elapsed_ns >= window_ns {
                                    let window = groups[g].window_acc;
                                    // 3% latency-slack budget per window.
                                    let _plan = groups[g].governor.step_with_slack(window, 0.03);
                                    groups[g].window_acc = WindowObservation::default();
                                    groups[g].window_elapsed_ns = 0.0;
                                }
                            }

                            // --- fault injection on the launch window ---
                            if let Some(fs) = faults.as_deref_mut() {
                                let scrubs = fs.take_correctable_scrubs(
                                    g,
                                    start,
                                    start + code_stall + duration,
                                );
                                if scrubs > 0 {
                                    let scrub_ns =
                                        memory.ecc_scrub_ns(ECC_SCRUB_BYTES) * f64::from(scrubs);
                                    fs.add_stall_ns(scrub_ns);
                                    counters.faults_injected += u64::from(scrubs);
                                    counters.fault_stall_ns += scrub_ns;
                                    if rec.enabled() {
                                        let mut cs = CounterSet::new();
                                        cs.add(Counter::FaultsInjected, f64::from(scrubs));
                                        cs.add(Counter::FaultStallNs, scrub_ns);
                                        rec.record(
                                            Span::new(
                                                SpanKind::Fault,
                                                Layer::Sim,
                                                g as u32,
                                                format!("ecc-scrub x{scrubs}"),
                                                start + code_stall + duration,
                                                start + code_stall + duration + scrub_ns,
                                            )
                                            .with_counters(cs),
                                        );
                                    }
                                    duration += scrub_ns;
                                }
                                let end_ns = start + code_stall + duration;
                                if let Some(err) = fs.take_uncorrectable(g, start, end_ns) {
                                    return Err(SimError::Fault(err));
                                }
                                if let Some(err) = fs.core_failure(g, end_ns) {
                                    return Err(SimError::Fault(err));
                                }
                            }

                            // --- energy ---
                            let fp32_equiv_macs =
                                (descriptor.macs as f64 / descriptor.dtype.ops_multiplier()) as u64;
                            energy.charge_compute(
                                &self.energy_model,
                                &self.power_cfg,
                                freq,
                                fp32_equiv_macs,
                                descriptor.vector_ops,
                                descriptor.sfu_ops,
                            );
                            energy.charge_memory(
                                &self.energy_model,
                                descriptor.l1_bytes,
                                descriptor.l2_bytes,
                                descriptor.l3_bytes,
                            );
                            // The group's engines stay clocked for the whole
                            // kernel; idle (clock-tree) power scales with the
                            // DVFS point — one group's share of the chip.
                            energy.charge_active_idle(
                                &self.energy_model,
                                &self.power_cfg,
                                freq,
                                duration / n_groups as f64,
                            );

                            // --- bookkeeping ---
                            counters.kernel_launches += 1;
                            counters.macs += descriptor.macs;
                            counters.vector_ops += descriptor.vector_ops;
                            counters.sfu_ops += descriptor.sfu_ops;
                            counters.compute_busy_ns += busy_ns;
                            counters.memory_stall_ns += mem_stall;
                            groups[g].freq_time_product += freq as f64 * duration;
                            groups[g].busy_time_ns += duration;

                            if rec.enabled() {
                                if code_stall > 0.0 {
                                    let mut cs = CounterSet::new();
                                    cs.add(Counter::CodeLoadStallNs, code_stall);
                                    rec.record(
                                        Span::new(
                                            SpanKind::CodeLoad,
                                            Layer::Sim,
                                            g as u32,
                                            format!("{kernel} code"),
                                            start,
                                            start + code_stall,
                                        )
                                        .with_op(kernel.0)
                                        .with_counters(cs),
                                    );
                                }
                                let mut cs = CounterSet::new();
                                cs.add(Counter::KernelLaunches, 1.0);
                                cs.add(Counter::Macs, descriptor.macs as f64);
                                cs.add(Counter::VectorOps, descriptor.vector_ops as f64);
                                cs.add(Counter::SfuOps, descriptor.sfu_ops as f64);
                                cs.add(Counter::ComputeBusyNs, busy_ns);
                                cs.add(Counter::MemoryStallNs, mem_stall);
                                cs.add(Counter::LaunchOverheadNs, launch_ns);
                                cs.add(Counter::L2Bytes, descriptor.l2_bytes as f64);
                                cs.add(Counter::L3Bytes, descriptor.l3_bytes as f64);
                                cs.add(Counter::IcacheHits, if icache_hit { 1.0 } else { 0.0 });
                                cs.add(Counter::IcacheMisses, if icache_hit { 0.0 } else { 1.0 });
                                cs.add(
                                    Counter::PowerStallNs,
                                    counters.power_stall_ns - power_stall_before,
                                );
                                cs.add(
                                    Counter::DynamicEnergyPj,
                                    energy.dynamic_pj - dynamic_pj_before,
                                );
                                cs.add(Counter::FreqResidencyMhzNs, freq as f64 * duration);
                                cs.add(Counter::ActiveTimeNs, duration);
                                rec.record(
                                    Span::new(
                                        SpanKind::Kernel,
                                        Layer::Sim,
                                        g as u32,
                                        descriptor.name.clone(),
                                        start + code_stall,
                                        start + code_stall + duration,
                                    )
                                    .with_op(kernel.0)
                                    .with_freq(freq)
                                    .with_counters(cs),
                                );
                            }
                            streams[si].clock_ns = start + code_stall + duration;
                            streams[si].pc += 1;
                            progressed = true;
                        }
                    }
                }
            }
            if all_done {
                break;
            }
            if !progressed {
                return Err(SimError::Deadlock {
                    pending_events: sync.pending_events(),
                });
            }
        }

        let latency_ns = streams.iter().map(|s| s.clock_ns).fold(0.0f64, f64::max);
        energy.charge_static(&self.energy_model, latency_ns);

        let (fp, bt): (f64, f64) = groups
            .iter()
            .map(|g| (g.freq_time_product, g.busy_time_ns))
            .fold((0.0, 0.0), |(a, b), (c, d)| (a + c, b + d));
        let mean_freq_mhz = if bt > 0.0 {
            fp / bt
        } else {
            self.cfg.clock_mhz as f64
        };

        counters.sync_ops += sync.ops();

        if rec.enabled() {
            let mut set = counters.to_counter_set();
            set.add(Counter::DynamicEnergyPj, energy.dynamic_pj);
            set.add(Counter::StaticEnergyPj, energy.static_pj);
            set.add(Counter::FreqResidencyMhzNs, fp);
            set.add(Counter::ActiveTimeNs, bt);
            rec.snapshot(CounterSnapshot {
                at_ns: latency_ns,
                label: format!("chip:{}", program.name),
                set,
            });
        }

        Ok(RunReport {
            latency_ns,
            energy,
            counters,
            mean_freq_mhz,
            program: program.name.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dma::{DmaDescriptor, DmaPath, MemLevel};
    use crate::program::Stream;
    use crate::sync::SyncPattern;
    use dtu_isa::{DataType, KernelId, OpClass};

    fn conv_kernel(id: u64, macs: u64, l3: u64) -> Command {
        let mut d = KernelDescriptor::new(format!("k{id}"));
        d.class = OpClass::MatrixDense;
        d.dtype = DataType::Fp16;
        d.macs = macs;
        d.l2_bytes = l3 / 2;
        d.l3_bytes = l3;
        d.code_bytes = 16 * 1024;
        Command::Launch {
            kernel: KernelId(id),
            descriptor: d,
        }
    }

    fn single_stream_program(cmds: Vec<Command>) -> Program {
        let mut p = Program::new("test");
        let mut s = Stream::new(GroupId::new(0, 0));
        for c in cmds {
            s.push(c);
        }
        p.add_stream(s);
        p
    }

    #[test]
    fn empty_program_zero_latency() {
        let chip = Chip::new(ChipConfig::dtu20());
        let r = chip.run(&Program::new("empty")).unwrap();
        assert_eq!(r.latency_ns, 0.0);
        assert_eq!(r.counters.kernel_launches, 0);
    }

    #[test]
    fn single_kernel_latency_scales_with_work() {
        let chip = Chip::new(ChipConfig::dtu20());
        let small = chip
            .run(&single_stream_program(vec![conv_kernel(
                1, 1_000_000, 1_000,
            )]))
            .unwrap();
        let big = chip
            .run(&single_stream_program(vec![conv_kernel(
                1,
                100_000_000,
                1_000,
            )]))
            .unwrap();
        // Launch overhead and the utilisation ramp compress the ratio
        // below the pure 100x MAC ratio, but it must stay strongly
        // work-dependent.
        assert!(big.latency_ns > small.latency_ns * 5.0);
        assert_eq!(big.counters.kernel_launches, 1);
        assert_eq!(big.counters.macs, 100_000_000);
    }

    #[test]
    fn bandwidth_bound_kernel_dominated_by_l3() {
        let chip = Chip::new(ChipConfig::dtu20());
        // Tiny compute, huge traffic.
        let r = chip
            .run(&single_stream_program(vec![conv_kernel(
                1,
                1_000,
                100_000_000,
            )]))
            .unwrap();
        assert!(r.counters.memory_stall_ns > r.counters.compute_busy_ns);
    }

    #[test]
    fn placement_validation() {
        let chip = Chip::new(ChipConfig::dtu20());
        let mut p = Program::new("bad");
        p.add_stream(Stream::new(GroupId::new(5, 0)));
        assert!(matches!(chip.run(&p), Err(SimError::UnknownGroup { .. })));
        let mut p = Program::new("bad2");
        p.add_stream(Stream::new(GroupId::new(0, 3)));
        assert!(chip.run(&p).is_err());
    }

    #[test]
    fn sync_serialises_producer_consumer() {
        let chip = Chip::new(ChipConfig::dtu20());
        let mut p = Program::new("sync");
        let mut a = Stream::new(GroupId::new(0, 0));
        a.push(Command::RegisterEvent {
            event: 1,
            pattern: SyncPattern::OneToOne,
        })
        .push(conv_kernel(1, 50_000_000, 10_000))
        .push(Command::Signal { event: 1 });
        let mut b = Stream::new(GroupId::new(0, 1));
        b.push(Command::Wait { event: 1 })
            .push(conv_kernel(2, 50_000_000, 10_000));
        p.add_stream(a);
        p.add_stream(b);
        let serial = chip.run(&p).unwrap();

        // Same kernels, no dependency: parallel.
        let mut q = Program::new("par");
        let mut a = Stream::new(GroupId::new(0, 0));
        a.push(conv_kernel(1, 50_000_000, 10_000));
        let mut b = Stream::new(GroupId::new(0, 1));
        b.push(conv_kernel(2, 50_000_000, 10_000));
        q.add_stream(a);
        q.add_stream(b);
        let parallel = chip.run(&q).unwrap();

        assert!(serial.latency_ns > parallel.latency_ns * 1.8);
        assert!(serial.counters.sync_wait_ns > 0.0);
    }

    #[test]
    fn deadlock_detected() {
        let chip = Chip::new(ChipConfig::dtu20());
        let mut p = Program::new("dead");
        let mut s = Stream::new(GroupId::new(0, 0));
        s.push(Command::RegisterEvent {
            event: 9,
            pattern: SyncPattern::OneToOne,
        })
        .push(Command::Wait { event: 9 });
        p.add_stream(s);
        match chip.run(&p) {
            Err(SimError::Deadlock { pending_events }) => {
                assert_eq!(pending_events, vec![9]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn icache_prefetch_reduces_code_stall() {
        let chip = Chip::new(ChipConfig::dtu20());
        let cold = chip
            .run(&single_stream_program(vec![
                conv_kernel(7, 10_000_000, 1_000),
                conv_kernel(8, 10_000_000, 1_000),
            ]))
            .unwrap();
        let warm = chip
            .run(&single_stream_program(vec![
                Command::Prefetch {
                    kernel: KernelId(7),
                    code_bytes: 16 * 1024,
                },
                Command::Prefetch {
                    kernel: KernelId(8),
                    code_bytes: 16 * 1024,
                },
                conv_kernel(7, 10_000_000, 1_000),
                conv_kernel(8, 10_000_000, 1_000),
            ]))
            .unwrap();
        assert!(warm.counters.code_load_stall_ns < cold.counters.code_load_stall_ns);
        assert!(warm.latency_ns <= cold.latency_ns);
    }

    #[test]
    fn no_icache_repeated_kernel_pays_every_time() {
        let mut cfg = ChipConfig::dtu20();
        cfg.features.instruction_cache = false;
        let chip = Chip::new(cfg);
        let r = chip
            .run(&single_stream_program(vec![
                conv_kernel(1, 1_000_000, 1_000),
                conv_kernel(1, 1_000_000, 1_000),
            ]))
            .unwrap();
        assert_eq!(r.counters.icache_misses, 2);
        assert_eq!(r.counters.icache_hits, 0);

        let chip2 = Chip::new(ChipConfig::dtu20());
        let r2 = chip2
            .run(&single_stream_program(vec![
                conv_kernel(1, 1_000_000, 1_000),
                conv_kernel(1, 1_000_000, 1_000),
            ]))
            .unwrap();
        assert_eq!(r2.counters.icache_hits, 1);
    }

    #[test]
    fn overlapped_dma_hides_behind_compute() {
        let chip = Chip::new(ChipConfig::dtu20());
        let dma = DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 1 << 20);
        let blocking = chip
            .run(&single_stream_program(vec![
                Command::Dma {
                    descriptor: dma.clone(),
                    overlapped: false,
                },
                conv_kernel(1, 500_000_000, 1_000),
            ]))
            .unwrap();
        let overlapped = chip
            .run(&single_stream_program(vec![
                Command::Dma {
                    descriptor: dma,
                    overlapped: true,
                },
                conv_kernel(1, 500_000_000, 1_000),
            ]))
            .unwrap();
        assert!(overlapped.latency_ns <= blocking.latency_ns);
    }

    #[test]
    fn energy_grows_with_work() {
        let chip = Chip::new(ChipConfig::dtu20());
        let small = chip
            .run(&single_stream_program(vec![conv_kernel(
                1, 1_000_000, 1_000,
            )]))
            .unwrap();
        let big = chip
            .run(&single_stream_program(vec![conv_kernel(
                1,
                1_000_000_000,
                1_000,
            )]))
            .unwrap();
        assert!(big.energy_joules() > small.energy_joules());
        assert!(big.average_watts() > 0.0);
    }

    #[test]
    fn power_management_saves_energy_on_bandwidth_bound_runs() {
        // A long bandwidth-bound phase: PM drops the clock, saving energy
        // with little latency cost.
        let mut kernels = Vec::new();
        for i in 0..40 {
            // Bandwidth-bound (L3 time > compute time at every DVFS
            // point) but with enough MACs that dynamic compute energy is
            // a meaningful share of the total.
            kernels.push(conv_kernel(i, 200_000_000, 100_000_000));
        }
        let chip_on = Chip::new(ChipConfig::dtu20());
        let on = chip_on
            .run(&single_stream_program(kernels.clone()))
            .unwrap();
        let mut cfg_off = ChipConfig::dtu20();
        cfg_off.features.power_management = false;
        let chip_off = Chip::new(cfg_off);
        let off = chip_off.run(&single_stream_program(kernels)).unwrap();

        assert!(on.mean_freq_mhz < off.mean_freq_mhz, "governor never acted");
        // Perf drop bounded, energy saved.
        assert!(on.latency_ns <= off.latency_ns * 1.10);
        assert!(on.energy_joules() < off.energy_joules());
    }

    #[test]
    fn mean_frequency_reported() {
        let chip = Chip::new(ChipConfig::dtu20());
        let r = chip
            .run(&single_stream_program(vec![conv_kernel(
                1, 10_000_000, 1_000,
            )]))
            .unwrap();
        assert!(r.mean_freq_mhz > 0.0);
        assert!(r.mean_freq_mhz <= chip.config().clock_mhz as f64);
    }

    #[test]
    fn faulted_run_with_empty_plan_matches_plain_run() {
        use dtu_faults::FaultPlan;
        let chip = Chip::new(ChipConfig::dtu20());
        let prog = single_stream_program(vec![
            conv_kernel(1, 10_000_000, 100_000),
            conv_kernel(2, 10_000_000, 100_000),
        ]);
        let plain = chip.run(&prog).unwrap();
        let mut fs = FaultSession::new(&FaultPlan::empty(), 4, 3);
        let faulted = chip.run_faulted(&prog, &mut fs).unwrap();
        assert_eq!(plain, faulted, "empty plan must be invisible");
        assert_eq!(fs.injected(), 0);
    }

    #[test]
    fn core_failure_aborts_with_typed_error() {
        use dtu_faults::{FaultEvent, FaultKind, FaultPlan};
        let chip = Chip::new(ChipConfig::dtu20());
        let prog = single_stream_program(vec![conv_kernel(1, 100_000_000, 1_000)]);
        let plan = FaultPlan {
            seed: 0,
            name: String::new(),
            events: vec![FaultEvent {
                at_ns: 0.0,
                cluster: 0,
                group: 0,
                kind: FaultKind::CoreFailure,
            }],
        };
        let mut fs = FaultSession::new(&plan, 4, 3);
        match chip.run_faulted(&prog, &mut fs) {
            Err(SimError::Fault(e)) => {
                assert!(e.is_permanent());
                assert_eq!(e.location(), (0, 0));
            }
            other => panic!("expected fault abort, got {other:?}"),
        }
        // Permanent: a rerun of the same session still fails…
        assert!(chip.run_faulted(&prog, &mut fs).is_err());
        // …but a program on another group is untouched.
        let mut p = Program::new("other");
        let mut s = Stream::new(GroupId::new(1, 0));
        s.push(conv_kernel(1, 1_000_000, 1_000));
        p.add_stream(s);
        assert!(chip.run_faulted(&p, &mut fs).is_ok());
    }

    #[test]
    fn dma_stall_window_lengthens_transfers() {
        use dtu_faults::{FaultEvent, FaultKind, FaultPlan};
        let chip = Chip::new(ChipConfig::dtu20());
        let dma = DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 64 << 20);
        let prog = single_stream_program(vec![Command::Dma {
            descriptor: dma,
            overlapped: false,
        }]);
        let plain = chip.run(&prog).unwrap();
        let plan = FaultPlan {
            seed: 0,
            name: String::new(),
            events: vec![FaultEvent {
                at_ns: 0.0,
                cluster: 0,
                group: 0,
                kind: FaultKind::DmaStall {
                    factor: 4.0,
                    duration_ns: 1e12,
                },
            }],
        };
        let mut fs = FaultSession::new(&plan, 4, 3);
        let slow = chip.run_faulted(&prog, &mut fs).unwrap();
        assert!(slow.latency_ns > plain.latency_ns * 3.0);
        assert_eq!(slow.counters.faults_injected, 1);
        assert!(slow.counters.fault_stall_ns > 0.0);
        assert!(fs.stall_ns() > 0.0);
    }

    #[test]
    fn thermal_throttle_pins_frequency_to_floor() {
        use dtu_faults::{FaultEvent, FaultKind, FaultPlan};
        let mut cfg = ChipConfig::dtu20();
        cfg.features.power_management = false; // keep the governor at f_max
        let chip = Chip::new(cfg);
        let prog = single_stream_program(vec![conv_kernel(1, 500_000_000, 1_000)]);
        let plain = chip.run(&prog).unwrap();
        let plan = FaultPlan {
            seed: 0,
            name: String::new(),
            events: vec![FaultEvent {
                at_ns: 0.0,
                cluster: 0,
                group: 0,
                kind: FaultKind::ThermalThrottle { duration_ns: 1e12 },
            }],
        };
        let mut fs = FaultSession::new(&plan, 4, 3);
        let hot = chip.run_faulted(&prog, &mut fs).unwrap();
        assert!(hot.mean_freq_mhz < plain.mean_freq_mhz);
        assert_eq!(
            hot.mean_freq_mhz as u32,
            chip.power_config().f_min_mhz,
            "throttled kernel runs at the DVFS floor"
        );
        assert!(hot.latency_ns > plain.latency_ns);
    }

    #[test]
    fn ecc_faults_scrub_or_abort() {
        use dtu_faults::{FaultEvent, FaultKind, FaultPlan};
        let chip = Chip::new(ChipConfig::dtu20());
        let prog = single_stream_program(vec![conv_kernel(1, 100_000_000, 1_000)]);
        let plain = chip.run(&prog).unwrap();
        let correctable = FaultPlan {
            seed: 0,
            name: String::new(),
            events: vec![FaultEvent {
                at_ns: 1.0,
                cluster: 0,
                group: 0,
                kind: FaultKind::EccError { correctable: true },
            }],
        };
        let mut fs = FaultSession::new(&correctable, 4, 3);
        let scrubbed = chip.run_faulted(&prog, &mut fs).unwrap();
        assert!(scrubbed.latency_ns > plain.latency_ns);
        assert_eq!(scrubbed.counters.faults_injected, 1);

        let fatal = FaultPlan {
            seed: 0,
            name: String::new(),
            events: vec![FaultEvent {
                at_ns: 1.0,
                cluster: 0,
                group: 0,
                kind: FaultKind::EccError { correctable: false },
            }],
        };
        let mut fs = FaultSession::new(&fatal, 4, 3);
        match chip.run_faulted(&prog, &mut fs) {
            Err(SimError::Fault(e)) => assert!(!e.is_permanent()),
            other => panic!("expected ECC abort, got {other:?}"),
        }
        // One-shot: the retry proceeds.
        assert!(chip.run_faulted(&prog, &mut fs).is_ok());
    }

    #[test]
    fn icache_corruption_forces_code_reload() {
        use dtu_faults::{FaultEvent, FaultKind, FaultPlan};
        let chip = Chip::new(ChipConfig::dtu20());
        // Same kernel twice: normally the second launch hits.
        let prog = single_stream_program(vec![
            conv_kernel(1, 10_000_000, 1_000),
            conv_kernel(1, 10_000_000, 1_000),
        ]);
        let plain = chip.run(&prog).unwrap();
        assert_eq!(plain.counters.icache_hits, 1);
        let plan = FaultPlan {
            seed: 0,
            name: String::new(),
            events: vec![FaultEvent {
                at_ns: 1.0,
                cluster: 0,
                group: 0,
                kind: FaultKind::IcacheCorruption,
            }],
        };
        let mut fs = FaultSession::new(&plan, 4, 3);
        let corrupted = chip.run_faulted(&prog, &mut fs).unwrap();
        assert_eq!(corrupted.counters.icache_hits, 0, "residency wiped");
        assert!(corrupted.counters.code_load_stall_ns >= plain.counters.code_load_stall_ns);
    }

    #[test]
    fn try_new_rejects_bad_config() {
        let mut cfg = ChipConfig::dtu20();
        cfg.groups_per_cluster = 7;
        assert!(matches!(
            Chip::try_new(cfg),
            Err(SimError::InvalidConfig(_))
        ));
    }
}
