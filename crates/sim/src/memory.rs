//! The 3-level memory hierarchy: capacities, allocation, and bandwidth.
//!
//! Fig. 5: each compute core owns an L1 data buffer; each processing group
//! owns one L2 partition with 4 parallel read/write ports ("4 compute
//! cores in the processing group can access L2 memory without
//! interference", §IV-B); the two HBM2E stacks form a shared L3.
//!
//! The timing layer asks this module two kinds of questions: *does this
//! allocation fit?* (capacity tracking per pool) and *how long does moving
//! N bytes take?* (bandwidth, with port-level parallelism on L2 and
//! fair-share division on L3).

use crate::config::ChipConfig;
use std::error::Error;
use std::fmt;

/// Errors from memory allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryError {
    /// The allocation does not fit in the pool's remaining capacity.
    OutOfMemory {
        /// Pool description.
        pool: String,
        /// Bytes requested.
        requested: u64,
        /// Bytes still free.
        free: u64,
    },
    /// Freed more bytes than were allocated.
    UnderFlow {
        /// Pool description.
        pool: String,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::OutOfMemory {
                pool,
                requested,
                free,
            } => write!(f, "{pool}: requested {requested} B but only {free} B free"),
            MemoryError::UnderFlow { pool } => write!(f, "{pool}: freed more than allocated"),
        }
    }
}

impl Error for MemoryError {}

/// A simple capacity pool (bump accounting; the compiler plans exact
/// reuse, so the simulator only polices totals).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryPool {
    name: String,
    capacity: u64,
    used: u64,
    high_water: u64,
}

impl MemoryPool {
    /// Creates a pool with a capacity in bytes.
    pub fn new(name: impl Into<String>, capacity: u64) -> Self {
        MemoryPool {
            name: name.into(),
            capacity,
            used: 0,
            high_water: 0,
        }
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Highest allocation watermark seen.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Allocates `bytes`.
    ///
    /// # Errors
    ///
    /// [`MemoryError::OutOfMemory`] when the pool cannot hold the request.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), MemoryError> {
        if bytes > self.free() {
            return Err(MemoryError::OutOfMemory {
                pool: self.name.clone(),
                requested: bytes,
                free: self.free(),
            });
        }
        self.used += bytes;
        self.high_water = self.high_water.max(self.used);
        Ok(())
    }

    /// Releases `bytes`.
    ///
    /// # Errors
    ///
    /// [`MemoryError::UnderFlow`] when releasing more than allocated.
    pub fn release(&mut self, bytes: u64) -> Result<(), MemoryError> {
        if bytes > self.used {
            return Err(MemoryError::UnderFlow {
                pool: self.name.clone(),
            });
        }
        self.used -= bytes;
        Ok(())
    }
}

/// The chip-wide memory hierarchy state: one L1 pool per core, one L2 pool
/// per processing group, one L3 pool, plus the bandwidth model.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1: Vec<MemoryPool>,
    l2: Vec<MemoryPool>,
    l3: MemoryPool,
    l2_ports: usize,
    l2_port_gbps: f64,
    l3_gbps: f64,
    multi_port: bool,
    /// Total bytes moved over HBM, for reporting.
    l3_traffic: u64,
    /// Total bytes through L2 ports, for reporting.
    l2_traffic: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy described by a chip config.
    pub fn new(cfg: &ChipConfig) -> Self {
        let l1 = (0..cfg.total_cores())
            .map(|i| MemoryPool::new(format!("L1[core {i}]"), cfg.l1_bytes_per_core()))
            .collect();
        let l2 = (0..cfg.total_groups())
            .map(|g| MemoryPool::new(format!("L2[group {g}]"), cfg.l2_bytes_per_group()))
            .collect();
        MemoryHierarchy {
            l1,
            l2,
            l3: MemoryPool::new("L3[HBM]", cfg.l3_bytes()),
            l2_ports: cfg.l2_ports,
            l2_port_gbps: cfg.l2_port_gb_per_s,
            l3_gbps: cfg.l3_gb_per_s,
            multi_port: cfg.features.multi_port_l2,
            l3_traffic: 0,
            l2_traffic: 0,
        }
    }

    /// A hierarchy carrying only the bandwidth model, for the run loop.
    ///
    /// [`Chip::run`](crate::Chip::run) prices transfers but never
    /// allocates, so the per-core L1 and per-group L2 capacity pools —
    /// and their ~30 formatted name strings — are dead weight on that
    /// path. Pool accessors must not be used on a hierarchy built this
    /// way.
    pub(crate) fn timing_only(cfg: &ChipConfig) -> Self {
        MemoryHierarchy {
            l1: Vec::new(),
            l2: Vec::new(),
            l3: MemoryPool::new("L3[HBM]", cfg.l3_bytes()),
            l2_ports: cfg.l2_ports,
            l2_port_gbps: cfg.l2_port_gb_per_s,
            l3_gbps: cfg.l3_gb_per_s,
            multi_port: cfg.features.multi_port_l2,
            l3_traffic: 0,
            l2_traffic: 0,
        }
    }

    /// The L1 pool of a core (by flat core index).
    pub fn l1(&mut self, core: usize) -> &mut MemoryPool {
        &mut self.l1[core]
    }

    /// The L2 pool of a processing group (by flat group index).
    pub fn l2(&mut self, group: usize) -> &mut MemoryPool {
        &mut self.l2[group]
    }

    /// The shared L3 pool.
    pub fn l3(&mut self) -> &mut MemoryPool {
        &mut self.l3
    }

    /// Read-only view of the L3 pool.
    pub fn l3_ref(&self) -> &MemoryPool {
        &self.l3
    }

    /// Number of L2 pools (processing groups).
    pub fn l2_partitions(&self) -> usize {
        self.l2.len()
    }

    /// Time in nanoseconds to move `bytes` through L2 when `concurrent`
    /// cores in the group access it simultaneously.
    ///
    /// With `multi_port_l2` each core gets its own port up to the port
    /// count; without it (DTU 1.0) all cores in a group serialise on one
    /// port.
    pub fn l2_transfer_ns(&mut self, bytes: u64, concurrent: usize) -> f64 {
        self.l2_traffic += bytes;
        let ports = if self.multi_port { self.l2_ports } else { 1 };
        let effective_share = if concurrent <= ports {
            self.l2_port_gbps
        } else {
            self.l2_port_gbps * ports as f64 / concurrent as f64
        };
        bytes as f64 / effective_share // B / (GB/s) == ns
    }

    /// Time in nanoseconds to move `bytes` over HBM when `sharers` streams
    /// are using the interface (fair share of the pin bandwidth).
    pub fn l3_transfer_ns(&mut self, bytes: u64, sharers: usize) -> f64 {
        self.l3_traffic += bytes;
        let share = self.l3_gbps / sharers.max(1) as f64;
        bytes as f64 / share
    }

    /// Time in nanoseconds to scrub `bytes` after a correctable L2 ECC
    /// error: the poisoned lines are re-read and re-written through one
    /// L2 port while the cores wait.
    pub fn ecc_scrub_ns(&mut self, bytes: u64) -> f64 {
        // Read + write-back through a single port.
        self.l2_transfer_ns(2 * bytes, 1)
    }

    /// Total HBM traffic so far, in bytes.
    pub fn l3_traffic(&self) -> u64 {
        self.l3_traffic
    }

    /// Total L2 traffic so far, in bytes.
    pub fn l2_traffic(&self) -> u64 {
        self.l2_traffic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_built_from_config() {
        let cfg = ChipConfig::dtu20();
        let mut m = MemoryHierarchy::new(&cfg);
        assert_eq!(m.l2_partitions(), 6);
        assert_eq!(m.l1(0).capacity(), 1024 * 1024);
        assert_eq!(m.l2(0).capacity(), 8 * 1024 * 1024);
        assert_eq!(m.l3().capacity(), 16 * 1024 * 1024 * 1024);
    }

    #[test]
    fn alloc_and_release_roundtrip() {
        let mut p = MemoryPool::new("t", 100);
        p.alloc(60).unwrap();
        assert_eq!(p.free(), 40);
        p.alloc(40).unwrap();
        assert!(p.alloc(1).is_err());
        p.release(100).unwrap();
        assert_eq!(p.used(), 0);
        assert_eq!(p.high_water(), 100);
        assert!(p.release(1).is_err());
    }

    #[test]
    fn oom_error_reports_numbers() {
        let mut p = MemoryPool::new("L1[core 3]", 10);
        let err = p.alloc(11).unwrap_err();
        assert_eq!(
            err,
            MemoryError::OutOfMemory {
                pool: "L1[core 3]".into(),
                requested: 11,
                free: 10
            }
        );
        assert!(err.to_string().contains("L1[core 3]"));
    }

    #[test]
    fn l2_ports_remove_interference() {
        let cfg = ChipConfig::dtu20();
        let mut m = MemoryHierarchy::new(&cfg);
        let alone = m.l2_transfer_ns(1_000_000, 1);
        let four = m.l2_transfer_ns(1_000_000, 4);
        // 4 cores, 4 ports: same per-core time.
        assert!((alone - four).abs() < 1e-9);
        let eight = m.l2_transfer_ns(1_000_000, 8);
        assert!(eight > four);
    }

    #[test]
    fn single_port_l2_serialises() {
        let mut cfg = ChipConfig::dtu20();
        cfg.features.multi_port_l2 = false;
        let mut m = MemoryHierarchy::new(&cfg);
        let alone = m.l2_transfer_ns(1_000_000, 1);
        let four = m.l2_transfer_ns(1_000_000, 4);
        assert!((four / alone - 4.0).abs() < 1e-9);
    }

    #[test]
    fn l3_fair_share() {
        let cfg = ChipConfig::dtu20();
        let mut m = MemoryHierarchy::new(&cfg);
        let alone = m.l3_transfer_ns(819_000_000, 1);
        assert!((alone - 1e6).abs() < 1.0); // 819 MB at 819 GB/s = 1 ms
        let shared = m.l3_transfer_ns(819_000_000, 3);
        assert!((shared / alone - 3.0).abs() < 1e-9);
        assert_eq!(m.l3_traffic(), 2 * 819_000_000);
    }

    #[test]
    fn traffic_counters_accumulate() {
        let cfg = ChipConfig::dtu20();
        let mut m = MemoryHierarchy::new(&cfg);
        m.l2_transfer_ns(100, 1);
        m.l2_transfer_ns(50, 2);
        assert_eq!(m.l2_traffic(), 150);
    }
}
