//! Chip configuration: topology, capacities, bandwidths, and feature flags.

use std::fmt;

/// Feature toggles for the DTU 2.0 enhancements listed in Table II.
///
/// Every flag corresponds to a hardware innovation the paper introduces
/// over DTU 1.0; the `repro_ablation` bench sweeps them individually to
/// quantify each row of the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureSet {
    /// Fine-grained VMM engine (vs coarse-grained GEMM on DTU 1.0).
    pub fine_grained_vmm: bool,
    /// Enhanced SFU accelerating ~10 transcendental functions.
    pub enhanced_sfu: bool,
    /// Instruction-buffer cache mode with user-controlled prefetch.
    pub instruction_cache: bool,
    /// 4 parallel read/write ports on the L2 shared memory.
    pub multi_port_l2: bool,
    /// Sparse data decompression during DMA transfer.
    pub sparse_dma: bool,
    /// Data broadcasting to multiple L2 destinations.
    pub dma_broadcast: bool,
    /// Repeat mode: one configuration drives N regular transactions.
    pub dma_repeat: bool,
    /// Direct L1 <-> L3 transfers (DTU 1.0 had to bounce through L2).
    pub l1_l3_direct: bool,
    /// N-to-M synchronisation patterns (DTU 1.0: 1-to-1 only).
    pub flexible_sync: bool,
    /// Hardware resource abstraction into isolated processing groups.
    pub resource_groups: bool,
    /// CPME/LPME dynamic power management.
    pub power_management: bool,
}

impl FeatureSet {
    /// All DTU 2.0 features enabled.
    pub fn dtu20() -> Self {
        FeatureSet {
            fine_grained_vmm: true,
            enhanced_sfu: true,
            instruction_cache: true,
            multi_port_l2: true,
            sparse_dma: true,
            dma_broadcast: true,
            dma_repeat: true,
            l1_l3_direct: true,
            flexible_sync: true,
            resource_groups: true,
            power_management: true,
        }
    }

    /// The DTU 1.0 feature level.
    pub fn dtu10() -> Self {
        FeatureSet {
            fine_grained_vmm: false,
            enhanced_sfu: false,
            instruction_cache: false,
            multi_port_l2: false,
            sparse_dma: false,
            dma_broadcast: false,
            dma_repeat: false,
            l1_l3_direct: false,
            flexible_sync: false,
            resource_groups: false,
            power_management: false,
        }
    }
}

impl Default for FeatureSet {
    fn default() -> Self {
        FeatureSet::dtu20()
    }
}

/// Full configuration of a simulated DTU chip.
///
/// The two presets encode Table I (i20/DTU 2.0) and §II-A (i10/DTU 1.0).
#[derive(Debug, Clone, PartialEq)]
pub struct ChipConfig {
    /// Human-readable chip name.
    pub name: String,
    /// Number of clusters on the SoC.
    pub clusters: usize,
    /// Compute cores per cluster.
    pub cores_per_cluster: usize,
    /// Processing groups per cluster (1 when `resource_groups` is off —
    /// the whole cluster is one scheduling domain).
    pub groups_per_cluster: usize,
    /// L1 data buffer per core, in KiB.
    pub l1_kib_per_core: usize,
    /// L2 shared memory per cluster, in MiB.
    pub l2_mib_per_cluster: usize,
    /// Parallel read/write ports per L2 partition.
    pub l2_ports: usize,
    /// L3 (HBM) capacity, in GiB.
    pub l3_gib: usize,
    /// L3 (HBM) bandwidth, in GB/s.
    pub l3_gb_per_s: f64,
    /// Per-L2-port bandwidth, in GB/s.
    pub l2_port_gb_per_s: f64,
    /// Instruction buffer capacity per core, in KiB.
    pub ibuf_kib: usize,
    /// Nominal core clock, in MHz.
    pub clock_mhz: u32,
    /// FP32 multiply-accumulates retired per core per cycle.
    pub macs_per_core_cycle_fp32: f64,
    /// Vector-ALU lanes (FP32 elements per cycle) per core.
    pub vector_lanes: usize,
    /// SFU transcendental evaluations per core per cycle.
    pub sfu_ops_per_cycle: f64,
    /// Fixed DMA configuration overhead per descriptor, in core cycles.
    pub dma_config_cycles: u64,
    /// Fixed per-kernel launch overhead (descriptor dispatch, pipeline
    /// fill/drain), in core cycles.
    pub kernel_launch_cycles: u64,
    /// Pipeline-ramp constant: per-group MAC count at which a kernel
    /// reaches 50% of peak utilisation. Small kernels cannot fill the
    /// wide VLIW pipelines.
    pub kernel_ramp_macs: f64,
    /// Board TDP, in watts.
    pub tdp_watts: f64,
    /// Enabled hardware features.
    pub features: FeatureSet,
}

impl ChipConfig {
    /// The DTU 2.0 / Cloudblazer i20 configuration (Table I, §IV).
    ///
    /// Peak FP32 = `2 · cores · macs/cycle · clock` =
    /// 2 · 24 · 476 · 1.4 GHz ≈ 32 TFLOPS, matching Table I.
    pub fn dtu20() -> Self {
        ChipConfig {
            name: "DTU 2.0 (Cloudblazer i20)".to_string(),
            clusters: 2,
            cores_per_cluster: 12,
            groups_per_cluster: 3,
            // DTU 1.0 had 256 KiB L1/core; 2.0 is 4x per core.
            l1_kib_per_core: 1024,
            // DTU 1.0: 4 MiB per cluster over 4 clusters = 16 MiB total;
            // 2.0 triples total L1/L2 capacity: 24 MiB per cluster.
            l2_mib_per_cluster: 24,
            l2_ports: 4,
            l3_gib: 16,
            l3_gb_per_s: 819.0,
            l2_port_gb_per_s: 256.0,
            ibuf_kib: 128,
            clock_mhz: 1_400,
            macs_per_core_cycle_fp32: 476.0,
            vector_lanes: 16,
            sfu_ops_per_cycle: 32.0,
            dma_config_cycles: 400,
            kernel_launch_cycles: 1_500,
            kernel_ramp_macs: 12.0e6,
            tdp_watts: 150.0,
            features: FeatureSet::dtu20(),
        }
    }

    /// The DTU 1.0 / Cloudblazer i10 configuration (§II-A).
    ///
    /// 32 cores in 4 clusters, 20 TFLOPS FP32, 512 GB/s HBM2.
    pub fn dtu10() -> Self {
        ChipConfig {
            name: "DTU 1.0 (Cloudblazer i10)".to_string(),
            clusters: 4,
            cores_per_cluster: 8,
            groups_per_cluster: 1,
            l1_kib_per_core: 256,
            l2_mib_per_cluster: 4,
            l2_ports: 1,
            l3_gib: 16,
            l3_gb_per_s: 512.0,
            l2_port_gb_per_s: 256.0,
            ibuf_kib: 64,
            clock_mhz: 1_250,
            // 2 · 32 · 250 · 1.25 GHz = 20 TFLOPS FP32.
            macs_per_core_cycle_fp32: 250.0,
            vector_lanes: 16,
            sfu_ops_per_cycle: 8.0,
            dma_config_cycles: 400,
            kernel_launch_cycles: 3_000,
            kernel_ramp_macs: 10.0e6,
            tdp_watts: 150.0,
            features: FeatureSet::dtu10(),
        }
    }

    /// Total compute cores on the chip.
    pub fn total_cores(&self) -> usize {
        self.clusters * self.cores_per_cluster
    }

    /// Total processing groups on the chip.
    pub fn total_groups(&self) -> usize {
        self.clusters * self.groups_per_cluster
    }

    /// Cores per processing group.
    pub fn cores_per_group(&self) -> usize {
        self.cores_per_cluster / self.groups_per_cluster
    }

    /// L2 capacity per processing group, in bytes.
    pub fn l2_bytes_per_group(&self) -> u64 {
        (self.l2_mib_per_cluster as u64 * 1024 * 1024) / self.groups_per_cluster as u64
    }

    /// L1 capacity per core, in bytes.
    pub fn l1_bytes_per_core(&self) -> u64 {
        self.l1_kib_per_core as u64 * 1024
    }

    /// L3 capacity in bytes.
    pub fn l3_bytes(&self) -> u64 {
        self.l3_gib as u64 * 1024 * 1024 * 1024
    }

    /// Peak FP32 throughput in TFLOPS.
    pub fn peak_fp32_tflops(&self) -> f64 {
        2.0 * self.total_cores() as f64
            * self.macs_per_core_cycle_fp32
            * self.clock_mhz as f64
            * 1e6
            / 1e12
    }

    /// Duration of one core cycle at the nominal clock, in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1e3 / self.clock_mhz as f64
    }

    /// Telemetry machine spec for roofline attribution over `groups`
    /// participating processing groups. `ops_multiplier` folds the
    /// datatype throughput ratio (e.g. 4× for fp16, Table I) into the
    /// MAC peak, since [`dtu_telemetry::Counter::Macs`] counts retired
    /// operations in the kernel's own datatype.
    pub fn machine_spec(&self, groups: usize, ops_multiplier: f64) -> dtu_telemetry::MachineSpec {
        let macs_per_ns_per_core =
            self.macs_per_core_cycle_fp32 * ops_multiplier * self.clock_mhz as f64 / 1e3;
        dtu_telemetry::MachineSpec {
            peak_macs_per_ns: groups as f64 * self.cores_per_group() as f64 * macs_per_ns_per_core,
            // GB/s is bytes-per-ns, both scale by 1e9.
            l3_bytes_per_ns: self.l3_gb_per_s,
            groups: groups as u32,
        }
    }

    /// Validates internal consistency (group divisibility, nonzero rates).
    pub fn validate(&self) -> Result<(), String> {
        if self.clusters == 0 || self.cores_per_cluster == 0 {
            return Err("chip must have at least one cluster and core".into());
        }
        if self.groups_per_cluster == 0
            || !self
                .cores_per_cluster
                .is_multiple_of(self.groups_per_cluster)
        {
            return Err(format!(
                "cores per cluster ({}) must divide evenly into groups ({})",
                self.cores_per_cluster, self.groups_per_cluster
            ));
        }
        if self.clock_mhz == 0 || self.macs_per_core_cycle_fp32 <= 0.0 {
            return Err("clock and MAC rate must be positive".into());
        }
        if self.l3_gb_per_s <= 0.0 || self.l2_port_gb_per_s <= 0.0 {
            return Err("bandwidths must be positive".into());
        }
        Ok(())
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        ChipConfig::dtu20()
    }
}

impl fmt::Display for ChipConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}x{} cores, {} groups, {:.0} TFLOPS FP32, {:.0} GB/s HBM",
            self.name,
            self.clusters,
            self.cores_per_cluster,
            self.total_groups(),
            self.peak_fp32_tflops(),
            self.l3_gb_per_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtu20_matches_table1() {
        let c = ChipConfig::dtu20();
        assert_eq!(c.total_cores(), 24);
        assert_eq!(c.clusters, 2);
        assert_eq!(c.groups_per_cluster, 3);
        assert_eq!(c.cores_per_group(), 4);
        assert_eq!(c.l3_gib, 16);
        assert_eq!(c.l3_gb_per_s, 819.0);
        assert_eq!(c.l2_ports, 4);
        let tflops = c.peak_fp32_tflops();
        assert!((tflops - 32.0).abs() < 1.0, "FP32 peak {tflops} != ~32");
        c.validate().unwrap();
    }

    #[test]
    fn dtu10_matches_section2() {
        let c = ChipConfig::dtu10();
        assert_eq!(c.total_cores(), 32);
        assert_eq!(c.clusters, 4);
        assert_eq!(c.l3_gb_per_s, 512.0);
        assert_eq!(c.l1_kib_per_core, 256);
        let tflops = c.peak_fp32_tflops();
        assert!((tflops - 20.0).abs() < 0.5, "FP32 peak {tflops} != ~20");
        c.validate().unwrap();
    }

    #[test]
    fn capacity_ratios_match_table2() {
        let v1 = ChipConfig::dtu10();
        let v2 = ChipConfig::dtu20();
        // "4x/6x larger capacities of the L1/L2 memory per compute
        // core/cluster" (Table II).
        assert_eq!(v2.l1_kib_per_core / v1.l1_kib_per_core, 4);
        assert_eq!(v2.l2_mib_per_cluster / v1.l2_mib_per_cluster, 6);
        // "1.6x higher bandwidth".
        assert!((v2.l3_gb_per_s / v1.l3_gb_per_s - 1.6) < 0.01);
    }

    #[test]
    fn total_l1_l2_capacity_tripled() {
        let v1 = ChipConfig::dtu10();
        let v2 = ChipConfig::dtu20();
        let l1_total_1 = v1.total_cores() * v1.l1_kib_per_core;
        let l1_total_2 = v2.total_cores() * v2.l1_kib_per_core;
        assert_eq!(l1_total_2 / l1_total_1, 3);
        let l2_total_1 = v1.clusters * v1.l2_mib_per_cluster;
        let l2_total_2 = v2.clusters * v2.l2_mib_per_cluster;
        assert_eq!(l2_total_2 / l2_total_1, 3);
    }

    #[test]
    fn l2_partitioning() {
        let c = ChipConfig::dtu20();
        assert_eq!(c.l2_bytes_per_group(), 8 * 1024 * 1024);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = ChipConfig::dtu20();
        c.groups_per_cluster = 5; // 12 % 5 != 0
        assert!(c.validate().is_err());
        let mut c = ChipConfig::dtu20();
        c.clock_mhz = 0;
        assert!(c.validate().is_err());
        let mut c = ChipConfig::dtu20();
        c.clusters = 0;
        assert!(c.validate().is_err());
        let mut c = ChipConfig::dtu20();
        c.l3_gb_per_s = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn display_mentions_name_and_cores() {
        let s = ChipConfig::dtu20().to_string();
        assert!(s.contains("i20"));
        assert!(s.contains("2x12"));
    }

    #[test]
    fn cycle_time() {
        let c = ChipConfig::dtu20();
        assert!((c.cycle_ns() - 0.714).abs() < 0.01);
    }
}
