//! The special function unit (SPU): LUT-plus-quadratic-Taylor
//! transcendentals.
//!
//! §IV-A2: "the SPU executes efficient calculations on transcendental
//! functions by computing the quadratic Taylor polynomial, according to
//! the derivative values found in the Lookup Table. It supports activation
//! functions such as Softplus, Tanh, Sigmoid, Gelu, Swish, Softmax, etc."
//!
//! We implement exactly that mechanism: each function keeps a table of
//! `(f(x₀), f'(x₀), f''(x₀))` entries at evenly spaced anchor points and
//! evaluates `f(x) ≈ f(x₀) + f'(x₀)·dx + ½·f''(x₀)·dx²`. Inputs beyond
//! the table range use the function's saturation behaviour. Accuracy tests
//! bound the approximation error against libm references.

use dtu_isa::SfuFunc;
use dtu_tensor::Tensor;
use std::error::Error;
use std::fmt;

/// Errors from SPU evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpuError {
    /// The SPU is disabled (DTU 1.0 ablation without the enhanced SFU) for
    /// this function.
    Unsupported {
        /// The function that is not accelerated.
        func: SfuFunc,
    },
}

impl fmt::Display for SpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpuError::Unsupported { func } => {
                write!(f, "SFU does not accelerate {func:?} on this chip")
            }
        }
    }
}

impl Error for SpuError {}

/// One lookup-table entry: value and first two derivatives at an anchor.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LutEntry {
    f: f64,
    d1: f64,
    d2: f64,
}

/// A per-function lookup table over `[lo, hi]` with uniform spacing.
#[derive(Debug, Clone)]
struct Lut {
    lo: f64,
    step: f64,
    entries: Vec<LutEntry>,
    /// Saturation values returned beyond the table range (lo side, hi side).
    sat: (f64, f64),
    /// Whether out-of-range, instead of saturating to constants, continues
    /// linearly with slope 1 from the range edge (for Softplus/Gelu/Swish,
    /// which behave like `x` for large `x`).
    linear_hi: bool,
}

impl Lut {
    fn build(func: SfuFunc, lo: f64, hi: f64, n: usize, reference: impl Fn(f64) -> f64) -> Self {
        let step = (hi - lo) / (n - 1) as f64;
        let h = step * 1e-3;
        let entries = (0..n)
            .map(|i| {
                let x = lo + i as f64 * step;
                let f0 = reference(x);
                let d1 = (reference(x + h) - reference(x - h)) / (2.0 * h);
                let d2 = (reference(x + h) - 2.0 * f0 + reference(x - h)) / (h * h);
                LutEntry { f: f0, d1, d2 }
            })
            .collect();
        let linear_hi = matches!(func, SfuFunc::Softplus | SfuFunc::Gelu | SfuFunc::Swish);
        Lut {
            lo,
            step,
            entries,
            sat: (reference(lo), reference(hi)),
            linear_hi,
        }
    }

    fn eval(&self, x: f64) -> f64 {
        let hi = self.lo + self.step * (self.entries.len() - 1) as f64;
        if x < self.lo {
            return self.sat.0;
        }
        if x > hi {
            return if self.linear_hi {
                // f(x) ≈ f(hi) + (x - hi): identity-like tail.
                self.sat.1 + (x - hi)
            } else {
                self.sat.1
            };
        }
        let pos = (x - self.lo) / self.step;
        let idx = (pos.round() as usize).min(self.entries.len() - 1);
        let x0 = self.lo + idx as f64 * self.step;
        let dx = x - x0;
        let e = self.entries[idx];
        e.f + e.d1 * dx + 0.5 * e.d2 * dx * dx
    }
}

/// The special function unit of one compute core.
#[derive(Debug, Clone)]
pub struct Spu {
    enhanced: bool,
    luts: Vec<(SfuFunc, Lut)>,
    ops: u64,
}

impl Spu {
    /// Number of anchor points per function table.
    const LUT_POINTS: usize = 256;

    /// Creates an SPU. `enhanced` selects the DTU 2.0 unit that
    /// accelerates all ten [`SfuFunc`]s; the DTU 1.0 unit accelerates only
    /// the four basic ones (Exp, Ln, Rsqrt, Sigmoid).
    pub fn new(enhanced: bool) -> Self {
        let mut luts = Vec::new();
        for func in SfuFunc::ALL {
            if !enhanced
                && !matches!(
                    func,
                    SfuFunc::Exp | SfuFunc::Ln | SfuFunc::Rsqrt | SfuFunc::Sigmoid
                )
            {
                continue;
            }
            let lut = match func {
                SfuFunc::Exp => Lut::build(func, -20.0, 20.0, Self::LUT_POINTS * 4, f64::exp),
                SfuFunc::Ln => Lut::build(func, 1e-6, 100.0, Self::LUT_POINTS * 16, f64::ln),
                SfuFunc::Rsqrt => {
                    Lut::build(func, 1e-6, 100.0, Self::LUT_POINTS * 16, |x| 1.0 / x.sqrt())
                }
                SfuFunc::Tanh => Lut::build(func, -8.0, 8.0, Self::LUT_POINTS * 4, f64::tanh),
                SfuFunc::Sigmoid => Lut::build(func, -16.0, 16.0, Self::LUT_POINTS, |x| {
                    1.0 / (1.0 + (-x).exp())
                }),
                SfuFunc::Softplus => Lut::build(func, -16.0, 16.0, Self::LUT_POINTS, |x| {
                    if x > 30.0 {
                        x
                    } else {
                        (1.0 + x.exp()).ln()
                    }
                }),
                SfuFunc::Gelu => Lut::build(func, -8.0, 8.0, Self::LUT_POINTS, |x| {
                    0.5 * x * (1.0 + erf_ref(x / std::f64::consts::SQRT_2))
                }),
                SfuFunc::Swish => Lut::build(func, -16.0, 16.0, Self::LUT_POINTS, |x| {
                    x / (1.0 + (-x).exp())
                }),
                SfuFunc::Erf => Lut::build(func, -4.0, 4.0, Self::LUT_POINTS, erf_ref),
                SfuFunc::Sin => Lut::build(
                    func,
                    -std::f64::consts::PI,
                    std::f64::consts::PI,
                    Self::LUT_POINTS,
                    f64::sin,
                ),
            };
            luts.push((func, lut));
        }
        Spu {
            enhanced,
            luts,
            ops: 0,
        }
    }

    /// Whether this is the enhanced (DTU 2.0) unit.
    pub fn is_enhanced(&self) -> bool {
        self.enhanced
    }

    /// Transcendental evaluations performed so far (timing-layer hook).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Evaluates one transcendental.
    ///
    /// # Errors
    ///
    /// [`SpuError::Unsupported`] when the chip's SFU lacks the function.
    pub fn eval(&mut self, func: SfuFunc, x: f32) -> Result<f32, SpuError> {
        let lut = self
            .luts
            .iter()
            .find(|(f, _)| *f == func)
            .map(|(_, l)| l)
            .ok_or(SpuError::Unsupported { func })?;
        self.ops += 1;
        // Swish and Gelu tails on the negative side go to 0; Sin wraps.
        let xv = if func == SfuFunc::Sin {
            // Range-reduce into [-π, π].
            let two_pi = 2.0 * std::f64::consts::PI;
            let mut r = (x as f64) % two_pi;
            if r > std::f64::consts::PI {
                r -= two_pi;
            }
            if r < -std::f64::consts::PI {
                r += two_pi;
            }
            r
        } else {
            x as f64
        };
        Ok(lut.eval(xv) as f32)
    }

    /// Evaluates a transcendental over a whole tensor.
    ///
    /// # Errors
    ///
    /// As for [`Spu::eval`].
    pub fn eval_tensor(&mut self, func: SfuFunc, t: &Tensor) -> Result<Tensor, SpuError> {
        // Fail fast on unsupported functions before walking the data.
        if !self.luts.iter().any(|(f, _)| *f == func) {
            return Err(SpuError::Unsupported { func });
        }
        let mut out = t.clone();
        for v in out.data_mut() {
            *v = self.eval(func, *v)?;
        }
        Ok(out)
    }
}

impl Default for Spu {
    fn default() -> Self {
        Spu::new(true)
    }
}

/// Reference erf for LUT construction (Abramowitz–Stegun 7.1.26, |ε|<1.5e-7).
fn erf_ref(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_rel_err(
        spu: &mut Spu,
        func: SfuFunc,
        reference: impl Fn(f64) -> f64,
        lo: f64,
        hi: f64,
    ) -> f64 {
        let mut worst: f64 = 0.0;
        for i in 0..2000 {
            let x = lo + (hi - lo) * i as f64 / 1999.0;
            let got = spu.eval(func, x as f32).unwrap() as f64;
            let want = reference(x);
            let err = if want.abs() > 1e-2 {
                ((got - want) / want).abs()
            } else {
                (got - want).abs()
            };
            worst = worst.max(err);
        }
        worst
    }

    #[test]
    fn tanh_accuracy() {
        let mut spu = Spu::default();
        let e = max_rel_err(&mut spu, SfuFunc::Tanh, f64::tanh, -6.0, 6.0);
        assert!(e < 1e-3, "tanh error {e}");
    }

    #[test]
    fn sigmoid_accuracy_and_range() {
        let mut spu = Spu::default();
        let sig = |x: f64| 1.0 / (1.0 + (-x).exp());
        let e = max_rel_err(&mut spu, SfuFunc::Sigmoid, sig, -10.0, 10.0);
        assert!(e < 1e-3, "sigmoid error {e}");
        // Saturation beyond range.
        assert!((spu.eval(SfuFunc::Sigmoid, 100.0).unwrap() - 1.0).abs() < 1e-4);
        assert!(spu.eval(SfuFunc::Sigmoid, -100.0).unwrap().abs() < 1e-4);
    }

    #[test]
    fn exp_accuracy() {
        let mut spu = Spu::default();
        let e = max_rel_err(&mut spu, SfuFunc::Exp, f64::exp, -10.0, 10.0);
        assert!(e < 1e-3, "exp error {e}");
    }

    #[test]
    fn gelu_swish_softplus_tails() {
        let mut spu = Spu::default();
        // Large positive: all three behave like identity.
        for f in [SfuFunc::Gelu, SfuFunc::Swish, SfuFunc::Softplus] {
            let y = spu.eval(f, 50.0).unwrap();
            assert!((y - 50.0).abs() / 50.0 < 0.2, "{f:?} tail: {y}");
        }
        // Large negative: gelu and swish go to ~0.
        assert!(spu.eval(SfuFunc::Gelu, -50.0).unwrap().abs() < 0.01);
        assert!(spu.eval(SfuFunc::Swish, -50.0).unwrap().abs() < 0.01);
    }

    #[test]
    fn erf_accuracy() {
        let mut spu = Spu::default();
        let e = max_rel_err(&mut spu, SfuFunc::Erf, erf_ref, -3.0, 3.0);
        assert!(e < 1e-3, "erf error {e}");
    }

    #[test]
    fn sin_range_reduction() {
        let mut spu = Spu::default();
        let x = 7.5f32; // > π
        let got = spu.eval(SfuFunc::Sin, x).unwrap();
        assert!((got as f64 - (x as f64).sin()).abs() < 1e-2);
    }

    #[test]
    fn rsqrt_and_ln() {
        let mut spu = Spu::default();
        for x in [0.5f32, 1.0, 2.0, 10.0, 50.0] {
            let r = spu.eval(SfuFunc::Rsqrt, x).unwrap();
            assert!(
                ((r as f64) - 1.0 / (x as f64).sqrt()).abs() < 2e-3,
                "rsqrt {x}"
            );
            let l = spu.eval(SfuFunc::Ln, x).unwrap();
            assert!(((l as f64) - (x as f64).ln()).abs() < 2e-3, "ln {x}");
        }
    }

    #[test]
    fn basic_spu_lacks_enhanced_functions() {
        let mut spu = Spu::new(false);
        assert!(!spu.is_enhanced());
        assert!(spu.eval(SfuFunc::Exp, 1.0).is_ok());
        assert!(matches!(
            spu.eval(SfuFunc::Gelu, 1.0),
            Err(SpuError::Unsupported { .. })
        ));
    }

    #[test]
    fn eval_tensor_applies_elementwise_and_counts_ops() {
        let mut spu = Spu::default();
        let t = Tensor::from_vec(vec![-1.0, 0.0, 1.0]);
        let out = spu.eval_tensor(SfuFunc::Tanh, &t).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.data()[1].abs() < 1e-4);
        assert_eq!(spu.ops(), 3);
    }

    #[test]
    fn eval_tensor_unsupported_fails_fast() {
        let mut spu = Spu::new(false);
        let t = Tensor::from_vec(vec![1.0; 100]);
        assert!(spu.eval_tensor(SfuFunc::Swish, &t).is_err());
        assert_eq!(spu.ops(), 0);
    }

    #[test]
    fn softmax_via_spu_primitives() {
        // Softmax is exp + normalise; check the SPU pipeline composes.
        let mut spu = Spu::default();
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0]);
        let exps = spu.eval_tensor(SfuFunc::Exp, &logits).unwrap();
        let z: f32 = exps.data().iter().sum();
        let probs: Vec<f32> = exps.data().iter().map(|&e| e / z).collect();
        let s: f32 = probs.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(probs[2] > probs[1] && probs[1] > probs[0]);
    }
}
