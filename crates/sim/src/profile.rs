//! Execution profiling: the per-kernel timeline the software stack's
//! profiler (Fig. 11) exposes.
//!
//! When tracing is enabled, [`crate::Chip::run_traced`] records one
//! [`TraceEvent`] per command with start/end times, the owning group,
//! and the DVFS point, and the [`Timeline`] renders them as a text
//! profile or exports Chrome-trace JSON (load it in `chrome://tracing`
//! or Perfetto).

use crate::program::GroupId;
use dtu_telemetry::{Layer, Span, SpanKind};
use std::fmt;

/// What kind of work a trace event covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Kernel execution on the group's cores.
    Kernel,
    /// DMA transfer.
    Dma,
    /// Kernel-code load stall (instruction-cache miss).
    CodeLoad,
    /// Synchronisation wait.
    SyncWait,
}

impl TraceKind {
    /// The telemetry [`SpanKind`] this trace kind corresponds to.
    pub fn span_kind(self) -> SpanKind {
        match self {
            TraceKind::Kernel => SpanKind::Kernel,
            TraceKind::Dma => SpanKind::Dma,
            TraceKind::CodeLoad => SpanKind::CodeLoad,
            TraceKind::SyncWait => SpanKind::SyncWait,
        }
    }

    /// The trace kind for a telemetry [`SpanKind`], for sim-level span
    /// kinds only.
    pub fn from_span_kind(kind: SpanKind) -> Option<TraceKind> {
        match kind {
            SpanKind::Kernel => Some(TraceKind::Kernel),
            SpanKind::Dma => Some(TraceKind::Dma),
            SpanKind::CodeLoad => Some(TraceKind::CodeLoad),
            SpanKind::SyncWait => Some(TraceKind::SyncWait),
            _ => None,
        }
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::Kernel => "kernel",
            TraceKind::Dma => "dma",
            TraceKind::CodeLoad => "code-load",
            TraceKind::SyncWait => "sync-wait",
        };
        write!(f, "{s}")
    }
}

/// One profiled interval.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Work kind.
    pub kind: TraceKind,
    /// Human-readable label (kernel name, DMA path, event id).
    pub label: String,
    /// Owning processing group.
    pub group: GroupId,
    /// Start time, ns.
    pub start_ns: f64,
    /// End time, ns.
    pub end_ns: f64,
    /// Core frequency during the interval, MHz (0 for non-kernel events).
    pub freq_mhz: u32,
}

impl TraceEvent {
    /// Interval length, ns.
    pub fn duration_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }
}

/// A completed run's event timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    events: Vec<TraceEvent>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Builds a timeline from a telemetry span stream. Only sim-level
    /// spans (kernel / DMA / code-load / sync-wait) participate; the
    /// span's track is decoded back into a [`GroupId`] using
    /// `groups_per_cluster`.
    pub fn from_spans(spans: &[Span], groups_per_cluster: usize) -> Timeline {
        let gpc = groups_per_cluster.max(1);
        let mut t = Timeline::new();
        for s in spans {
            if s.layer != Layer::Sim {
                continue;
            }
            let Some(kind) = TraceKind::from_span_kind(s.kind) else {
                continue;
            };
            let flat = s.track as usize;
            t.push(TraceEvent {
                kind,
                label: s.label.clone(),
                group: GroupId::new(flat / gpc, flat % gpc),
                start_ns: s.start_ns,
                end_ns: s.end_ns,
                freq_mhz: s.freq_mhz,
            });
        }
        t
    }

    /// The telemetry spans equivalent to this timeline (the inverse of
    /// [`Timeline::from_spans`], minus counters, which timelines do not
    /// carry).
    pub fn to_spans(&self, groups_per_cluster: usize) -> Vec<Span> {
        self.events
            .iter()
            .map(|e| {
                Span::new(
                    e.kind.span_kind(),
                    Layer::Sim,
                    (e.group.cluster * groups_per_cluster + e.group.group) as u32,
                    e.label.clone(),
                    e.start_ns,
                    e.end_ns,
                )
                .with_freq(e.freq_mhz)
            })
            .collect()
    }

    /// Records an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The recorded events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Total time attributed to a kind across all groups, ns.
    pub fn total_ns(&self, kind: TraceKind) -> f64 {
        self.of_kind(kind).map(TraceEvent::duration_ns).sum()
    }

    /// The `k` longest events of a kind (the profiler's "hot kernels"
    /// view), sorted by descending duration.
    pub fn hottest(&self, kind: TraceKind, k: usize) -> Vec<&TraceEvent> {
        let mut v: Vec<&TraceEvent> = self.of_kind(kind).collect();
        v.sort_by(|a, b| {
            b.duration_ns()
                .partial_cmp(&a.duration_ns())
                .expect("durations are finite")
        });
        v.truncate(k);
        v
    }

    /// Renders a text profile: per-kind totals plus the hottest kernels.
    pub fn report(&self, top_k: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{:<12} {:>12} {:>8}", "kind", "total (us)", "events");
        for kind in [
            TraceKind::Kernel,
            TraceKind::Dma,
            TraceKind::CodeLoad,
            TraceKind::SyncWait,
        ] {
            let _ = writeln!(
                out,
                "{:<12} {:>12.2} {:>8}",
                kind.to_string(),
                self.total_ns(kind) / 1e3,
                self.of_kind(kind).count()
            );
        }
        let _ = writeln!(out, "\nhottest kernels:");
        for e in self.hottest(TraceKind::Kernel, top_k) {
            let _ = writeln!(
                out,
                "  {:>10.2} us  {}  [{} @ {} MHz]",
                e.duration_ns() / 1e3,
                e.label,
                e.group,
                e.freq_mhz
            );
        }
        out
    }

    /// Exports the timeline as Chrome-trace JSON (the `traceEvents`
    /// array format understood by `chrome://tracing` and Perfetto),
    /// through the shared `dtu-telemetry` exporter: `tid` is the flat
    /// processing-group index, `ts`/`dur` are microseconds, and labels
    /// are properly JSON-escaped.
    pub fn to_chrome_trace(&self) -> String {
        // Timelines don't know the cluster geometry; flatten with a
        // stride wide enough for any configured cluster.
        let gpc = self
            .events
            .iter()
            .map(|e| e.group.group + 1)
            .max()
            .unwrap_or(1);
        dtu_telemetry::chrome::export(&self.to_spans(gpc), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceKind, label: &str, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            kind,
            label: label.into(),
            group: GroupId::new(0, 0),
            start_ns: start,
            end_ns: end,
            freq_mhz: 1400,
        }
    }

    #[test]
    fn totals_and_counts() {
        let mut t = Timeline::new();
        t.push(ev(TraceKind::Kernel, "conv", 0.0, 100.0));
        t.push(ev(TraceKind::Kernel, "fc", 100.0, 150.0));
        t.push(ev(TraceKind::Dma, "L3->L2", 0.0, 30.0));
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_ns(TraceKind::Kernel), 150.0);
        assert_eq!(t.total_ns(TraceKind::Dma), 30.0);
        assert_eq!(t.total_ns(TraceKind::SyncWait), 0.0);
    }

    #[test]
    fn hottest_sorts_descending() {
        let mut t = Timeline::new();
        t.push(ev(TraceKind::Kernel, "small", 0.0, 10.0));
        t.push(ev(TraceKind::Kernel, "big", 0.0, 100.0));
        t.push(ev(TraceKind::Kernel, "mid", 0.0, 50.0));
        let hot = t.hottest(TraceKind::Kernel, 2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].label, "big");
        assert_eq!(hot[1].label, "mid");
    }

    #[test]
    fn report_contains_sections() {
        let mut t = Timeline::new();
        t.push(ev(TraceKind::Kernel, "conv3x3+bn+relu", 0.0, 42_000.0));
        let r = t.report(5);
        assert!(r.contains("kernel"));
        assert!(r.contains("conv3x3+bn+relu"));
        assert!(r.contains("42.00"));
    }

    #[test]
    fn chrome_trace_is_wellformed_json_array() {
        let mut t = Timeline::new();
        t.push(ev(TraceKind::Kernel, "k\"quoted\"", 1000.0, 2000.0));
        t.push(ev(TraceKind::Dma, "L3->L2", 0.0, 500.0));
        let json = t.to_chrome_trace();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("k\\\"quoted\\\""), "labels are JSON-escaped");
        assert_eq!(json.matches("{\"name\"").count(), 2);
    }

    #[test]
    fn span_round_trip_preserves_events() {
        let mut t = Timeline::new();
        t.push(ev(TraceKind::Kernel, "conv", 0.0, 100.0));
        t.push(ev(TraceKind::SyncWait, "event 3", 100.0, 120.0));
        let spans = t.to_spans(4);
        let back = Timeline::from_spans(&spans, 4);
        assert_eq!(back, t);
    }

    #[test]
    fn empty_timeline() {
        let t = Timeline::new();
        assert!(t.is_empty());
        assert_eq!(t.to_chrome_trace(), "[]");
    }
}
