//! The DMA engine: transfer descriptors, legality, timing, and the
//! functional application of on-the-fly transforms.
//!
//! §IV-C of the paper. Key behaviours modelled:
//!
//! * tensor layout transformation during transfer (pad / slice /
//!   transpose / concat), delegated to `dtu-tensor`;
//! * sparse decompression on the fly ([`dtu_tensor::SparseFormat`]):
//!   compressed bytes cross the wire, dense bytes land at the
//!   destination;
//! * direct L1 ↔ L3 transfers (new in DTU 2.0; DTU 1.0 must bounce
//!   through L2);
//! * broadcast to the 3 processing-group L2 partitions of a cluster in
//!   one transaction;
//! * *repeat mode* (Fig. 6): one configuration drives `n` transactions
//!   with a regular stride, eliminating `(n-1)/n` of the configuration
//!   overhead.

use crate::config::ChipConfig;
use dtu_tensor::{
    compress, compressed_wire_bytes, sparsity, SparseFormat, Tensor, TensorError, TransformOp,
};
use std::error::Error;
use std::fmt;

/// A level of the memory hierarchy, as a DMA endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemLevel {
    /// Per-core L1 data buffer.
    L1,
    /// Per-group L2 shared memory.
    L2,
    /// HBM.
    L3,
    /// Host memory over PCIe.
    Host,
}

impl fmt::Display for MemLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemLevel::L1 => "L1",
            MemLevel::L2 => "L2",
            MemLevel::L3 => "L3",
            MemLevel::Host => "Host",
        };
        write!(f, "{s}")
    }
}

/// A source→destination pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DmaPath {
    /// Where bytes come from.
    pub src: MemLevel,
    /// Where bytes go.
    pub dst: MemLevel,
}

impl DmaPath {
    /// Creates a path.
    pub const fn new(src: MemLevel, dst: MemLevel) -> Self {
        DmaPath { src, dst }
    }

    /// Whether the path touches HBM.
    pub fn touches_l3(self) -> bool {
        self.src == MemLevel::L3 || self.dst == MemLevel::L3
    }

    /// Whether the path crosses PCIe.
    pub fn crosses_pcie(self) -> bool {
        self.src == MemLevel::Host || self.dst == MemLevel::Host
    }
}

impl fmt::Display for DmaPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.src, self.dst)
    }
}

/// Errors from DMA configuration or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum DmaError {
    /// The path is illegal on this chip generation.
    IllegalPath {
        /// The rejected path.
        path: DmaPath,
        /// Why.
        reason: String,
    },
    /// A feature required by the descriptor is disabled.
    FeatureDisabled {
        /// Description.
        what: String,
    },
    /// Repeat mode needs at least one transaction.
    EmptyRepeat,
    /// The functional transform failed.
    Transform(TensorError),
}

impl fmt::Display for DmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmaError::IllegalPath { path, reason } => {
                write!(f, "illegal DMA path {path}: {reason}")
            }
            DmaError::FeatureDisabled { what } => write!(f, "DMA feature disabled: {what}"),
            DmaError::EmptyRepeat => write!(f, "repeat mode with zero transactions"),
            DmaError::Transform(e) => write!(f, "transform failed: {e}"),
        }
    }
}

impl Error for DmaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DmaError::Transform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DmaError {
    fn from(e: TensorError) -> Self {
        DmaError::Transform(e)
    }
}

/// One DMA transfer descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct DmaDescriptor {
    /// Transfer path.
    pub path: DmaPath,
    /// Payload size at the destination, in bytes (dense size).
    pub bytes: u64,
    /// Layout transform applied on the fly.
    pub transform: TransformOp,
    /// Sparse wire format.
    pub sparse: SparseFormat,
    /// Fan-out: number of identical L2 destinations written at once
    /// (1 = normal transfer; 3 = full-cluster broadcast).
    pub broadcast: usize,
    /// Repeat count: number of transactions this descriptor triggers
    /// (repeat mode when > 1).
    pub repeat: usize,
    /// Fraction of the payload that is zero, when known (drives the
    /// sparse-wire-bytes estimate for descriptor-only transfers).
    pub zero_fraction: f64,
}

impl DmaDescriptor {
    /// A plain 1-shot dense copy.
    pub fn copy(path: DmaPath, bytes: u64) -> Self {
        DmaDescriptor {
            path,
            bytes,
            transform: TransformOp::Identity,
            sparse: SparseFormat::Dense,
            broadcast: 1,
            repeat: 1,
            zero_fraction: 0.0,
        }
    }

    /// Bytes that actually cross the interconnect for one transaction.
    ///
    /// Sparse transfers move the compressed size (bitmap overhead plus the
    /// non-zero payload); broadcast writes the payload once per
    /// destination at the L2 side but reads the source once.
    pub fn wire_bytes(&self) -> u64 {
        match self.sparse {
            SparseFormat::Dense => self.bytes,
            SparseFormat::BitmapBlock => {
                let elems = self.bytes / 4;
                let blocks = elems.div_ceil(64);
                let nonzero = ((elems as f64) * (1.0 - self.zero_fraction)).ceil() as u64;
                blocks * 8 + nonzero * 4
            }
        }
    }
}

/// A completed transfer's accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaCompletion {
    /// Nanoseconds the transfer occupied the engine.
    pub duration_ns: f64,
    /// Of that, nanoseconds spent on descriptor configuration.
    pub config_ns: f64,
    /// Bytes that crossed the interconnect.
    pub wire_bytes: u64,
    /// Bytes that landed at destinations (dense, × broadcast fan-out).
    pub delivered_bytes: u64,
}

/// One processing group's DMA engine (timing model + functional hooks).
#[derive(Debug, Clone)]
pub struct DmaEngine {
    l1_l3_direct: bool,
    sparse_enabled: bool,
    broadcast_enabled: bool,
    repeat_enabled: bool,
    config_ns: f64,
    l3_gbps: f64,
    l2_gbps: f64,
    pcie_gbps: f64,
    /// Totals for reporting.
    transfers: u64,
    wire_bytes: u64,
    config_time_ns: f64,
    busy_ns: f64,
}

impl DmaEngine {
    /// Builds a group DMA engine from the chip config.
    pub fn new(cfg: &ChipConfig) -> Self {
        DmaEngine {
            l1_l3_direct: cfg.features.l1_l3_direct,
            sparse_enabled: cfg.features.sparse_dma,
            broadcast_enabled: cfg.features.dma_broadcast,
            repeat_enabled: cfg.features.dma_repeat,
            config_ns: cfg.dma_config_cycles as f64 * cfg.cycle_ns(),
            l3_gbps: cfg.l3_gb_per_s,
            l2_gbps: cfg.l2_port_gb_per_s,
            pcie_gbps: 64.0,
            transfers: 0,
            wire_bytes: 0,
            config_time_ns: 0.0,
            busy_ns: 0.0,
        }
    }

    /// Validates a descriptor against this chip's capabilities.
    ///
    /// # Errors
    ///
    /// [`DmaError::IllegalPath`] for L1↔L3 on chips without the direct
    /// path and for Host↔L1 (never supported); [`DmaError::FeatureDisabled`]
    /// for sparse/broadcast/repeat descriptors on chips lacking them;
    /// [`DmaError::EmptyRepeat`] for a zero repeat count.
    pub fn check(&self, d: &DmaDescriptor) -> Result<(), DmaError> {
        let p = d.path;
        if (p.src == MemLevel::Host && p.dst == MemLevel::L1)
            || (p.src == MemLevel::L1 && p.dst == MemLevel::Host)
        {
            return Err(DmaError::IllegalPath {
                path: p,
                reason: "host transfers must target L3".into(),
            });
        }
        let is_l1_l3 = (p.src == MemLevel::L1 && p.dst == MemLevel::L3)
            || (p.src == MemLevel::L3 && p.dst == MemLevel::L1);
        if is_l1_l3 && !self.l1_l3_direct {
            return Err(DmaError::IllegalPath {
                path: p,
                reason: "direct L1<->L3 requires DTU 2.0 (bounce through L2 on 1.0)".into(),
            });
        }
        if d.sparse == SparseFormat::BitmapBlock && !self.sparse_enabled {
            return Err(DmaError::FeatureDisabled {
                what: "sparse decompression".into(),
            });
        }
        if d.broadcast > 1 {
            if !self.broadcast_enabled {
                return Err(DmaError::FeatureDisabled {
                    what: "L2 broadcast".into(),
                });
            }
            if d.path.dst != MemLevel::L2 {
                return Err(DmaError::IllegalPath {
                    path: p,
                    reason: "broadcast destinations must be L2 partitions".into(),
                });
            }
        }
        if d.repeat == 0 {
            return Err(DmaError::EmptyRepeat);
        }
        if d.repeat > 1 && !self.repeat_enabled {
            return Err(DmaError::FeatureDisabled {
                what: "repeat mode".into(),
            });
        }
        Ok(())
    }

    /// Bandwidth of the slowest hop on a path, GB/s.
    fn path_gbps(&self, path: DmaPath) -> f64 {
        if path.crosses_pcie() {
            self.pcie_gbps
        } else if path.touches_l3() {
            self.l3_gbps
        } else {
            self.l2_gbps
        }
    }

    /// Executes a descriptor in the timing model and returns its
    /// accounting. `bw_share` divides the path bandwidth among concurrent
    /// users (supplied by the chip scheduler).
    ///
    /// Repeat mode charges ONE configuration for all `repeat`
    /// transactions; normal mode charges one per transaction (Fig. 6).
    ///
    /// # Errors
    ///
    /// As for [`DmaEngine::check`].
    pub fn execute(
        &mut self,
        d: &DmaDescriptor,
        bw_share: usize,
    ) -> Result<DmaCompletion, DmaError> {
        self.check(d)?;
        let configs = if d.repeat > 1 { 1 } else { d.repeat } as f64;
        let config_ns = if d.repeat > 1 {
            self.config_ns
        } else {
            self.config_ns * configs
        };
        // Per-transaction wire bytes and transfer time.
        let wire_per_txn = d.wire_bytes();
        let gbps = self.path_gbps(d.path) / bw_share.max(1) as f64;
        let move_ns_per_txn = wire_per_txn as f64 / gbps;
        // Broadcast: destination write happens in parallel across
        // partitions, so it does not multiply time (but multiplies
        // delivered bytes).
        let total_ns = config_ns + move_ns_per_txn * d.repeat as f64;
        let wire_total = wire_per_txn * d.repeat as u64;
        self.transfers += d.repeat as u64;
        self.wire_bytes += wire_total;
        self.config_time_ns += config_ns;
        self.busy_ns += total_ns;
        Ok(DmaCompletion {
            duration_ns: total_ns,
            config_ns,
            wire_bytes: wire_total,
            delivered_bytes: d.bytes * d.repeat as u64 * d.broadcast as u64,
        })
    }

    /// Executes the same payload as `repeat` separate normal-mode
    /// descriptors — the Fig. 6 baseline for the repeat-mode comparison.
    ///
    /// # Errors
    ///
    /// As for [`DmaEngine::check`].
    pub fn execute_without_repeat(
        &mut self,
        d: &DmaDescriptor,
        bw_share: usize,
    ) -> Result<DmaCompletion, DmaError> {
        let mut single = d.clone();
        let n = d.repeat.max(1);
        single.repeat = 1;
        let mut total = DmaCompletion {
            duration_ns: 0.0,
            config_ns: 0.0,
            wire_bytes: 0,
            delivered_bytes: 0,
        };
        for _ in 0..n {
            let c = self.execute(&single, bw_share)?;
            total.duration_ns += c.duration_ns;
            total.config_ns += c.config_ns;
            total.wire_bytes += c.wire_bytes;
            total.delivered_bytes += c.delivered_bytes;
        }
        Ok(total)
    }

    /// Functionally moves a tensor through the engine: applies the
    /// descriptor's transform and, for sparse descriptors, round-trips the
    /// data through the wire codec (verifying decompression-on-store).
    ///
    /// Returns the tensor as it lands at the destination plus the actual
    /// wire byte count.
    ///
    /// # Errors
    ///
    /// Transform and codec failures surface as [`DmaError::Transform`];
    /// legality failures as in [`DmaEngine::check`].
    pub fn move_tensor(
        &mut self,
        d: &DmaDescriptor,
        data: &Tensor,
    ) -> Result<(Tensor, u64), DmaError> {
        self.check(d)?;
        let transformed = match &d.transform {
            TransformOp::Identity => data.clone(),
            TransformOp::Pad { spec, value } => dtu_tensor::pad(data, spec, *value)?,
            TransformOp::Slice { spec } => dtu_tensor::slice(data, spec)?,
            TransformOp::Transpose { perm } => dtu_tensor::transpose(data, perm)?,
            TransformOp::Concat { .. } => data.clone(),
        };
        let wire = match d.sparse {
            SparseFormat::Dense => (transformed.len() * 4) as u64,
            SparseFormat::BitmapBlock => {
                let blocks = compress(transformed.data());
                let bytes = compressed_wire_bytes(&blocks, 4) as u64;
                // Decompress-on-store: verify the codec is lossless.
                let restored = dtu_tensor::decompress(&blocks)?;
                debug_assert_eq!(restored.len(), transformed.len());
                bytes
            }
        };
        self.wire_bytes += wire;
        self.transfers += 1;
        Ok((transformed, wire))
    }

    /// Measured sparsity helper: what fraction of a tensor the sparse
    /// format would suppress.
    pub fn measure_sparsity(t: &Tensor) -> f64 {
        sparsity(t.data())
    }

    /// Transfers executed so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total wire bytes so far.
    pub fn total_wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// Total configuration time so far, ns.
    pub fn total_config_ns(&self) -> f64 {
        self.config_time_ns
    }

    /// Total busy time so far, ns.
    pub fn total_busy_ns(&self) -> f64 {
        self.busy_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_tensor::{PadSpec, Permutation, Shape, SliceSpec};

    fn engine20() -> DmaEngine {
        DmaEngine::new(&ChipConfig::dtu20())
    }

    fn engine10() -> DmaEngine {
        DmaEngine::new(&ChipConfig::dtu10())
    }

    #[test]
    fn legal_paths_on_dtu20() {
        let e = engine20();
        for (s, d) in [
            (MemLevel::L3, MemLevel::L2),
            (MemLevel::L2, MemLevel::L1),
            (MemLevel::L3, MemLevel::L1),
            (MemLevel::L1, MemLevel::L3),
            (MemLevel::L2, MemLevel::L2),
            (MemLevel::Host, MemLevel::L3),
        ] {
            e.check(&DmaDescriptor::copy(DmaPath::new(s, d), 64))
                .unwrap_or_else(|err| panic!("{s}->{d} rejected: {err}"));
        }
    }

    #[test]
    fn l1_l3_direct_rejected_on_dtu10() {
        let e = engine10();
        let err = e
            .check(&DmaDescriptor::copy(
                DmaPath::new(MemLevel::L3, MemLevel::L1),
                64,
            ))
            .unwrap_err();
        assert!(matches!(err, DmaError::IllegalPath { .. }));
        // But L3->L2 is fine.
        e.check(&DmaDescriptor::copy(
            DmaPath::new(MemLevel::L3, MemLevel::L2),
            64,
        ))
        .unwrap();
    }

    #[test]
    fn host_to_l1_always_rejected() {
        let e = engine20();
        assert!(e
            .check(&DmaDescriptor::copy(
                DmaPath::new(MemLevel::Host, MemLevel::L1),
                64
            ))
            .is_err());
    }

    #[test]
    fn feature_gating_on_dtu10() {
        let e = engine10();
        let mut d = DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 4096);
        d.sparse = SparseFormat::BitmapBlock;
        assert!(matches!(e.check(&d), Err(DmaError::FeatureDisabled { .. })));
        let mut d = DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 4096);
        d.broadcast = 3;
        assert!(e.check(&d).is_err());
        let mut d = DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 4096);
        d.repeat = 9;
        assert!(e.check(&d).is_err());
    }

    #[test]
    fn broadcast_must_target_l2() {
        let e = engine20();
        let mut d = DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L1), 4096);
        d.broadcast = 3;
        assert!(matches!(e.check(&d), Err(DmaError::IllegalPath { .. })));
    }

    #[test]
    fn repeat_mode_saves_config_overhead() {
        let mut e = engine20();
        let mut d = DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 64 * 1024);
        d.repeat = 9; // the Fig. 6 example: 9 slices
        let with = e.execute(&d, 1).unwrap();
        let without = e.execute_without_repeat(&d, 1).unwrap();
        assert_eq!(with.wire_bytes, without.wire_bytes);
        // (N-1)/N of configuration time eliminated.
        assert!((without.config_ns / with.config_ns - 9.0).abs() < 1e-9);
        assert!(with.duration_ns < without.duration_ns);
    }

    #[test]
    fn zero_repeat_rejected() {
        let e = engine20();
        let mut d = DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 64);
        d.repeat = 0;
        assert_eq!(e.check(&d), Err(DmaError::EmptyRepeat));
    }

    #[test]
    fn sparse_descriptor_reduces_wire_bytes() {
        let mut d = DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 4096);
        d.sparse = SparseFormat::BitmapBlock;
        d.zero_fraction = 0.75;
        let dense_wire =
            DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 4096).wire_bytes();
        assert!(d.wire_bytes() < dense_wire);
        // 1024 elems: 16 blocks × 8 B + 256 values × 4 B = 1152.
        assert_eq!(d.wire_bytes(), 1152);
    }

    #[test]
    fn broadcast_delivers_three_copies_for_one_read() {
        let mut e = engine20();
        let mut d = DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 1024);
        d.broadcast = 3;
        let c = e.execute(&d, 1).unwrap();
        assert_eq!(c.wire_bytes, 1024);
        assert_eq!(c.delivered_bytes, 3072);
    }

    #[test]
    fn pcie_path_is_slowest() {
        let mut e = engine20();
        let host = e
            .execute(
                &DmaDescriptor::copy(DmaPath::new(MemLevel::Host, MemLevel::L3), 1 << 20),
                1,
            )
            .unwrap();
        let hbm = e
            .execute(
                &DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 1 << 20),
                1,
            )
            .unwrap();
        assert!(host.duration_ns > hbm.duration_ns);
    }

    #[test]
    fn bandwidth_share_scales_time() {
        let mut e = engine20();
        let d = DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 1 << 20);
        let solo = e.execute(&d, 1).unwrap();
        let third = e.execute(&d, 3).unwrap();
        let move_solo = solo.duration_ns - solo.config_ns;
        let move_third = third.duration_ns - third.config_ns;
        assert!((move_third / move_solo - 3.0).abs() < 1e-9);
    }

    #[test]
    fn move_tensor_applies_transpose() {
        let mut e = engine20();
        let t = Tensor::from_fn(Shape::new(vec![2, 3]), |i| (i[0] * 3 + i[1]) as f32);
        let d = DmaDescriptor {
            transform: TransformOp::Transpose {
                perm: Permutation::swap(2, 0, 1).unwrap(),
            },
            ..DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 24)
        };
        let (out, wire) = e.move_tensor(&d, &t).unwrap();
        assert_eq!(out.shape().dims(), &[3, 2]);
        assert_eq!(out.get(&[2, 1]).unwrap(), 5.0);
        assert_eq!(wire, 24);
    }

    #[test]
    fn move_tensor_applies_pad_and_slice() {
        let mut e = engine20();
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let d = DmaDescriptor {
            transform: TransformOp::Pad {
                spec: vec![PadSpec::symmetric(1)],
                value: 0.0,
            },
            ..DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 24)
        };
        let (padded, _) = e.move_tensor(&d, &t).unwrap();
        assert_eq!(padded.data(), &[0.0, 1.0, 2.0, 3.0, 4.0, 0.0]);

        let d = DmaDescriptor {
            transform: TransformOp::Slice {
                spec: vec![SliceSpec::range(1, 3)],
            },
            ..DmaDescriptor::copy(DmaPath::new(MemLevel::L2, MemLevel::L1), 8)
        };
        let (sliced, _) = e.move_tensor(&d, &t).unwrap();
        assert_eq!(sliced.data(), &[2.0, 3.0]);
    }

    #[test]
    fn move_tensor_sparse_counts_compressed_wire() {
        let mut e = engine20();
        let mut data = vec![0.0f32; 128];
        data[5] = 1.0;
        let t = Tensor::from_vec(data);
        let mut d = DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 512);
        d.sparse = SparseFormat::BitmapBlock;
        let (out, wire) = e.move_tensor(&d, &t).unwrap();
        assert_eq!(out.len(), 128);
        assert_eq!(wire, 2 * 8 + 4); // two bitmaps + one value
        assert!(wire < 512);
    }

    #[test]
    fn move_tensor_bad_transform_errors() {
        let mut e = engine20();
        let t = Tensor::from_vec(vec![1.0; 4]);
        let d = DmaDescriptor {
            transform: TransformOp::Slice {
                spec: vec![SliceSpec::range(0, 9)],
            },
            ..DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 16)
        };
        assert!(matches!(e.move_tensor(&d, &t), Err(DmaError::Transform(_))));
    }

    #[test]
    fn counters_accumulate() {
        let mut e = engine20();
        let d = DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 100);
        e.execute(&d, 1).unwrap();
        e.execute(&d, 1).unwrap();
        assert_eq!(e.transfers(), 2);
        assert_eq!(e.total_wire_bytes(), 200);
        assert!(e.total_busy_ns() > 0.0);
        assert!(e.total_config_ns() > 0.0);
    }
}
