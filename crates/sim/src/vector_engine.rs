//! The 512-bit vector engine.
//!
//! DTU cores process 1024-bit vectors on 1.0 and 512-bit vector registers
//! on 2.0's matrix path; functionally we model a SIMD ALU over 16 FP32
//! lanes with the usual element-wise and horizontal operations. The
//! engine counts the ops it performs so the timing layer can charge them.

use dtu_isa::{DataType, VectorOp};
use dtu_tensor::Tensor;

/// FP32 lanes in one 512-bit vector register.
pub const VECTOR_LANES_FP32: usize = 16;

/// The functional model of one compute core's vector ALU.
#[derive(Debug, Clone, Default)]
pub struct VectorEngine {
    ops: u64,
}

impl VectorEngine {
    /// Creates a vector engine.
    pub fn new() -> Self {
        VectorEngine::default()
    }

    /// Element operations performed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Lanes available for a data type (512 bits / element width).
    pub fn lanes(dtype: DataType) -> usize {
        64 / dtype.size_bytes()
    }

    /// Applies a binary element-wise operation lane by lane.
    ///
    /// Both tensors must have identical shapes; values are quantised
    /// through `dtype` on input, matching the machine behaviour.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from [`Tensor::zip_map`].
    pub fn binary(
        &mut self,
        op: VectorOp,
        a: &Tensor,
        b: &Tensor,
        dtype: DataType,
    ) -> Result<Tensor, dtu_tensor::TensorError> {
        self.ops += a.len() as u64;
        a.zip_map(b, |x, y| {
            let (x, y) = (dtype.quantize(x), dtype.quantize(y));
            match op {
                VectorOp::Add => x + y,
                VectorOp::Sub => x - y,
                VectorOp::Mul => x * y,
                VectorOp::Max => x.max(y),
                VectorOp::Min => x.min(y),
                // Binary FMA treats b as both multiplier and addend base:
                // the 3-operand form lives in the interpreter.
                VectorOp::Fma => x * y + y,
                // Reductions and unary ops are not binary; treat as add.
                _ => x + y,
            }
        })
    }

    /// Fused multiply-add: `a*b + c`, one op per lane.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from [`Tensor::zip_map`].
    pub fn fma(
        &mut self,
        a: &Tensor,
        b: &Tensor,
        c: &Tensor,
        dtype: DataType,
    ) -> Result<Tensor, dtu_tensor::TensorError> {
        self.ops += a.len() as u64;
        let prod = a.zip_map(b, |x, y| dtype.quantize(x) * dtype.quantize(y))?;
        prod.zip_map(c, |p, z| p + dtype.quantize(z))
    }

    /// Horizontal reduction over the whole tensor.
    pub fn reduce(&mut self, op: VectorOp, t: &Tensor) -> f32 {
        self.ops += t.len() as u64;
        match op {
            VectorOp::ReduceMax => t.data().iter().copied().fold(f32::NEG_INFINITY, f32::max),
            // Everything else reduces as a sum.
            _ => t.sum(),
        }
    }

    /// Element-wise reciprocal estimate (Newton-refined to ~1e-6).
    pub fn recip(&mut self, t: &Tensor) -> Tensor {
        self.ops += t.len() as u64;
        t.map(|x| if x == 0.0 { f32::INFINITY } else { 1.0 / x })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtu_tensor::Shape;

    #[test]
    fn lane_counts_by_dtype() {
        assert_eq!(VectorEngine::lanes(DataType::Fp32), 16);
        assert_eq!(VectorEngine::lanes(DataType::Fp16), 32);
        assert_eq!(VectorEngine::lanes(DataType::Int8), 64);
    }

    #[test]
    fn binary_ops() {
        let mut ve = VectorEngine::new();
        let a = Tensor::from_vec(vec![1.0, 4.0, -2.0]);
        let b = Tensor::from_vec(vec![2.0, 3.0, -5.0]);
        assert_eq!(
            ve.binary(VectorOp::Add, &a, &b, DataType::Fp32)
                .unwrap()
                .data(),
            &[3.0, 7.0, -7.0]
        );
        assert_eq!(
            ve.binary(VectorOp::Max, &a, &b, DataType::Fp32)
                .unwrap()
                .data(),
            &[2.0, 4.0, -2.0]
        );
        assert_eq!(
            ve.binary(VectorOp::Min, &a, &b, DataType::Fp32)
                .unwrap()
                .data(),
            &[1.0, 3.0, -5.0]
        );
        assert_eq!(ve.ops(), 9);
    }

    #[test]
    fn binary_shape_mismatch_errors() {
        let mut ve = VectorEngine::new();
        let a = Tensor::zeros(Shape::new(vec![3]));
        let b = Tensor::zeros(Shape::new(vec![4]));
        assert!(ve.binary(VectorOp::Add, &a, &b, DataType::Fp32).is_err());
    }

    #[test]
    fn fma_matches_manual() {
        let mut ve = VectorEngine::new();
        let a = Tensor::from_vec(vec![2.0, 3.0]);
        let b = Tensor::from_vec(vec![4.0, 5.0]);
        let c = Tensor::from_vec(vec![1.0, 1.0]);
        let r = ve.fma(&a, &b, &c, DataType::Fp32).unwrap();
        assert_eq!(r.data(), &[9.0, 16.0]);
    }

    #[test]
    fn reductions() {
        let mut ve = VectorEngine::new();
        let t = Tensor::from_vec(vec![1.0, -3.0, 7.0, 2.0]);
        assert_eq!(ve.reduce(VectorOp::ReduceSum, &t), 7.0);
        assert_eq!(ve.reduce(VectorOp::ReduceMax, &t), 7.0);
    }

    #[test]
    fn recip_handles_zero() {
        let mut ve = VectorEngine::new();
        let t = Tensor::from_vec(vec![2.0, 0.0]);
        let r = ve.recip(&t);
        assert_eq!(r.data()[0], 0.5);
        assert!(r.data()[1].is_infinite());
    }

    #[test]
    fn quantisation_applied_on_input() {
        let mut ve = VectorEngine::new();
        let fine = 1.0 + 1.0 / 512.0; // below bf16 resolution
        let a = Tensor::from_vec(vec![fine]);
        let b = Tensor::from_vec(vec![0.0]);
        let r = ve.binary(VectorOp::Add, &a, &b, DataType::Bf16).unwrap();
        assert_eq!(r.data(), &[1.0]);
    }
}
