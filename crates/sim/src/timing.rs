//! Pluggable timing backends: the event-driven interpreter and a
//! calibrated analytical fast path.
//!
//! [`TimingBackend`] abstracts "run a [`Program`], produce a
//! [`RunReport`]". Two implementations ship:
//!
//! * [`InterpretedBackend`] — delegates to [`Chip::run`], byte-identical
//!   to calling the interpreter directly;
//! * [`AnalyticBackend`] — prices whole programs from a set of per-class
//!   cost coefficients ([`AnalyticTiming`]) recovered by running the
//!   interpreter over a small probe grid ([`AnalyticTiming::calibrate`]).
//!
//! The calibration is *exact-form*: each probe isolates one term of the
//! interpreter's cost model (MAC roofline slope and ramp constant, vector
//! and SFU rates, launch overhead, skinny-tile penalty curve, L2/L3
//! transfer rates, instruction-load rate, per-path DMA bandwidth and
//! configuration constants), so the fitted coefficients reproduce the
//! interpreter to floating-point rounding. The analytic walk replays the
//! same round-robin schedule — including the CPME/LPME/DVFS power loops,
//! which measurably shift latency (up to ~6% on Conformer) and therefore
//! cannot be approximated away under a 5% error bound — but replaces every
//! interpreter cost query with a fitted closed form. Faults and telemetry
//! recording are not supported on the fast path; use the interpreter when
//! you need them, or when validating the analytic model itself.

use crate::chip::{Chip, SimError};
use crate::config::ChipConfig;
use crate::dma::{DmaDescriptor, DmaEngine, DmaPath, MemLevel};
use crate::icache::{FetchOutcome, InstructionCache};
use crate::program::{Command, GroupId, Program, Stream};
use crate::report::{EngineCounters, RunReport};
use crate::sync::{SyncEngine, SyncPattern};
use dtu_isa::{DataType, KernelDescriptor, KernelId, OpClass};
use dtu_power::{Cpme, EnergyAccount, Lpme, LpmeAction, UnitId, WindowObservation};
use dtu_telemetry::json::{number, JsonObject};

/// Version of the calibration probe grid and coefficient layout. Bump
/// when either changes so cached calibrations are invalidated.
pub const CALIBRATION_VERSION: u32 = 1;

/// A timing backend: something that can execute a [`Program`] on a
/// [`Chip`] and produce a [`RunReport`].
pub trait TimingBackend {
    /// Short stable name ("interpreted", "analytic") for reports and CLI.
    fn name(&self) -> &'static str;

    /// Runs `program` on `chip`.
    ///
    /// # Errors
    ///
    /// As for [`Chip::run`].
    fn run(&self, chip: &Chip, program: &Program) -> Result<RunReport, SimError>;
}

/// The event-driven interpreter, behind the backend trait.
///
/// `InterpretedBackend.run(chip, p)` is exactly `chip.run(p)`.
#[derive(Debug, Default, Clone, Copy)]
pub struct InterpretedBackend;

impl TimingBackend for InterpretedBackend {
    fn name(&self) -> &'static str {
        "interpreted"
    }

    fn run(&self, chip: &Chip, program: &Program) -> Result<RunReport, SimError> {
        chip.run(program)
    }
}

/// DMA path classes with distinct bandwidth/configuration coefficients.
const DMA_CLASSES: usize = 3;
const DMA_PCIE: usize = 0;
const DMA_L3: usize = 1;
const DMA_L2: usize = 2;

fn dma_class(path: DmaPath) -> usize {
    if path.crosses_pcie() {
        DMA_PCIE
    } else if path.touches_l3() {
        DMA_L3
    } else {
        DMA_L2
    }
}

/// Calibrated cost coefficients for one [`ChipConfig`].
///
/// All compute rates are datatype-normalised (fitted with FP32 probes,
/// multiplied back by [`DataType::ops_multiplier`] at pricing time) and
/// quoted at the nominal clock; the walk applies the same frequency
/// scaling as the interpreter.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticTiming {
    /// Calibration layout version ([`CALIBRATION_VERSION`] at fit time).
    pub version: u32,
    /// Sustained MAC pricing rate (macs/ns, ramp-free, skinny=1).
    pub mac_total_per_ns: f64,
    /// Pipeline-ramp constant (macs added to every kernel's MAC term).
    pub mac_ramp_macs: f64,
    /// MAC issue (busy-time) rate, macs/ns.
    pub mac_issue_per_ns: f64,
    /// Vector rate, ops/ns.
    pub vec_per_ns: f64,
    /// SFU rate, ops/ns (datatype-independent).
    pub sfu_per_ns: f64,
    /// Per-launch dispatch overhead at the nominal clock, ns.
    pub launch_ns: f64,
    /// Per-sync-op cost, ns (fitted; zero on current hardware models).
    pub sync_ns: f64,
    /// Skinny-tile efficiency slope per unit of `narrow_dim`.
    pub skinny_slope: f64,
    /// Skinny-tile efficiency floor.
    pub skinny_floor: f64,
    /// L2 kernel-transfer rate, bytes/ns (at the group's port share).
    pub l2_bytes_per_ns: f64,
    /// L3 kernel-transfer rate at one sharer, bytes/ns.
    pub l3_bytes_per_ns: f64,
    /// Instruction-code load rate, bytes/ns.
    pub icache_bytes_per_ns: f64,
    /// Per-descriptor DMA configuration time by path class, ns.
    pub dma_config_ns: [f64; DMA_CLASSES],
    /// DMA wire bandwidth by path class at one sharer, bytes/ns.
    pub dma_bytes_per_ns: [f64; DMA_CLASSES],
}

fn fit_err(what: &str) -> SimError {
    SimError::InvalidConfig(format!("analytic calibration failed: {what}"))
}

fn probe_kernel(id: u64, macs: u64, vec: u64, sfu: u64) -> KernelDescriptor {
    let mut d = KernelDescriptor::new(format!("probe{id}"));
    d.class = OpClass::MatrixDense;
    d.dtype = DataType::Fp32;
    d.macs = macs;
    d.vector_ops = vec;
    d.sfu_ops = sfu;
    d
}

fn single_launch(id: u64, d: KernelDescriptor) -> Program {
    let mut p = Program::new("probe");
    let mut s = Stream::new(GroupId::new(0, 0));
    s.push(Command::Launch {
        kernel: KernelId(id),
        descriptor: d,
    });
    p.add_stream(s);
    p
}

impl AnalyticTiming {
    /// Recovers the cost coefficients for `cfg` by running the interpreter
    /// over the probe grid.
    ///
    /// Probes run with power management disabled so the governor stays at
    /// the nominal clock; the coefficients are frequency-normalised, and
    /// the analytic walk re-applies the power loops itself.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] when `cfg` is invalid or a fit
    /// degenerates (non-finite or non-positive rate).
    pub fn calibrate(cfg: &ChipConfig) -> Result<AnalyticTiming, SimError> {
        let mut probe_cfg = cfg.clone();
        probe_cfg.features.power_management = false;
        let chip = Chip::try_new(probe_cfg)?;
        let lat = |p: &Program| -> Result<f64, SimError> { Ok(chip.run(p)?.latency_ns) };

        // Vector probes: latency = ops/rate + launch. Two sizes give the
        // rate by finite difference and the launch intercept exactly.
        let (v1, v2) = (1u64 << 20, 1u64 << 23);
        let lv1 = lat(&single_launch(1, probe_kernel(1, 0, v1, 0)))?;
        let lv2 = lat(&single_launch(2, probe_kernel(2, 0, v2, 0)))?;
        let vec_per_ns = (v2 - v1) as f64 / (lv2 - lv1);
        let launch_ns = lv1 - v1 as f64 / vec_per_ns;

        // MAC probes: latency = (macs + ramp)/rate + launch — the
        // interpreter's ramp efficiency macs/(macs+ramp) linearises.
        let (m1, m2) = (1u64 << 25, 1u64 << 27);
        let rm1 = chip.run(&single_launch(3, probe_kernel(3, m1, 0, 0)))?;
        let lm1 = rm1.latency_ns;
        let lm2 = lat(&single_launch(4, probe_kernel(4, m2, 0, 0)))?;
        let mac_total_per_ns = (m2 - m1) as f64 / (lm2 - lm1);
        let mac_ramp_macs = (lm1 - launch_ns) * mac_total_per_ns - m1 as f64;
        // Issue rate from the busy-time counter of the same probe.
        let mac_issue_per_ns = m1 as f64 / rm1.counters.compute_busy_ns;

        // Skinny-tile curve: same MACs at narrow_dim 32 and 2 give the
        // slope and the floor of the clamp.
        let skinny_lat = |id: u64, narrow: u64| -> Result<f64, SimError> {
            let mut d = probe_kernel(id, m1, 0, 0);
            d.narrow_dim = narrow;
            lat(&single_launch(id, d))
        };
        let l32 = skinny_lat(5, 32)?;
        let l2n = skinny_lat(6, 2)?;
        let skinny_slope = (lm1 - launch_ns) / (l32 - launch_ns) / 32.0;
        let skinny_floor = (lm1 - launch_ns) / (l2n - launch_ns);

        // SFU probe (launch already known).
        let s1 = 1u64 << 22;
        let ls = lat(&single_launch(7, probe_kernel(7, 0, 0, s1)))?;
        let sfu_per_ns = s1 as f64 / (ls - launch_ns);

        // Memory-bound kernels: transfer time dominates a zero-compute
        // kernel, so latency - launch is the pure L2/L3 term.
        let mem_bytes = 1u64 << 30;
        let mut dl2 = probe_kernel(8, 0, 0, 0);
        dl2.l2_bytes = mem_bytes;
        let ll2 = lat(&single_launch(8, dl2))?;
        let l2_bytes_per_ns = mem_bytes as f64 / (ll2 - launch_ns);
        let mut dl3 = probe_kernel(9, 0, 0, 0);
        dl3.l3_bytes = mem_bytes;
        let ll3 = lat(&single_launch(9, dl3))?;
        let l3_bytes_per_ns = mem_bytes as f64 / (ll3 - launch_ns);

        // Instruction-load rate from the cold-miss stall counter.
        let code = 64u64 * 1024;
        let mut dic = probe_kernel(10, 1 << 20, 0, 0);
        dic.code_bytes = code;
        let ric = chip.run(&single_launch(10, dic))?;
        let icache_bytes_per_ns = code as f64 / ric.counters.code_load_stall_ns;

        // DMA probes: two sizes per path class give bandwidth slope and
        // configuration intercept.
        let dma_lat = |path: DmaPath, bytes: u64| -> Result<f64, SimError> {
            let mut p = Program::new("probe");
            let mut s = Stream::new(GroupId::new(0, 0));
            s.push(Command::Dma {
                descriptor: DmaDescriptor::copy(path, bytes),
                overlapped: false,
            });
            p.add_stream(s);
            lat(&p)
        };
        let (b1, b2) = (1u64 << 20, 1u64 << 24);
        let mut dma_config_ns = [0.0; DMA_CLASSES];
        let mut dma_bytes_per_ns = [0.0; DMA_CLASSES];
        let class_paths = [
            DmaPath::new(MemLevel::Host, MemLevel::L3),
            DmaPath::new(MemLevel::L3, MemLevel::L2),
            DmaPath::new(MemLevel::L2, MemLevel::L1),
        ];
        for (c, path) in class_paths.into_iter().enumerate() {
            let la = dma_lat(path, b1)?;
            let lb = dma_lat(path, b2)?;
            dma_bytes_per_ns[c] = (b2 - b1) as f64 / (lb - la);
            dma_config_ns[c] = la - b1 as f64 / dma_bytes_per_ns[c];
        }

        // Sync probe: a signal/wait chain with no other work. Zero on the
        // current model; fitted anyway so a future interpreter cost would
        // be picked up rather than silently dropped.
        let mut sp = Program::new("probe");
        let consumer_group = if cfg.groups_per_cluster > 1 {
            Some(GroupId::new(0, 1))
        } else if cfg.clusters > 1 {
            Some(GroupId::new(1, 0))
        } else {
            None // single-group chip: signal and wait on one stream
        };
        let mut sa = Stream::new(GroupId::new(0, 0));
        sa.push(Command::RegisterEvent {
            event: 1,
            pattern: SyncPattern::OneToOne,
        })
        .push(Command::Signal { event: 1 });
        match consumer_group {
            Some(group) => {
                let mut sb = Stream::new(group);
                sb.push(Command::Wait { event: 1 });
                sp.add_stream(sa);
                sp.add_stream(sb);
            }
            None => {
                sa.push(Command::Wait { event: 1 });
                sp.add_stream(sa);
            }
        }
        let sync_ns = lat(&sp)? / 2.0;

        let fit = AnalyticTiming {
            version: CALIBRATION_VERSION,
            mac_total_per_ns,
            mac_ramp_macs,
            mac_issue_per_ns,
            vec_per_ns,
            sfu_per_ns,
            launch_ns,
            sync_ns,
            skinny_slope,
            skinny_floor,
            l2_bytes_per_ns,
            l3_bytes_per_ns,
            icache_bytes_per_ns,
            dma_config_ns,
            dma_bytes_per_ns,
        };
        fit.validate()?;
        Ok(fit)
    }

    fn validate(&self) -> Result<(), SimError> {
        let rates = [
            ("mac_total_per_ns", self.mac_total_per_ns),
            ("mac_issue_per_ns", self.mac_issue_per_ns),
            ("vec_per_ns", self.vec_per_ns),
            ("sfu_per_ns", self.sfu_per_ns),
            ("l2_bytes_per_ns", self.l2_bytes_per_ns),
            ("l3_bytes_per_ns", self.l3_bytes_per_ns),
            ("icache_bytes_per_ns", self.icache_bytes_per_ns),
            ("skinny_slope", self.skinny_slope),
            ("skinny_floor", self.skinny_floor),
        ];
        for (name, v) in rates {
            if !v.is_finite() || v <= 0.0 {
                return Err(fit_err(&format!("{name} = {v}")));
            }
        }
        for c in 0..DMA_CLASSES {
            if !self.dma_bytes_per_ns[c].is_finite() || self.dma_bytes_per_ns[c] <= 0.0 {
                return Err(fit_err(&format!("dma rate class {c}")));
            }
            if !self.dma_config_ns[c].is_finite() || self.dma_config_ns[c] < 0.0 {
                return Err(fit_err(&format!("dma config class {c}")));
            }
        }
        for (name, v) in [
            ("launch_ns", self.launch_ns),
            ("sync_ns", self.sync_ns),
            ("mac_ramp_macs", self.mac_ramp_macs),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(fit_err(&format!("{name} = {v}")));
            }
        }
        Ok(())
    }

    /// Serialises to a flat JSON object. `f64` values use the shortest
    /// round-trip rendering, so `from_json(to_json())` is exact.
    pub fn to_json(&self) -> String {
        let arr = |a: &[f64; DMA_CLASSES]| {
            format!("[{},{},{}]", number(a[0]), number(a[1]), number(a[2]))
        };
        JsonObject::new()
            .int("calibration_version", i64::from(self.version))
            .num("mac_total_per_ns", self.mac_total_per_ns)
            .num("mac_ramp_macs", self.mac_ramp_macs)
            .num("mac_issue_per_ns", self.mac_issue_per_ns)
            .num("vec_per_ns", self.vec_per_ns)
            .num("sfu_per_ns", self.sfu_per_ns)
            .num("launch_ns", self.launch_ns)
            .num("sync_ns", self.sync_ns)
            .num("skinny_slope", self.skinny_slope)
            .num("skinny_floor", self.skinny_floor)
            .num("l2_bytes_per_ns", self.l2_bytes_per_ns)
            .num("l3_bytes_per_ns", self.l3_bytes_per_ns)
            .num("icache_bytes_per_ns", self.icache_bytes_per_ns)
            .raw("dma_config_ns", &arr(&self.dma_config_ns))
            .raw("dma_bytes_per_ns", &arr(&self.dma_bytes_per_ns))
            .build()
    }

    /// Parses a calibration artifact written by [`AnalyticTiming::to_json`].
    ///
    /// Returns `None` on any structural mismatch (missing field, bad
    /// number, wrong version) — callers treat that as a corrupt artifact
    /// and re-calibrate.
    pub fn from_json(text: &str) -> Option<AnalyticTiming> {
        let field = |k: &str| json_scalar(text, k);
        let version = field("calibration_version")? as u32;
        if version != CALIBRATION_VERSION {
            return None;
        }
        let fit = AnalyticTiming {
            version,
            mac_total_per_ns: field("mac_total_per_ns")?,
            mac_ramp_macs: field("mac_ramp_macs")?,
            mac_issue_per_ns: field("mac_issue_per_ns")?,
            vec_per_ns: field("vec_per_ns")?,
            sfu_per_ns: field("sfu_per_ns")?,
            launch_ns: field("launch_ns")?,
            sync_ns: field("sync_ns")?,
            skinny_slope: field("skinny_slope")?,
            skinny_floor: field("skinny_floor")?,
            l2_bytes_per_ns: field("l2_bytes_per_ns")?,
            l3_bytes_per_ns: field("l3_bytes_per_ns")?,
            icache_bytes_per_ns: field("icache_bytes_per_ns")?,
            dma_config_ns: json_triple(text, "dma_config_ns")?,
            dma_bytes_per_ns: json_triple(text, "dma_bytes_per_ns")?,
        };
        fit.validate().ok()?;
        Some(fit)
    }

    /// Fitted kernel times: `(busy_ns, intra_stall_ns, l2_ns, l3_ns)` at
    /// `freq_mhz`, mirroring the interpreter's split.
    fn kernel_times(
        &self,
        d: &KernelDescriptor,
        fnom_mhz: u32,
        freq_mhz: u32,
        l3_sharers: usize,
    ) -> (f64, f64, f64, f64) {
        let mult = d.dtype.ops_multiplier();
        let skinny = if d.narrow_dim == 0 {
            1.0
        } else {
            (d.narrow_dim as f64 * self.skinny_slope).clamp(self.skinny_floor, 1.0)
        };
        // macs == 0 makes the interpreter's ramp efficiency 0/0 = NaN,
        // which f64::max then drops in favour of the vector/SFU terms;
        // reproduce that exactly.
        let mac_total_ns = if d.macs == 0 {
            f64::NAN
        } else {
            (d.macs as f64 + self.mac_ramp_macs) / (self.mac_total_per_ns * mult * skinny)
        };
        let mac_busy_ns = d.macs as f64 / (self.mac_issue_per_ns * mult);
        let vec_ns = d.vector_ops as f64 / (self.vec_per_ns * mult);
        let sfu_ns = d.sfu_ops as f64 / self.sfu_per_ns;
        let total_nominal = mac_total_ns.max(vec_ns).max(sfu_ns);
        let busy_nominal = mac_busy_ns.max(vec_ns).max(sfu_ns).min(total_nominal);
        let fscale = fnom_mhz as f64 / freq_mhz as f64;
        let busy_ns = busy_nominal * fscale;
        let intra_stall_ns = total_nominal - busy_nominal;
        let l2_ns = d.l2_bytes as f64 / self.l2_bytes_per_ns;
        let l3_ns = d.l3_bytes as f64 * l3_sharers as f64 / self.l3_bytes_per_ns;
        (busy_ns, intra_stall_ns, l2_ns, l3_ns)
    }
}

fn json_scalar(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = &text[at..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    rest[..end].trim().parse::<f64>().ok()
}

fn json_triple(text: &str, key: &str) -> Option<[f64; DMA_CLASSES]> {
    let needle = format!("\"{key}\":[");
    let at = text.find(&needle)? + needle.len();
    let rest = &text[at..];
    let end = rest.find(']')?;
    let mut out = [0.0; DMA_CLASSES];
    let mut parts = rest[..end].split(',');
    for slot in &mut out {
        *slot = parts.next()?.trim().parse::<f64>().ok()?;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(out)
}

/// Per-stream walk state.
struct WalkStream {
    group_flat: usize,
    pc: usize,
    clock_ns: f64,
    staged_data_ready_ns: f64,
    done: bool,
}

/// Per-group walk machinery (the interpreter's `GroupRuntime` minus the
/// DMA engine, whose timing the coefficients replace).
struct WalkGroup {
    icache: InstructionCache,
    lpme: Lpme,
    governor: dtu_power::DvfsGovernor,
    freq_time_product: f64,
    busy_time_ns: f64,
    window_acc: WindowObservation,
    window_elapsed_ns: f64,
}

/// The calibrated analytical backend.
///
/// Replays the interpreter's schedule (round-robin streams, sync engine,
/// instruction cache, power loops) with every cost query answered by the
/// fitted [`AnalyticTiming`] coefficients. Matches the interpreter to
/// floating-point rounding when the coefficients were calibrated for the
/// same [`ChipConfig`]; the CI `fastpath` gate enforces ≤5% rtol.
#[derive(Debug, Clone)]
pub struct AnalyticBackend {
    timing: AnalyticTiming,
}

impl AnalyticBackend {
    /// Wraps a calibration (from [`AnalyticTiming::calibrate`] or a cache).
    pub fn new(timing: AnalyticTiming) -> Self {
        AnalyticBackend { timing }
    }

    /// Calibrates for `cfg` and wraps the result.
    ///
    /// # Errors
    ///
    /// As for [`AnalyticTiming::calibrate`].
    pub fn calibrated(cfg: &ChipConfig) -> Result<Self, SimError> {
        Ok(AnalyticBackend::new(AnalyticTiming::calibrate(cfg)?))
    }

    /// The coefficients in use.
    pub fn timing(&self) -> &AnalyticTiming {
        &self.timing
    }
}

impl TimingBackend for AnalyticBackend {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn run(&self, chip: &Chip, program: &Program) -> Result<RunReport, SimError> {
        let cfg = chip.config();
        let power_cfg = chip.power_config();
        let energy_model = chip.energy_model();
        let t = &self.timing;

        for s in &program.streams {
            if s.group.cluster >= cfg.clusters || s.group.group >= cfg.groups_per_cluster {
                return Err(SimError::UnknownGroup {
                    group: s.group,
                    available: (cfg.clusters, cfg.groups_per_cluster),
                });
            }
        }

        let mut sync = SyncEngine::new(cfg.features.flexible_sync);
        let pm_on = cfg.features.power_management;
        // Legality checks only; timing comes from the coefficients.
        let dma_check = DmaEngine::new(cfg);

        let n_groups = cfg.total_groups().max(1);
        let baseline_per_group = power_cfg.board_tdp_mw / 2 / n_groups as u64;
        let unit_of = |flat: usize| UnitId::core(flat / cfg.groups_per_cluster, flat);
        let baselines: Vec<(UnitId, u64)> = (0..n_groups)
            .map(|g| (unit_of(g), baseline_per_group))
            .collect();
        let mut cpme =
            Cpme::new(power_cfg.board_tdp_mw, &baselines).expect("baselines fit under TDP");

        let mut groups: Vec<WalkGroup> = (0..n_groups)
            .map(|_| WalkGroup {
                icache: InstructionCache::new(
                    cfg.ibuf_kib as u64 * 1024,
                    cfg.features.instruction_cache,
                    t.icache_bytes_per_ns,
                ),
                lpme: Lpme::new(power_cfg.clone(), baseline_per_group),
                governor: if pm_on {
                    dtu_power::DvfsGovernor::new(power_cfg.clone())
                } else {
                    dtu_power::DvfsGovernor::disabled(power_cfg.clone())
                },
                freq_time_product: 0.0,
                busy_time_ns: 0.0,
                window_acc: WindowObservation::default(),
                window_elapsed_ns: 0.0,
            })
            .collect();
        let window_ns = power_cfg.window_cycles as f64 * cfg.cycle_ns() * 5.0;

        let mut streams: Vec<WalkStream> = program
            .streams
            .iter()
            .map(|s| WalkStream {
                group_flat: s.group.flat(cfg.groups_per_cluster),
                pc: 0,
                clock_ns: 0.0,
                staged_data_ready_ns: 0.0,
                done: s.commands.is_empty(),
            })
            .collect();

        let l3_sharers = streams.len().max(1);
        let mut counters = EngineCounters::default();
        let mut energy = EnergyAccount::new();

        loop {
            let mut progressed = false;
            let mut all_done = true;
            // Indexing (not iterating) because the body mutably borrows
            // `streams[si]` while also reading `program.streams[si]`.
            #[allow(clippy::needless_range_loop)]
            for si in 0..streams.len() {
                if streams[si].done {
                    continue;
                }
                all_done = false;
                loop {
                    let st = &streams[si];
                    let stream_def = &program.streams[si];
                    let Some(cmd) = stream_def.commands.get(st.pc) else {
                        streams[si].done = true;
                        break;
                    };
                    match cmd {
                        Command::RegisterEvent { event, pattern } => {
                            sync.register(*event, *pattern)?;
                            streams[si].pc += 1;
                            progressed = true;
                        }
                        Command::Signal { event } => {
                            let now = streams[si].clock_ns;
                            sync.signal(*event, now)?;
                            counters.sync_ops += 1;
                            streams[si].clock_ns = now + t.sync_ns;
                            streams[si].pc += 1;
                            progressed = true;
                        }
                        Command::Wait { event } => {
                            let now = streams[si].clock_ns;
                            match sync.wait(*event, now)? {
                                Some(release) => {
                                    counters.sync_wait_ns += release - now;
                                    counters.sync_ops += 1;
                                    streams[si].clock_ns = release + t.sync_ns;
                                    streams[si].pc += 1;
                                    progressed = true;
                                }
                                None => break,
                            }
                        }
                        Command::Prefetch { kernel, code_bytes } => {
                            let g = streams[si].group_flat;
                            let now = streams[si].clock_ns;
                            groups[g].icache.prefetch(*kernel, *code_bytes, now);
                            streams[si].pc += 1;
                            progressed = true;
                        }
                        Command::Dma {
                            descriptor,
                            overlapped,
                        } => {
                            let now = streams[si].clock_ns;
                            dma_check.check(descriptor)?;
                            let class = dma_class(descriptor.path);
                            let configs = if descriptor.repeat > 1 {
                                1
                            } else {
                                descriptor.repeat
                            } as f64;
                            let config_ns = if descriptor.repeat > 1 {
                                t.dma_config_ns[class]
                            } else {
                                t.dma_config_ns[class] * configs
                            };
                            let wire_per_txn = descriptor.wire_bytes();
                            let rate = t.dma_bytes_per_ns[class] / l3_sharers.max(1) as f64;
                            let dma_ns =
                                config_ns + wire_per_txn as f64 / rate * descriptor.repeat as f64;
                            let wire_total = wire_per_txn * descriptor.repeat as u64;
                            counters.dma_transfers += descriptor.repeat as u64;
                            counters.dma_wire_bytes += wire_total;
                            counters.dma_config_ns += config_ns;
                            energy.charge_memory(
                                energy_model,
                                0,
                                if descriptor.path.touches_l3() {
                                    0
                                } else {
                                    wire_total
                                },
                                if descriptor.path.touches_l3() {
                                    wire_total
                                } else {
                                    0
                                },
                            );
                            if *overlapped {
                                let done = now + dma_ns;
                                streams[si].staged_data_ready_ns =
                                    streams[si].staged_data_ready_ns.max(done);
                            } else {
                                streams[si].clock_ns = now + dma_ns;
                            }
                            streams[si].pc += 1;
                            progressed = true;
                        }
                        Command::Launch { kernel, descriptor } => {
                            let g = streams[si].group_flat;
                            let start = streams[si].clock_ns;
                            let stage_pending_ns =
                                (streams[si].staged_data_ready_ns - start).max(0.0);

                            let fetch =
                                groups[g]
                                    .icache
                                    .fetch(*kernel, descriptor.code_bytes, start);
                            let code_stall = fetch.stall_ns();
                            match fetch {
                                FetchOutcome::Hit | FetchOutcome::PrefetchInFlight { .. } => {
                                    counters.icache_hits += 1;
                                }
                                FetchOutcome::Miss { .. } => {
                                    counters.icache_misses += 1;
                                }
                            }
                            counters.code_load_stall_ns += code_stall;

                            let freq = groups[g].governor.freq_mhz();
                            let (busy_ns, intra_stall_ns, l2_ns, l3_ns) =
                                t.kernel_times(descriptor, cfg.clock_mhz, freq, l3_sharers);
                            let work_ns = busy_ns + intra_stall_ns;
                            let launch_ns = t.launch_ns * cfg.clock_mhz as f64 / freq as f64;
                            let mut duration =
                                work_ns.max(l2_ns).max(l3_ns).max(stage_pending_ns) + launch_ns;
                            let mem_stall = duration - launch_ns - busy_ns;

                            if pm_on {
                                let cycle_ns = 1e3 / freq as f64;
                                let obs = WindowObservation {
                                    busy_cycles: (busy_ns / cycle_ns) as u64,
                                    stall_cycles: (mem_stall / cycle_ns) as u64,
                                    l3_stall_cycles: (mem_stall / cycle_ns) as u64,
                                    projected_power_mw: {
                                        let mut probe = EnergyAccount::new();
                                        probe.charge_compute(
                                            energy_model,
                                            power_cfg,
                                            freq,
                                            (descriptor.macs as f64
                                                / descriptor.dtype.ops_multiplier())
                                                as u64,
                                            descriptor.vector_ops,
                                            descriptor.sfu_ops,
                                        );
                                        if duration > 0.0 {
                                            (probe.dynamic_pj / duration) as u64
                                        } else {
                                            0
                                        }
                                    },
                                };
                                let unit = unit_of(g);
                                match groups[g].lpme.observe(obs) {
                                    LpmeAction::InsertStalls(stalls) => {
                                        let stall_ns = stalls as f64 * cycle_ns;
                                        counters.power_stall_ns += stall_ns;
                                        duration += stall_ns;
                                    }
                                    LpmeAction::RequestBudget(want) => {
                                        let granted = cpme.request(unit, want);
                                        groups[g].lpme.grant(granted);
                                        if granted < want {
                                            let deficit =
                                                (want - granted) as f64 / want.max(1) as f64;
                                            let stall_ns = duration * deficit * 0.5;
                                            counters.power_stall_ns += stall_ns;
                                            duration += stall_ns;
                                        }
                                    }
                                    LpmeAction::ReturnBudget(surplus) => {
                                        if cpme.release(unit, surplus).is_ok() {
                                            groups[g].lpme.relinquish(surplus);
                                        }
                                    }
                                    LpmeAction::None => {}
                                }
                                let acc = &mut groups[g].window_acc;
                                acc.busy_cycles += obs.busy_cycles;
                                acc.stall_cycles += obs.stall_cycles;
                                acc.l3_stall_cycles += obs.l3_stall_cycles;
                                acc.projected_power_mw =
                                    acc.projected_power_mw.max(obs.projected_power_mw);
                                groups[g].window_elapsed_ns += duration;
                                if groups[g].window_elapsed_ns >= window_ns {
                                    let window = groups[g].window_acc;
                                    let _plan = groups[g].governor.step_with_slack(window, 0.03);
                                    groups[g].window_acc = WindowObservation::default();
                                    groups[g].window_elapsed_ns = 0.0;
                                }
                            }

                            let fp32_equiv_macs =
                                (descriptor.macs as f64 / descriptor.dtype.ops_multiplier()) as u64;
                            energy.charge_compute(
                                energy_model,
                                power_cfg,
                                freq,
                                fp32_equiv_macs,
                                descriptor.vector_ops,
                                descriptor.sfu_ops,
                            );
                            energy.charge_memory(
                                energy_model,
                                descriptor.l1_bytes,
                                descriptor.l2_bytes,
                                descriptor.l3_bytes,
                            );
                            energy.charge_active_idle(
                                energy_model,
                                power_cfg,
                                freq,
                                duration / n_groups as f64,
                            );

                            counters.kernel_launches += 1;
                            counters.macs += descriptor.macs;
                            counters.vector_ops += descriptor.vector_ops;
                            counters.sfu_ops += descriptor.sfu_ops;
                            counters.compute_busy_ns += busy_ns;
                            counters.memory_stall_ns += mem_stall;
                            groups[g].freq_time_product += freq as f64 * duration;
                            groups[g].busy_time_ns += duration;

                            streams[si].clock_ns = start + code_stall + duration;
                            streams[si].pc += 1;
                            progressed = true;
                        }
                    }
                }
            }
            if all_done {
                break;
            }
            if !progressed {
                return Err(SimError::Deadlock {
                    pending_events: sync.pending_events(),
                });
            }
        }

        let latency_ns = streams.iter().map(|s| s.clock_ns).fold(0.0f64, f64::max);
        energy.charge_static(energy_model, latency_ns);

        let (fp, bt): (f64, f64) = groups
            .iter()
            .map(|g| (g.freq_time_product, g.busy_time_ns))
            .fold((0.0, 0.0), |(a, b), (c, d)| (a + c, b + d));
        let mean_freq_mhz = if bt > 0.0 {
            fp / bt
        } else {
            cfg.clock_mhz as f64
        };

        counters.sync_ops += sync.ops();

        Ok(RunReport {
            latency_ns,
            energy,
            counters,
            mean_freq_mhz,
            program: program.name.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dma::{DmaDescriptor, DmaPath, MemLevel};

    fn fit20() -> AnalyticTiming {
        AnalyticTiming::calibrate(&ChipConfig::dtu20()).unwrap()
    }

    fn rtol(a: f64, b: f64) -> f64 {
        if a == b {
            return 0.0;
        }
        (a - b).abs() / a.abs().max(b.abs())
    }

    fn mixed_program(dtype: DataType) -> Program {
        let mut p = Program::new("mixed");
        for gi in 0..2 {
            let mut s = Stream::new(GroupId::new(0, gi));
            s.push(Command::Dma {
                descriptor: DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 4 << 20),
                overlapped: true,
            });
            for k in 0..24u64 {
                let mut d = KernelDescriptor::new(format!("k{gi}_{k}"));
                d.class = OpClass::MatrixDense;
                d.dtype = dtype;
                d.macs = 40_000_000 + k * 3_000_000;
                d.vector_ops = 2_000_000;
                d.sfu_ops = if k % 3 == 0 { 500_000 } else { 0 };
                d.l2_bytes = 2 << 20;
                d.l3_bytes = (8 << 20) + (k as u64) * 100_000;
                d.code_bytes = 16 * 1024;
                d.narrow_dim = if k % 4 == 0 { 16 } else { 0 };
                s.push(Command::Launch {
                    kernel: KernelId(100 * gi as u64 + k),
                    descriptor: d,
                });
            }
            p.add_stream(s);
        }
        // Cross-stream dependency to exercise the sync path.
        let mut a = Stream::new(GroupId::new(1, 0));
        a.push(Command::RegisterEvent {
            event: 7,
            pattern: SyncPattern::OneToOne,
        })
        .push(Command::Signal { event: 7 });
        let mut b = Stream::new(GroupId::new(1, 1));
        b.push(Command::Wait { event: 7 });
        let mut d = KernelDescriptor::new("tail");
        d.dtype = dtype;
        d.macs = 90_000_000;
        d.l3_bytes = 1 << 20;
        d.code_bytes = 8 * 1024;
        b.push(Command::Launch {
            kernel: KernelId(999),
            descriptor: d,
        });
        p.add_stream(a);
        p.add_stream(b);
        p
    }

    #[test]
    fn interpreted_backend_is_chip_run() {
        let chip = Chip::new(ChipConfig::dtu20());
        let p = mixed_program(DataType::Fp16);
        let direct = chip.run(&p).unwrap();
        let via = InterpretedBackend.run(&chip, &p).unwrap();
        assert_eq!(direct, via);
    }

    #[test]
    fn analytic_matches_interpreter_on_dtu20() {
        let chip = Chip::new(ChipConfig::dtu20());
        let backend = AnalyticBackend::new(fit20());
        for dtype in [DataType::Fp16, DataType::Fp32, DataType::Int8] {
            let p = mixed_program(dtype);
            let golden = chip.run(&p).unwrap();
            let fast = backend.run(&chip, &p).unwrap();
            let e = rtol(golden.latency_ns, fast.latency_ns);
            assert!(
                e < 1e-6,
                "{dtype:?}: latency rtol {e} (golden {} vs analytic {})",
                golden.latency_ns,
                fast.latency_ns
            );
            assert!(rtol(golden.energy_joules(), fast.energy_joules()) < 1e-6);
            assert!(rtol(golden.mean_freq_mhz, fast.mean_freq_mhz) < 1e-6);
            assert_eq!(
                golden.counters.kernel_launches,
                fast.counters.kernel_launches
            );
            assert_eq!(golden.counters.sync_ops, fast.counters.sync_ops);
            assert_eq!(golden.counters.icache_hits, fast.counters.icache_hits);
            assert_eq!(golden.counters.dma_wire_bytes, fast.counters.dma_wire_bytes);
        }
    }

    #[test]
    fn analytic_matches_interpreter_on_dtu10() {
        let cfg = ChipConfig::dtu10();
        let chip = Chip::new(cfg.clone());
        let backend = AnalyticBackend::calibrated(&cfg).unwrap();
        // DTU 1.0 has one group per cluster; place streams accordingly,
        // and exercise the skinny-tile penalty (active without
        // fine-grained VMM).
        let mut p = Program::new("v1");
        for c in 0..2usize {
            let mut s = Stream::new(GroupId::new(c, 0));
            for k in 0..12u64 {
                let mut d = KernelDescriptor::new(format!("k{c}_{k}"));
                d.dtype = DataType::Fp16;
                d.macs = 30_000_000;
                d.vector_ops = 1_000_000;
                d.l3_bytes = 4 << 20;
                d.code_bytes = 16 * 1024;
                d.narrow_dim = [0u64, 8, 48, 128][k as usize % 4];
                s.push(Command::Launch {
                    kernel: KernelId(50 * c as u64 + k),
                    descriptor: d,
                });
            }
            p.add_stream(s);
        }
        let golden = chip.run(&p).unwrap();
        let fast = backend.run(&chip, &p).unwrap();
        let e = rtol(golden.latency_ns, fast.latency_ns);
        assert!(e < 1e-6, "latency rtol {e}");
    }

    #[test]
    fn perturbed_calibration_breaks_the_error_bound() {
        // The CI gate must actually bite: inflate one fitted coefficient
        // by 10% and the analytic latency must drift past 5% rtol on a
        // compute-bound program.
        let chip = Chip::new(ChipConfig::dtu20());
        let mut bad = fit20();
        bad.mac_total_per_ns *= 1.10;
        let backend = AnalyticBackend::new(bad);
        let mut p = Program::new("compute");
        let mut s = Stream::new(GroupId::new(0, 0));
        for k in 0..8u64 {
            let mut d = KernelDescriptor::new(format!("k{k}"));
            d.dtype = DataType::Fp16;
            d.macs = 400_000_000;
            s.push(Command::Launch {
                kernel: KernelId(k),
                descriptor: d,
            });
        }
        p.add_stream(s);
        let golden = chip.run(&p).unwrap();
        let fast = backend.run(&chip, &p).unwrap();
        assert!(
            rtol(golden.latency_ns, fast.latency_ns) > 0.05,
            "a 10% coefficient error must exceed the 5% gate"
        );
    }

    #[test]
    fn analytic_errors_match_interpreter() {
        let chip = Chip::new(ChipConfig::dtu20());
        let backend = AnalyticBackend::new(fit20());
        // Unknown group.
        let mut p = Program::new("bad");
        p.add_stream(Stream::new(GroupId::new(9, 0)));
        assert!(matches!(
            backend.run(&chip, &p),
            Err(SimError::UnknownGroup { .. })
        ));
        // Deadlock.
        let mut p = Program::new("dead");
        let mut s = Stream::new(GroupId::new(0, 0));
        s.push(Command::RegisterEvent {
            event: 3,
            pattern: SyncPattern::OneToOne,
        })
        .push(Command::Wait { event: 3 });
        p.add_stream(s);
        match backend.run(&chip, &p) {
            Err(SimError::Deadlock { pending_events }) => assert_eq!(pending_events, vec![3]),
            other => panic!("expected deadlock, got {other:?}"),
        }
        // Illegal DMA.
        let mut p = Program::new("illegal");
        let mut s = Stream::new(GroupId::new(0, 0));
        s.push(Command::Dma {
            descriptor: DmaDescriptor::copy(DmaPath::new(MemLevel::Host, MemLevel::L1), 64),
            overlapped: false,
        });
        p.add_stream(s);
        assert!(matches!(backend.run(&chip, &p), Err(SimError::Dma(_))));
    }

    #[test]
    fn calibration_json_roundtrip_is_exact() {
        let fit = fit20();
        let text = fit.to_json();
        let back = AnalyticTiming::from_json(&text).expect("parses");
        assert_eq!(fit, back, "f64 round-trip must be bitwise exact");
    }

    #[test]
    fn corrupt_calibration_json_rejected() {
        let fit = fit20();
        let good = fit.to_json();
        assert!(AnalyticTiming::from_json(&good[..good.len() / 2]).is_none());
        assert!(AnalyticTiming::from_json("{}").is_none());
        assert!(AnalyticTiming::from_json(
            &good.replace("\"calibration_version\":1", "\"calibration_version\":999")
        )
        .is_none());
        // A negated rate is structurally valid JSON but semantically
        // corrupt: validation rejects it.
        let vec_field = format!("\"vec_per_ns\":{}", number(fit.vec_per_ns));
        let negated = good.replace(
            &vec_field,
            &format!("\"vec_per_ns\":{}", number(-fit.vec_per_ns)),
        );
        assert_ne!(negated, good);
        assert!(AnalyticTiming::from_json(&negated).is_none());
    }

    #[test]
    fn empty_program_zero_latency() {
        let chip = Chip::new(ChipConfig::dtu20());
        let backend = AnalyticBackend::new(fit20());
        let r = backend.run(&chip, &Program::new("empty")).unwrap();
        assert_eq!(r.latency_ns, 0.0);
        assert_eq!(r.mean_freq_mhz, chip.config().clock_mhz as f64);
    }
}
