//! Programs: per-processing-group command streams.
//!
//! The compiler lowers a fused DNN graph into one [`Stream`] per
//! processing group in the placement (Fig. 7's resource-assignment
//! model). A stream is an ordered list of [`Command`]s; streams run
//! concurrently and coordinate through sync events.

use crate::dma::DmaDescriptor;
use crate::sync::SyncPattern;
use dtu_isa::{KernelDescriptor, KernelId};
use std::fmt;

/// Identity of a processing group: cluster index plus group-in-cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId {
    /// Owning cluster.
    pub cluster: usize,
    /// Group index within the cluster.
    pub group: usize,
}

impl GroupId {
    /// Creates a group id.
    pub const fn new(cluster: usize, group: usize) -> Self {
        GroupId { cluster, group }
    }

    /// Flat index given `groups_per_cluster`.
    pub fn flat(self, groups_per_cluster: usize) -> usize {
        self.cluster * groups_per_cluster + self.group
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}.{}", self.cluster, self.group)
    }
}

/// One command in a group's stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Launch a kernel across the group's cores (the descriptor carries
    /// total work; the group's cores split it evenly).
    Launch {
        /// Kernel identity (for the instruction cache).
        kernel: KernelId,
        /// Work descriptor.
        descriptor: KernelDescriptor,
    },
    /// Issue a DMA transfer on the group's DMA engine.
    Dma {
        /// The transfer.
        descriptor: DmaDescriptor,
        /// When true the transfer overlaps the *next* Launch command
        /// (multiple buffering); otherwise the stream blocks on it.
        overlapped: bool,
    },
    /// Prefetch kernel code into the instruction cache.
    Prefetch {
        /// Kernel identity.
        kernel: KernelId,
        /// Code bytes to load.
        code_bytes: u64,
    },
    /// Register a sync event (must precede its signals/waits).
    RegisterEvent {
        /// Event id (chip-wide namespace).
        event: u32,
        /// Coordination pattern.
        pattern: SyncPattern,
    },
    /// Signal a sync event at the stream's current time.
    Signal {
        /// Event id.
        event: u32,
    },
    /// Block until a sync event is ready.
    Wait {
        /// Event id.
        event: u32,
    },
}

impl Command {
    /// Short mnemonic for tracing.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Command::Launch { .. } => "launch",
            Command::Dma { .. } => "dma",
            Command::Prefetch { .. } => "prefetch",
            Command::RegisterEvent { .. } => "register",
            Command::Signal { .. } => "signal",
            Command::Wait { .. } => "wait",
        }
    }
}

/// An ordered command stream bound to one processing group.
#[derive(Debug, Clone, PartialEq)]
pub struct Stream {
    /// The group this stream runs on.
    pub group: GroupId,
    /// The commands, in program order.
    pub commands: Vec<Command>,
}

impl Stream {
    /// Creates an empty stream for a group.
    pub fn new(group: GroupId) -> Self {
        Stream {
            group,
            commands: Vec::new(),
        }
    }

    /// Appends a command (builder-style).
    pub fn push(&mut self, cmd: Command) -> &mut Self {
        self.commands.push(cmd);
        self
    }

    /// Number of kernel launches in the stream.
    pub fn launch_count(&self) -> usize {
        self.commands
            .iter()
            .filter(|c| matches!(c, Command::Launch { .. }))
            .count()
    }
}

/// A complete program: a set of concurrent streams.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The streams; group ids must be unique.
    pub streams: Vec<Stream>,
    /// Human-readable name (e.g. the model it came from).
    pub name: String,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            streams: Vec::new(),
            name: name.into(),
        }
    }

    /// Adds a stream. Replaces any existing stream for the same group.
    pub fn add_stream(&mut self, stream: Stream) -> &mut Self {
        self.streams.retain(|s| s.group != stream.group);
        self.streams.push(stream);
        self
    }

    /// Total commands across all streams.
    pub fn total_commands(&self) -> usize {
        self.streams.iter().map(|s| s.commands.len()).sum()
    }

    /// Groups this program occupies.
    pub fn groups(&self) -> Vec<GroupId> {
        self.streams.iter().map(|s| s.group).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dma::{DmaPath, MemLevel};

    #[test]
    fn group_id_flattening() {
        assert_eq!(GroupId::new(0, 2).flat(3), 2);
        assert_eq!(GroupId::new(1, 0).flat(3), 3);
        assert_eq!(GroupId::new(1, 2).flat(3), 5);
        assert_eq!(GroupId::new(1, 2).to_string(), "g1.2");
    }

    #[test]
    fn stream_builder_and_counts() {
        let mut s = Stream::new(GroupId::new(0, 0));
        s.push(Command::Launch {
            kernel: KernelId(1),
            descriptor: KernelDescriptor::new("a"),
        })
        .push(Command::Signal { event: 1 })
        .push(Command::Launch {
            kernel: KernelId(2),
            descriptor: KernelDescriptor::new("b"),
        });
        assert_eq!(s.launch_count(), 2);
        assert_eq!(s.commands[1].mnemonic(), "signal");
    }

    #[test]
    fn program_replaces_duplicate_group_streams() {
        let mut p = Program::new("test");
        p.add_stream(Stream::new(GroupId::new(0, 0)));
        let mut s2 = Stream::new(GroupId::new(0, 0));
        s2.push(Command::Wait { event: 1 });
        p.add_stream(s2);
        assert_eq!(p.streams.len(), 1);
        assert_eq!(p.total_commands(), 1);
        assert_eq!(p.groups(), vec![GroupId::new(0, 0)]);
    }

    #[test]
    fn dma_command_mnemonic() {
        let c = Command::Dma {
            descriptor: DmaDescriptor::copy(DmaPath::new(MemLevel::L3, MemLevel::L2), 64),
            overlapped: true,
        };
        assert_eq!(c.mnemonic(), "dma");
    }
}
