//! The hardware-defined sparse block codec used by the DMA engine.
//!
//! Section IV-C: "to optimize bandwidth for transferring sparse data, DMA
//! engines in DTU 2.0 support automatic data decompression. Given the data
//! compressed in hardware-defined formats, DMA engines decompress the data
//! while storing them at the destination memory locations."
//!
//! We model a bitmap-compressed format: data is chopped into fixed-size
//! blocks; each block stores a presence bitmap (1 bit per element) followed
//! by the packed non-zero values. This is representative of the class of
//! zero-suppression schemes used by inference hardware, and lets the
//! simulator compute exactly how many bytes a sparse transfer moves.

use crate::TensorError;

/// The block size, in elements, of the hardware compression format.
///
/// 64 elements per block keeps the bitmap an aligned 8 bytes.
pub const BLOCK_ELEMS: usize = 64;

/// Which sparse format a DMA transfer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SparseFormat {
    /// Uncompressed; every element is transferred.
    #[default]
    Dense,
    /// Bitmap zero-suppression in [`BLOCK_ELEMS`]-element blocks.
    BitmapBlock,
}

/// One compressed block: a presence bitmap plus packed non-zero values.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedBlock {
    /// Bit `i` set means element `i` of the block is non-zero and stored.
    pub bitmap: u64,
    /// The non-zero values, in ascending element order.
    pub values: Vec<f32>,
    /// Number of valid elements in this block (the final block of a stream
    /// may cover fewer than [`BLOCK_ELEMS`]).
    pub len: usize,
}

impl CompressedBlock {
    /// Size of this block on the wire, in bytes, assuming `elem_bytes` bytes
    /// per stored value plus the 8-byte bitmap.
    pub fn wire_bytes(&self, elem_bytes: usize) -> usize {
        8 + self.values.len() * elem_bytes
    }
}

/// Compresses a value stream into bitmap blocks.
///
/// Returns the block list. Exact zeros are suppressed; everything else
/// (including negative zero and NaN) is kept so that decompression is
/// bit-faithful for all observable values.
pub fn compress(data: &[f32]) -> Vec<CompressedBlock> {
    let mut out = Vec::with_capacity(data.len().div_ceil(BLOCK_ELEMS));
    for chunk in data.chunks(BLOCK_ELEMS) {
        let mut bitmap = 0u64;
        let mut values = Vec::new();
        for (i, &v) in chunk.iter().enumerate() {
            // `v != 0.0` is false for both +0.0 and -0.0; -0.0 decodes as
            // +0.0, which is value-identical for inference purposes.
            if v != 0.0 || v.is_nan() {
                bitmap |= 1u64 << i;
                values.push(v);
            }
        }
        out.push(CompressedBlock {
            bitmap,
            values,
            len: chunk.len(),
        });
    }
    out
}

/// Decompresses bitmap blocks back into a dense value stream.
///
/// # Errors
///
/// Returns [`TensorError::CorruptCompressedBlock`] if a block's bitmap
/// population count disagrees with its stored value count, a block claims
/// more than [`BLOCK_ELEMS`] elements, or bitmap bits are set beyond `len`.
pub fn decompress(blocks: &[CompressedBlock]) -> Result<Vec<f32>, TensorError> {
    let mut out = Vec::with_capacity(blocks.len() * BLOCK_ELEMS);
    for (bi, block) in blocks.iter().enumerate() {
        if block.len > BLOCK_ELEMS {
            return Err(TensorError::CorruptCompressedBlock {
                reason: format!("block {bi} claims {} > {BLOCK_ELEMS} elements", block.len),
            });
        }
        if block.len < BLOCK_ELEMS && (block.bitmap >> block.len) != 0 {
            return Err(TensorError::CorruptCompressedBlock {
                reason: format!("block {bi} has bitmap bits beyond its length {}", block.len),
            });
        }
        let expected = block.bitmap.count_ones() as usize;
        if expected != block.values.len() {
            return Err(TensorError::CorruptCompressedBlock {
                reason: format!(
                    "block {bi} bitmap popcount {expected} != value count {}",
                    block.values.len()
                ),
            });
        }
        let mut vi = 0usize;
        for i in 0..block.len {
            if block.bitmap & (1u64 << i) != 0 {
                out.push(block.values[vi]);
                vi += 1;
            } else {
                out.push(0.0);
            }
        }
    }
    Ok(out)
}

/// Fraction of exactly-zero elements in a value stream (0.0..=1.0).
///
/// An empty stream reports sparsity 0.
pub fn sparsity(data: &[f32]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let zeros = data.iter().filter(|&&v| v == 0.0 && !v.is_nan()).count();
    zeros as f64 / data.len() as f64
}

/// Total bytes a compressed stream occupies on the wire.
pub fn compressed_wire_bytes(blocks: &[CompressedBlock], elem_bytes: usize) -> usize {
    blocks.iter().map(|b| b.wire_bytes(elem_bytes)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_dense_data() {
        let data: Vec<f32> = (1..=100).map(|i| i as f32).collect();
        let blocks = compress(&data);
        assert_eq!(blocks.len(), 2);
        assert_eq!(decompress(&blocks).unwrap(), data);
    }

    #[test]
    fn roundtrip_sparse_data() {
        let mut data = vec![0.0f32; 200];
        data[3] = 1.5;
        data[64] = -2.0;
        data[199] = 7.0;
        let blocks = compress(&data);
        assert_eq!(decompress(&blocks).unwrap(), data);
        // Only three values stored across the stream.
        let stored: usize = blocks.iter().map(|b| b.values.len()).sum();
        assert_eq!(stored, 3);
    }

    #[test]
    fn all_zero_stream_compresses_to_bitmaps_only() {
        let data = vec![0.0f32; 128];
        let blocks = compress(&data);
        assert_eq!(compressed_wire_bytes(&blocks, 4), 16); // two 8-byte bitmaps
        assert_eq!(decompress(&blocks).unwrap(), data);
    }

    #[test]
    fn nan_is_preserved() {
        let data = vec![0.0, f32::NAN, 3.0];
        let blocks = compress(&data);
        let back = decompress(&blocks).unwrap();
        assert!(back[1].is_nan());
        assert_eq!(back[2], 3.0);
    }

    #[test]
    fn partial_final_block_roundtrips() {
        let data: Vec<f32> = (0..70)
            .map(|i| if i % 3 == 0 { 0.0 } else { i as f32 })
            .collect();
        let blocks = compress(&data);
        assert_eq!(blocks[1].len, 6);
        assert_eq!(decompress(&blocks).unwrap(), data);
    }

    #[test]
    fn corrupt_block_detected() {
        let mut blocks = compress(&[1.0, 2.0, 3.0]);
        blocks[0].values.pop();
        assert!(matches!(
            decompress(&blocks),
            Err(TensorError::CorruptCompressedBlock { .. })
        ));
    }

    #[test]
    fn oversized_block_detected() {
        let mut blocks = compress(&[1.0]);
        blocks[0].len = BLOCK_ELEMS + 1;
        assert!(decompress(&blocks).is_err());
    }

    #[test]
    fn bitmap_bits_beyond_len_detected() {
        let mut blocks = compress(&[1.0, 0.0]);
        blocks[0].bitmap |= 1 << 10; // beyond len=2
        assert!(decompress(&blocks).is_err());
    }

    #[test]
    fn sparsity_measurement() {
        assert_eq!(sparsity(&[]), 0.0);
        assert_eq!(sparsity(&[0.0, 0.0, 1.0, 2.0]), 0.5);
        assert_eq!(sparsity(&[0.0; 8]), 1.0);
    }

    #[test]
    fn wire_bytes_shrink_with_sparsity() {
        let dense: Vec<f32> = (1..=64).map(|i| i as f32).collect();
        let mut sparse = dense.clone();
        for v in sparse.iter_mut().take(48) {
            *v = 0.0;
        }
        let dense_bytes = compressed_wire_bytes(&compress(&dense), 4);
        let sparse_bytes = compressed_wire_bytes(&compress(&sparse), 4);
        assert!(sparse_bytes < dense_bytes);
        assert_eq!(dense_bytes, 8 + 64 * 4);
        assert_eq!(sparse_bytes, 8 + 16 * 4);
    }
}
