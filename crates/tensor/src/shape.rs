//! Shapes and strides: the index algebra underlying every tensor view.

use crate::TensorError;
use std::fmt;

/// The extents of a tensor along each axis.
///
/// A `Shape` is an ordered list of dimension sizes. Rank-0 shapes are
/// permitted and describe scalars (one element).
///
/// # Example
///
/// ```
/// use dtu_tensor::Shape;
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.len(), 24);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension sizes.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// Creates a scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dims; 1 for scalars).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains zero elements (some dim is 0).
    pub fn is_empty(&self) -> bool {
        self.dims.contains(&0)
    }

    /// Size along `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
    }

    /// Row-major (C-order) strides for this shape, in elements.
    pub fn contiguous_strides(&self) -> Strides {
        let mut strides = vec![0usize; self.dims.len()];
        let mut acc = 1usize;
        for (i, &d) in self.dims.iter().enumerate().rev() {
            strides[i] = acc;
            acc = acc.saturating_mul(d);
        }
        Strides::new(strides)
    }

    /// Converts a multi-index into a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index has the wrong
    /// rank or any coordinate exceeds its extent.
    pub fn flat_index(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.rank() || index.iter().zip(self.dims.iter()).any(|(&i, &d)| i >= d) {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                dims: self.dims.clone(),
            });
        }
        let strides = self.contiguous_strides();
        Ok(index
            .iter()
            .zip(strides.as_slice())
            .map(|(&i, &s)| i * s)
            .sum())
    }

    /// Converts a flat row-major offset into a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `flat >= len()`.
    pub fn multi_index(&self, flat: usize) -> Result<Vec<usize>, TensorError> {
        if flat >= self.len().max(1) || self.is_empty() {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![flat],
                dims: self.dims.clone(),
            });
        }
        let mut rem = flat;
        let mut out = vec![0usize; self.rank()];
        let strides = self.contiguous_strides();
        for (i, &s) in strides.as_slice().iter().enumerate() {
            out[i] = rem / s;
            rem %= s;
        }
        Ok(out)
    }

    /// Iterates over all multi-indices in row-major order.
    pub fn iter_indices(&self) -> IndexIter {
        IndexIter {
            shape: self.clone(),
            next: if self.is_empty() {
                None
            } else {
                Some(vec![0; self.rank()])
            },
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

/// Iterator over all multi-indices of a [`Shape`] in row-major order.
#[derive(Debug, Clone)]
pub struct IndexIter {
    shape: Shape,
    next: Option<Vec<usize>>,
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.clone()?;
        // Advance like an odometer, last axis fastest.
        let mut idx = current.clone();
        let mut axis = idx.len();
        loop {
            if axis == 0 {
                self.next = None;
                break;
            }
            axis -= 1;
            idx[axis] += 1;
            if idx[axis] < self.shape.dims[axis] {
                self.next = Some(idx);
                break;
            }
            idx[axis] = 0;
        }
        // Scalars: single empty index, then done.
        if current.is_empty() {
            self.next = None;
        }
        Some(current)
    }
}

/// Per-axis strides, in elements.
///
/// Strides pair with a [`Shape`] to describe non-contiguous views such as
/// transposes and slices without copying data.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Strides {
    strides: Vec<usize>,
}

impl Strides {
    /// Creates strides from per-axis element steps.
    pub fn new(strides: Vec<usize>) -> Self {
        Strides { strides }
    }

    /// The per-axis steps.
    pub fn as_slice(&self) -> &[usize] {
        &self.strides
    }

    /// Number of axes covered.
    pub fn rank(&self) -> usize {
        self.strides.len()
    }

    /// Whether these strides are the row-major contiguous strides of `shape`.
    pub fn is_contiguous_for(&self, shape: &Shape) -> bool {
        *self == shape.contiguous_strides()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_strides_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.contiguous_strides().as_slice(), &[12, 4, 1]);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.flat_index(&[]).unwrap(), 0);
    }

    #[test]
    fn flat_and_multi_index_roundtrip() {
        let s = Shape::new(vec![3, 5, 7]);
        for flat in 0..s.len() {
            let mi = s.multi_index(flat).unwrap();
            assert_eq!(s.flat_index(&mi).unwrap(), flat);
        }
    }

    #[test]
    fn flat_index_rejects_out_of_bounds() {
        let s = Shape::new(vec![2, 2]);
        assert!(s.flat_index(&[2, 0]).is_err());
        assert!(s.flat_index(&[0]).is_err());
        assert!(s.multi_index(4).is_err());
    }

    #[test]
    fn iter_indices_covers_all_in_order() {
        let s = Shape::new(vec![2, 3]);
        let all: Vec<_> = s.iter_indices().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[1], vec![0, 1]);
        assert_eq!(all[5], vec![1, 2]);
    }

    #[test]
    fn iter_indices_empty_shape_yields_nothing() {
        let s = Shape::new(vec![2, 0, 3]);
        assert!(s.is_empty());
        assert_eq!(s.iter_indices().count(), 0);
    }

    #[test]
    fn iter_indices_scalar_yields_one() {
        let s = Shape::scalar();
        let all: Vec<_> = s.iter_indices().collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn dim_accessor_and_error() {
        let s = Shape::new(vec![4, 9]);
        assert_eq!(s.dim(1).unwrap(), 9);
        assert_eq!(
            s.dim(2),
            Err(TensorError::AxisOutOfRange { axis: 2, rank: 2 })
        );
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(vec![3, 608, 608]).to_string(), "[3x608x608]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn strides_contiguity_check() {
        let s = Shape::new(vec![2, 3]);
        assert!(s.contiguous_strides().is_contiguous_for(&s));
        assert!(!Strides::new(vec![1, 2]).is_contiguous_for(&s));
    }
}
