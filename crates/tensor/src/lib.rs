//! Dense tensor layouts, transformations, and a sparse block codec.
//!
//! This crate is the data substrate of the DTU 2.0 reproduction. Everything
//! the paper's DMA engines do *to data while moving it* — padding, slicing,
//! transposition, concatenation, layout permutation, and sparse
//! decompression — is implemented here as pure, testable functions over
//! [`Tensor`] values, so that the simulator crate can stay focused on
//! *when* bytes move rather than *what* they become.
//!
//! # Example
//!
//! ```
//! use dtu_tensor::{Tensor, Shape};
//!
//! let t = Tensor::from_fn(Shape::new(vec![2, 3]), |idx| (idx[0] * 3 + idx[1]) as f32);
//! let tr = t.transpose(0, 1).unwrap();
//! assert_eq!(tr.shape().dims(), &[3, 2]);
//! assert_eq!(tr.get(&[2, 1]).unwrap(), 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod layout;
mod shape;
mod sparse;
mod tensor;
mod transform;

pub use error::TensorError;
pub use layout::{Layout, Permutation};
pub use shape::{Shape, Strides};
pub use sparse::{
    compress, compressed_wire_bytes, decompress, sparsity, CompressedBlock, SparseFormat,
    BLOCK_ELEMS,
};
pub use tensor::Tensor;
pub use transform::{concat, im2col, pad, slice, transpose, PadSpec, SliceSpec, TransformOp};
