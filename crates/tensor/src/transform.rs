//! On-the-fly tensor layout transformations performed by the DMA engine.
//!
//! Section IV-C of the paper lists padding, slicing, transposing, and
//! concatenation "on specified tensor dimensions" as transformations the DMA
//! engine applies while moving data. These are implemented here as pure
//! functions; the simulator's DMA model invokes them and charges the
//! appropriate transfer cost. `im2col` is included because it is the
//! canonical lowering of convolution onto a matrix engine.

use crate::{Permutation, Shape, Tensor, TensorError};

/// Padding amounts for one axis: `(before, after)` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PadSpec {
    /// Elements inserted before the first element of the axis.
    pub before: usize,
    /// Elements inserted after the last element of the axis.
    pub after: usize,
}

impl PadSpec {
    /// Symmetric padding of `n` on both ends.
    pub fn symmetric(n: usize) -> Self {
        PadSpec {
            before: n,
            after: n,
        }
    }

    /// No padding.
    pub fn none() -> Self {
        PadSpec::default()
    }
}

/// A half-open range with stride for one axis: elements
/// `start, start+step, ...` strictly below `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceSpec {
    /// First selected element.
    pub start: usize,
    /// One past the last candidate element.
    pub end: usize,
    /// Step between selected elements (must be >= 1).
    pub step: usize,
}

impl SliceSpec {
    /// Selects the full extent of an axis of size `n`.
    pub fn full(n: usize) -> Self {
        SliceSpec {
            start: 0,
            end: n,
            step: 1,
        }
    }

    /// Selects `[start, end)` with unit step.
    pub fn range(start: usize, end: usize) -> Self {
        SliceSpec {
            start,
            end,
            step: 1,
        }
    }

    /// Number of elements the spec selects.
    pub fn len(&self) -> usize {
        if self.end <= self.start || self.step == 0 {
            0
        } else {
            (self.end - self.start).div_ceil(self.step)
        }
    }

    /// Whether the spec selects nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A description of a single DMA-applied transformation, used by the
/// simulator to tag transfer descriptors.
#[derive(Debug, Clone, PartialEq)]
pub enum TransformOp {
    /// Plain copy; no reshaping.
    Identity,
    /// Per-axis padding with a constant value.
    Pad {
        /// Padding for each axis.
        spec: Vec<PadSpec>,
        /// The fill value.
        value: f32,
    },
    /// Per-axis strided slicing.
    Slice {
        /// Slice for each axis.
        spec: Vec<SliceSpec>,
    },
    /// Axis permutation.
    Transpose {
        /// The permutation to apply.
        perm: Permutation,
    },
    /// Concatenation along an axis (descriptor only; the data of the other
    /// parts comes from sibling transfers).
    Concat {
        /// Axis along which tensors are joined.
        axis: usize,
    },
}

/// Pads a tensor with a constant on every axis according to `spec`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `spec.len()` differs from the
/// tensor rank.
pub fn pad(input: &Tensor, spec: &[PadSpec], value: f32) -> Result<Tensor, TensorError> {
    if spec.len() != input.shape().rank() {
        return Err(TensorError::ShapeMismatch {
            reason: format!(
                "pad spec covers {} axes but tensor has rank {}",
                spec.len(),
                input.shape().rank()
            ),
        });
    }
    let new_dims: Vec<usize> = input
        .shape()
        .dims()
        .iter()
        .zip(spec)
        .map(|(&d, p)| d + p.before + p.after)
        .collect();
    let mut out = Tensor::full(Shape::new(new_dims), value);
    for idx in input.shape().iter_indices() {
        let dst: Vec<usize> = idx.iter().zip(spec).map(|(&i, p)| i + p.before).collect();
        let v = input.get(&idx)?;
        out.set(&dst, v)?;
    }
    Ok(out)
}

/// Extracts a strided slice of a tensor.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on a rank mismatch and
/// [`TensorError::InvalidSlice`] if any spec has zero step or exceeds the
/// axis extent.
pub fn slice(input: &Tensor, spec: &[SliceSpec]) -> Result<Tensor, TensorError> {
    if spec.len() != input.shape().rank() {
        return Err(TensorError::ShapeMismatch {
            reason: format!(
                "slice spec covers {} axes but tensor has rank {}",
                spec.len(),
                input.shape().rank()
            ),
        });
    }
    for (axis, (s, &d)) in spec.iter().zip(input.shape().dims()).enumerate() {
        if s.step == 0 {
            return Err(TensorError::InvalidSlice {
                reason: format!("axis {axis}: zero step"),
            });
        }
        if s.end > d || s.start > s.end {
            return Err(TensorError::InvalidSlice {
                reason: format!(
                    "axis {axis}: slice {}..{} (step {}) exceeds extent {d}",
                    s.start, s.end, s.step
                ),
            });
        }
    }
    let new_dims: Vec<usize> = spec.iter().map(SliceSpec::len).collect();
    let new_shape = Shape::new(new_dims);
    let mut out = Tensor::zeros(new_shape.clone());
    for dst_idx in new_shape.iter_indices() {
        let src: Vec<usize> = dst_idx
            .iter()
            .zip(spec)
            .map(|(&i, s)| s.start + i * s.step)
            .collect();
        let v = input.get(&src)?;
        out.set(&dst_idx, v)?;
    }
    Ok(out)
}

/// Permutes tensor axes (materialising copy), the DMA "transpose" transform.
///
/// # Errors
///
/// Propagates [`TensorError::ShapeMismatch`] from [`Tensor::permute`].
pub fn transpose(input: &Tensor, perm: &Permutation) -> Result<Tensor, TensorError> {
    input.permute(perm)
}

/// Concatenates tensors along `axis`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the list is empty, ranks
/// differ, or non-concat dims differ; [`TensorError::AxisOutOfRange`] for a
/// bad axis.
pub fn concat(parts: &[&Tensor], axis: usize) -> Result<Tensor, TensorError> {
    let first = parts.first().ok_or(TensorError::ShapeMismatch {
        reason: "concat of zero tensors".into(),
    })?;
    let rank = first.shape().rank();
    if axis >= rank {
        return Err(TensorError::AxisOutOfRange { axis, rank });
    }
    for p in parts {
        if p.shape().rank() != rank {
            return Err(TensorError::ShapeMismatch {
                reason: "concat rank mismatch".into(),
            });
        }
        for (a, (&d0, &d)) in first
            .shape()
            .dims()
            .iter()
            .zip(p.shape().dims())
            .enumerate()
        {
            if a != axis && d0 != d {
                return Err(TensorError::ShapeMismatch {
                    reason: format!("concat dim {a} differs: {d0} vs {d}"),
                });
            }
        }
    }
    let total: usize = parts.iter().map(|p| p.shape().dims()[axis]).sum();
    let mut new_dims = first.shape().dims().to_vec();
    new_dims[axis] = total;
    let mut out = Tensor::zeros(Shape::new(new_dims));
    let mut offset = 0usize;
    for p in parts {
        for idx in p.shape().iter_indices() {
            let mut dst = idx.clone();
            dst[axis] += offset;
            let v = p.get(&idx)?;
            out.set(&dst, v)?;
        }
        offset += p.shape().dims()[axis];
    }
    Ok(out)
}

/// Lowers a padded convolution input into column-matrix form.
///
/// `input` must be `[C, H, W]`. The output is
/// `[out_h * out_w, C * kh * kw]`: each row is the receptive field of one
/// output position, so a convolution becomes a matmul with a
/// `[C*kh*kw, out_c]` weight matrix. Out-of-bounds taps read as zero
/// (implicit padding by `pad_h`/`pad_w`).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `input` is rank-3, and
/// [`TensorError::InvalidSlice`] if the kernel plus padding cannot fit.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    input: &Tensor,
    kh: usize,
    kw: usize,
    stride_h: usize,
    stride_w: usize,
    pad_h: usize,
    pad_w: usize,
) -> Result<Tensor, TensorError> {
    let dims = input.shape().dims();
    if dims.len() != 3 {
        return Err(TensorError::ShapeMismatch {
            reason: format!("im2col expects [C,H,W], got {}", input.shape()),
        });
    }
    if stride_h == 0 || stride_w == 0 || kh == 0 || kw == 0 {
        return Err(TensorError::InvalidSlice {
            reason: "im2col kernel/stride must be nonzero".into(),
        });
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let padded_h = h + 2 * pad_h;
    let padded_w = w + 2 * pad_w;
    if kh > padded_h || kw > padded_w {
        return Err(TensorError::InvalidSlice {
            reason: format!("kernel {kh}x{kw} larger than padded input {padded_h}x{padded_w}"),
        });
    }
    let out_h = (padded_h - kh) / stride_h + 1;
    let out_w = (padded_w - kw) / stride_w + 1;
    let mut out = Tensor::zeros(Shape::new(vec![out_h * out_w, c * kh * kw]));
    for oy in 0..out_h {
        for ox in 0..out_w {
            let row = oy * out_w + ox;
            for ch in 0..c {
                for ky in 0..kh {
                    for kx in 0..kw {
                        let iy = (oy * stride_h + ky) as isize - pad_h as isize;
                        let ix = (ox * stride_w + kx) as isize - pad_w as isize;
                        let col = ch * kh * kw + ky * kw + kx;
                        let v = if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                            input.get(&[ch, iy as usize, ix as usize])?
                        } else {
                            0.0
                        };
                        out.set(&[row, col], v)?;
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(dims: Vec<usize>) -> Tensor {
        let shape = Shape::new(dims);
        let mut n = 0.0f32;
        Tensor::from_fn(shape, |_| {
            n += 1.0;
            n
        })
    }

    #[test]
    fn pad_symmetric_2d() {
        let t = seq(vec![2, 2]); // [[1,2],[3,4]]
        let out = pad(&t, &[PadSpec::symmetric(1), PadSpec::none()], 0.0).unwrap();
        assert_eq!(out.shape().dims(), &[4, 2]);
        assert_eq!(out.get(&[0, 0]).unwrap(), 0.0);
        assert_eq!(out.get(&[1, 0]).unwrap(), 1.0);
        assert_eq!(out.get(&[2, 1]).unwrap(), 4.0);
        assert_eq!(out.get(&[3, 1]).unwrap(), 0.0);
    }

    #[test]
    fn pad_with_custom_value() {
        let t = seq(vec![1]);
        let out = pad(
            &t,
            &[PadSpec {
                before: 2,
                after: 0,
            }],
            -1.0,
        )
        .unwrap();
        assert_eq!(out.data(), &[-1.0, -1.0, 1.0]);
    }

    #[test]
    fn pad_rank_mismatch_errors() {
        let t = seq(vec![2, 2]);
        assert!(pad(&t, &[PadSpec::none()], 0.0).is_err());
    }

    #[test]
    fn slice_strided() {
        let t = seq(vec![6]); // 1..6
        let out = slice(
            &t,
            &[SliceSpec {
                start: 1,
                end: 6,
                step: 2,
            }],
        )
        .unwrap();
        assert_eq!(out.data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn slice_2d_window() {
        let t = seq(vec![3, 3]);
        let out = slice(&t, &[SliceSpec::range(1, 3), SliceSpec::range(0, 2)]).unwrap();
        assert_eq!(out.shape().dims(), &[2, 2]);
        assert_eq!(out.data(), &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn slice_rejects_bad_specs() {
        let t = seq(vec![3]);
        assert!(slice(
            &t,
            &[SliceSpec {
                start: 0,
                end: 4,
                step: 1
            }]
        )
        .is_err());
        assert!(slice(
            &t,
            &[SliceSpec {
                start: 0,
                end: 3,
                step: 0
            }]
        )
        .is_err());
        assert!(slice(
            &t,
            &[SliceSpec {
                start: 2,
                end: 1,
                step: 1
            }]
        )
        .is_err());
    }

    #[test]
    fn pad_then_slice_recovers_original() {
        let t = seq(vec![2, 3]);
        let padded = pad(&t, &[PadSpec::symmetric(2), PadSpec::symmetric(1)], 9.0).unwrap();
        let back = slice(&padded, &[SliceSpec::range(2, 4), SliceSpec::range(1, 4)]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn concat_axis0_and_axis1() {
        let a = seq(vec![1, 2]);
        let b = seq(vec![1, 2]);
        let c0 = concat(&[&a, &b], 0).unwrap();
        assert_eq!(c0.shape().dims(), &[2, 2]);
        let c1 = concat(&[&a, &b], 1).unwrap();
        assert_eq!(c1.shape().dims(), &[1, 4]);
        assert_eq!(c1.data(), &[1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn concat_validates() {
        let a = seq(vec![1, 2]);
        let b = seq(vec![2, 3]);
        assert!(concat(&[&a, &b], 0).is_err());
        assert!(concat(&[], 0).is_err());
        assert!(concat(&[&a], 5).is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no padding: rows are just the pixels.
        let t = seq(vec![1, 2, 2]);
        let cols = im2col(&t, 1, 1, 1, 1, 0, 0).unwrap();
        assert_eq!(cols.shape().dims(), &[4, 1]);
        assert_eq!(cols.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn im2col_3x3_same_padding_shape() {
        let t = seq(vec![2, 5, 5]);
        let cols = im2col(&t, 3, 3, 1, 1, 1, 1).unwrap();
        assert_eq!(cols.shape().dims(), &[25, 18]);
    }

    #[test]
    fn im2col_matmul_equals_direct_convolution() {
        // Direct 2D convolution vs im2col + matmul, single channel.
        let input = seq(vec![1, 4, 4]);
        let kernel = Tensor::from_vec(vec![1.0, 0.0, -1.0, 2.0]); // 2x2
        let cols = im2col(&input, 2, 2, 1, 1, 0, 0).unwrap();
        let w = kernel.reshape(Shape::new(vec![4, 1])).unwrap();
        let out = cols.matmul(&w).unwrap();
        // Manual convolution at output (0,0): taps (0,0),(0,1),(1,0),(1,1)
        let manual = input.get(&[0, 0, 0]).unwrap() * 1.0
            + input.get(&[0, 0, 1]).unwrap() * 0.0
            + -input.get(&[0, 1, 0]).unwrap()
            + input.get(&[0, 1, 1]).unwrap() * 2.0;
        assert_eq!(out.get(&[0, 0]).unwrap(), manual);
        assert_eq!(out.shape().dims(), &[9, 1]);
    }

    #[test]
    fn im2col_rejects_bad_inputs() {
        let t = seq(vec![2, 2]);
        assert!(im2col(&t, 1, 1, 1, 1, 0, 0).is_err());
        let t3 = seq(vec![1, 2, 2]);
        assert!(im2col(&t3, 0, 1, 1, 1, 0, 0).is_err());
        assert!(im2col(&t3, 1, 1, 0, 1, 0, 0).is_err());
        assert!(im2col(&t3, 5, 5, 1, 1, 0, 0).is_err());
    }
}
