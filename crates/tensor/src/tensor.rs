//! The dense tensor container.

use crate::{Permutation, Shape, TensorError};
use std::fmt;

/// A dense, row-major, `f32` tensor.
///
/// All simulated values flow through `f32` storage; narrower machine types
/// (FP16/BF16/INT8) are modelled by quantisation functions in `dtu-isa`
/// rather than by separate storage, which matches how the functional layer of
/// the simulator treats precision: it affects *accuracy and cost*, not
/// program structure.
///
/// # Example
///
/// ```
/// use dtu_tensor::{Tensor, Shape};
/// let z = Tensor::zeros(Shape::new(vec![2, 2]));
/// assert_eq!(z.data(), &[0.0; 4]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` does not
    /// equal the element count of `shape`.
    pub fn new(shape: Shape, data: Vec<f32>) -> Result<Self, TensorError> {
        if shape.len() != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor of zeros.
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.len();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor where every element equals `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        let n = shape.len();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a tensor by evaluating `f` at every multi-index.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for idx in shape.iter_indices() {
            data.push(f(&idx));
        }
        Tensor { shape, data }
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_vec(data: Vec<f32>) -> Self {
        let shape = Shape::new(vec![data.len()]);
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The backing data in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing data in row-major order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads the element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for bad indices.
    pub fn get(&self, index: &[usize]) -> Result<f32, TensorError> {
        let flat = self.shape.flat_index(index)?;
        Ok(self.data[flat])
    }

    /// Writes the element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for bad indices.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let flat = self.shape.flat_index(index)?;
        self.data[flat] = value;
        Ok(())
    }

    /// Returns a copy reshaped to `shape` (element count must match).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if element counts differ.
    pub fn reshape(&self, shape: Shape) -> Result<Tensor, TensorError> {
        Tensor::new(shape, self.data.clone())
    }

    /// Returns a new tensor with axes permuted by `perm` (materialised copy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `perm.rank() != self.rank()`.
    pub fn permute(&self, perm: &Permutation) -> Result<Tensor, TensorError> {
        let new_dims = perm.apply(self.shape.dims())?;
        let new_shape = Shape::new(new_dims);
        let mut out = Tensor::zeros(new_shape.clone());
        let src_axes = perm.as_slice();
        for new_idx in new_shape.iter_indices() {
            // Recover the source index: output axis i reads input axis perm[i].
            let mut src_idx = vec![0usize; self.shape.rank()];
            for (i, &axis) in src_axes.iter().enumerate() {
                src_idx[axis] = new_idx[i];
            }
            let v = self.get(&src_idx)?;
            out.set(&new_idx, v)?;
        }
        Ok(out)
    }

    /// Returns a new tensor with axes `a` and `b` swapped.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if either axis is invalid.
    pub fn transpose(&self, a: usize, b: usize) -> Result<Tensor, TensorError> {
        let perm = Permutation::swap(self.shape.rank(), a, b)?;
        self.permute(&perm)
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise binary operation with another tensor of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip_map(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                reason: format!("{} vs {}", self.shape, other.shape),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute difference against another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32, TensorError> {
        let d = self.zip_map(other, |a, b| (a - b).abs())?;
        Ok(d.data.iter().copied().fold(0.0, f32::max))
    }

    /// Dense 2-D matrix multiply: `self [m,k] × rhs [k,n] -> [m,n]`.
    ///
    /// This is the reference implementation the VMM engine is tested against.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless both operands are rank-2
    /// with a matching inner dimension.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let (a, b) = (self.shape.dims(), rhs.shape.dims());
        if a.len() != 2 || b.len() != 2 || a[1] != b[0] {
            return Err(TensorError::ShapeMismatch {
                reason: format!("matmul {} x {}", self.shape, rhs.shape),
            });
        }
        let (m, k, n) = (a[0], a[1], b[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = self.data[i * k + p];
                if av == 0.0 {
                    continue;
                }
                let row = &rhs.data[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(row.iter()) {
                    *o += av * bv;
                }
            }
        }
        Tensor::new(Shape::new(vec![m, n]), out)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ({} elems)", self.shape, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_length() {
        assert!(Tensor::new(Shape::new(vec![2, 2]), vec![0.0; 3]).is_err());
        assert!(Tensor::new(Shape::new(vec![2, 2]), vec![0.0; 4]).is_ok());
    }

    #[test]
    fn from_fn_orders_row_major() {
        let t = Tensor::from_fn(Shape::new(vec![2, 2]), |i| (i[0] * 10 + i[1]) as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(Shape::new(vec![3, 4]));
        t.set(&[2, 3], 7.5).unwrap();
        assert_eq!(t.get(&[2, 3]).unwrap(), 7.5);
        assert!(t.get(&[3, 0]).is_err());
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::from_fn(Shape::new(vec![2, 3]), |i| (i[0] * 3 + i[1]) as f32);
        let tr = t.transpose(0, 1).unwrap();
        assert_eq!(tr.shape().dims(), &[3, 2]);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(t.get(&[r, c]).unwrap(), tr.get(&[c, r]).unwrap());
            }
        }
    }

    #[test]
    fn double_transpose_is_identity() {
        let t = Tensor::from_fn(Shape::new(vec![4, 5]), |i| (i[0] * 5 + i[1]) as f32);
        let back = t.transpose(0, 1).unwrap().transpose(0, 1).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn permute_nchw_to_nhwc() {
        use crate::Layout;
        let t = Tensor::from_fn(Shape::new(vec![1, 2, 3, 4]), |i| {
            (i[1] * 100 + i[2] * 10 + i[3]) as f32
        });
        let p = Layout::Nchw.permutation_to(Layout::Nhwc);
        let out = t.permute(&p).unwrap();
        assert_eq!(out.shape().dims(), &[1, 3, 4, 2]);
        assert_eq!(
            out.get(&[0, 2, 1, 1]).unwrap(),
            t.get(&[0, 1, 2, 1]).unwrap()
        );
    }

    #[test]
    fn matmul_matches_manual() {
        let a = Tensor::new(Shape::new(vec![2, 3]), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::new(Shape::new(vec![3, 2]), vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(Shape::new(vec![2, 3]));
        let b = Tensor::zeros(Shape::new(vec![2, 3]));
        assert!(a.matmul(&b).is_err());
        let c = Tensor::zeros(Shape::new(vec![2, 3, 1]));
        assert!(c.matmul(&a).is_err());
    }

    #[test]
    fn zip_map_and_diff() {
        let a = Tensor::from_vec(vec![1.0, 2.0]);
        let b = Tensor::from_vec(vec![1.5, 1.0]);
        let s = a.zip_map(&b, |x, y| x + y).unwrap();
        assert_eq!(s.data(), &[2.5, 3.0]);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 1.0);
        let c = Tensor::zeros(Shape::new(vec![3]));
        assert!(a.zip_map(&c, |x, _| x).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4.]);
        let r = t.reshape(Shape::new(vec![2, 2])).unwrap();
        assert_eq!(r.get(&[1, 0]).unwrap(), 3.0);
        assert!(t.reshape(Shape::new(vec![3])).is_err());
    }

    #[test]
    fn map_and_sum() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0]);
        assert_eq!(t.map(f32::abs).sum(), 6.0);
    }
}
