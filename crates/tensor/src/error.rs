//! Error type for tensor operations.

use std::error::Error;
use std::fmt;

/// Errors produced by tensor construction and transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The shape supplied does not match the amount of data supplied.
    ShapeDataMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// A multidimensional index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape against which the index failed.
        dims: Vec<usize>,
    },
    /// A slice specification exceeded the tensor bounds or was empty.
    InvalidSlice {
        /// Human-readable description of what went wrong.
        reason: String,
    },
    /// Tensors passed to an n-ary operation had incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the incompatibility.
        reason: String,
    },
    /// A rank-0 (or otherwise degenerate) tensor was passed where it is not allowed.
    DegenerateTensor,
    /// A compressed block failed to decode.
    CorruptCompressedBlock {
        /// Human-readable description of the corruption.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "shape expects {expected} elements but {actual} were supplied"
            ),
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
            TensorError::IndexOutOfBounds { index, dims } => {
                write!(f, "index {index:?} out of bounds for dims {dims:?}")
            }
            TensorError::InvalidSlice { reason } => write!(f, "invalid slice: {reason}"),
            TensorError::ShapeMismatch { reason } => write!(f, "shape mismatch: {reason}"),
            TensorError::DegenerateTensor => write!(f, "degenerate (rank-0 or empty) tensor"),
            TensorError::CorruptCompressedBlock { reason } => {
                write!(f, "corrupt compressed block: {reason}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = vec![
            TensorError::ShapeDataMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::AxisOutOfRange { axis: 5, rank: 2 },
            TensorError::IndexOutOfBounds {
                index: vec![9],
                dims: vec![3],
            },
            TensorError::InvalidSlice {
                reason: "start beyond end".into(),
            },
            TensorError::ShapeMismatch {
                reason: "rank differs".into(),
            },
            TensorError::DegenerateTensor,
            TensorError::CorruptCompressedBlock {
                reason: "bitmap truncated".into(),
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("index"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
