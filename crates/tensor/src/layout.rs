//! Named tensor layouts and axis permutations.
//!
//! DNN frameworks disagree about which axis order a 4-D activation uses;
//! the paper's DMA engines transform between them on the fly. We model the
//! common layouts as an enum plus a general [`Permutation`] type.

use crate::TensorError;
use std::fmt;

/// A named memory layout for rank-4 activation tensors.
///
/// `Nchw` is the PyTorch-style default (batch, channels, height, width);
/// `Nhwc` is the TensorFlow-style default. Table III of the paper mixes both
/// (e.g. SRResNet's input is listed as `224x224x3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// Batch, channel, height, width.
    #[default]
    Nchw,
    /// Batch, height, width, channel.
    Nhwc,
}

impl Layout {
    /// The permutation that converts a tensor stored in `self` to `target`.
    ///
    /// Identity if the layouts already agree.
    pub fn permutation_to(self, target: Layout) -> Permutation {
        match (self, target) {
            (Layout::Nchw, Layout::Nchw) | (Layout::Nhwc, Layout::Nhwc) => Permutation::identity(4),
            // NCHW -> NHWC: output axis i takes input axis perm[i].
            (Layout::Nchw, Layout::Nhwc) => Permutation::new(vec![0, 2, 3, 1]).expect("valid"),
            (Layout::Nhwc, Layout::Nchw) => Permutation::new(vec![0, 3, 1, 2]).expect("valid"),
        }
    }

    /// The axis holding the channel dimension in this layout.
    pub fn channel_axis(self) -> usize {
        match self {
            Layout::Nchw => 1,
            Layout::Nhwc => 3,
        }
    }

    /// The axes holding the spatial (height, width) dimensions.
    pub fn spatial_axes(self) -> (usize, usize) {
        match self {
            Layout::Nchw => (2, 3),
            Layout::Nhwc => (1, 2),
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layout::Nchw => write!(f, "NCHW"),
            Layout::Nhwc => write!(f, "NHWC"),
        }
    }
}

/// A permutation of tensor axes.
///
/// `perm[i]` is the *source* axis that output axis `i` reads from, matching
/// the convention of `numpy.transpose` and ONNX `Transpose`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Permutation {
    perm: Vec<usize>,
}

impl Permutation {
    /// Creates a permutation, validating that it is a bijection on `0..n`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidSlice`] if `perm` repeats or skips axes.
    pub fn new(perm: Vec<usize>) -> Result<Self, TensorError> {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in &perm {
            if p >= n || seen[p] {
                return Err(TensorError::InvalidSlice {
                    reason: format!("{perm:?} is not a permutation of 0..{n}"),
                });
            }
            seen[p] = true;
        }
        Ok(Permutation { perm })
    }

    /// The identity permutation on `n` axes.
    pub fn identity(n: usize) -> Self {
        Permutation {
            perm: (0..n).collect(),
        }
    }

    /// The permutation that swaps axes `a` and `b` on `n` axes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if either axis is `>= n`.
    pub fn swap(n: usize, a: usize, b: usize) -> Result<Self, TensorError> {
        if a >= n {
            return Err(TensorError::AxisOutOfRange { axis: a, rank: n });
        }
        if b >= n {
            return Err(TensorError::AxisOutOfRange { axis: b, rank: n });
        }
        let mut perm: Vec<usize> = (0..n).collect();
        perm.swap(a, b);
        Ok(Permutation { perm })
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.perm.len()
    }

    /// The axis mapping (`output axis i <- input axis self.as_slice()[i]`).
    pub fn as_slice(&self) -> &[usize] {
        &self.perm
    }

    /// Whether this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.perm.iter().enumerate().all(|(i, &p)| i == p)
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.perm.len()];
        for (i, &p) in self.perm.iter().enumerate() {
            inv[p] = i;
        }
        Permutation { perm: inv }
    }

    /// Composes `self` after `other`: applying the result is equivalent to
    /// applying `other` first, then `self`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the ranks differ.
    pub fn compose(&self, other: &Permutation) -> Result<Permutation, TensorError> {
        if self.rank() != other.rank() {
            return Err(TensorError::ShapeMismatch {
                reason: format!(
                    "cannot compose rank-{} with rank-{} permutation",
                    self.rank(),
                    other.rank()
                ),
            });
        }
        // (self ∘ other)[i] = other[self[i]]: output axis i of the composite
        // reads the axis that `other` reads for the axis `self` reads.
        let perm = self.perm.iter().map(|&p| other.perm[p]).collect();
        Ok(Permutation { perm })
    }

    /// Applies the permutation to a list of per-axis values (e.g. dims).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `values.len() != rank`.
    pub fn apply<T: Copy>(&self, values: &[T]) -> Result<Vec<T>, TensorError> {
        if values.len() != self.rank() {
            return Err(TensorError::ShapeMismatch {
                reason: format!(
                    "permutation rank {} does not match value count {}",
                    self.rank(),
                    values.len()
                ),
            });
        }
        Ok(self.perm.iter().map(|&p| values[p]).collect())
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "perm{:?}", self.perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_roundtrip_permutations_are_inverse() {
        let fwd = Layout::Nchw.permutation_to(Layout::Nhwc);
        let back = Layout::Nhwc.permutation_to(Layout::Nchw);
        assert_eq!(fwd.inverse(), back);
        assert!(
            fwd.compose(&back).unwrap().is_identity() || back.compose(&fwd).unwrap().is_identity()
        );
    }

    #[test]
    fn layout_axes() {
        assert_eq!(Layout::Nchw.channel_axis(), 1);
        assert_eq!(Layout::Nhwc.channel_axis(), 3);
        assert_eq!(Layout::Nchw.spatial_axes(), (2, 3));
        assert_eq!(Layout::Nhwc.spatial_axes(), (1, 2));
    }

    #[test]
    fn nchw_to_nhwc_applies_correctly() {
        let p = Layout::Nchw.permutation_to(Layout::Nhwc);
        let dims = p.apply(&[1usize, 3, 224, 224]).unwrap();
        assert_eq!(dims, vec![1, 224, 224, 3]);
    }

    #[test]
    fn invalid_permutation_rejected() {
        assert!(Permutation::new(vec![0, 0, 1]).is_err());
        assert!(Permutation::new(vec![0, 3]).is_err());
        assert!(Permutation::new(vec![]).unwrap().is_identity());
    }

    #[test]
    fn swap_permutation() {
        let p = Permutation::swap(3, 0, 2).unwrap();
        assert_eq!(p.apply(&['a', 'b', 'c']).unwrap(), vec!['c', 'b', 'a']);
        assert!(Permutation::swap(2, 0, 5).is_err());
    }

    #[test]
    fn inverse_of_inverse_is_identity_composition() {
        let p = Permutation::new(vec![2, 0, 1]).unwrap();
        let inv = p.inverse();
        assert!(p.compose(&inv).unwrap().is_identity());
        assert!(inv.compose(&p).unwrap().is_identity());
    }

    #[test]
    fn compose_rank_mismatch_errors() {
        let a = Permutation::identity(2);
        let b = Permutation::identity(3);
        assert!(a.compose(&b).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Layout::Nchw.to_string(), "NCHW");
        assert_eq!(Permutation::identity(2).to_string(), "perm[0, 1]");
    }
}
