//! Offline stand-in for the `rand` crate.
//!
//! Implements the tiny subset of the 0.8 API this workspace's tests
//! could reasonably want: [`thread_rng`], [`Rng::gen_range`], and
//! [`Rng::gen`] for a few primitive types. The generator is a seeded
//! xorshift64*, so "random" draws are deterministic per process — which
//! is a feature for a reproducible simulation workspace, not a bug.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::ops::Range;

/// Minimal subset of `rand::Rng`.
pub trait Rng {
    /// The next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// A draw of a primitive type over its natural domain
    /// (`f64`/`f32` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

/// Types drawable uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample in `[range.start, range.end)`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Types drawable over a natural default domain.
pub trait Standard: Sized {
    /// One draw.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                let span = (range.end as i128 - range.start as i128).max(1) as u128;
                (range.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                range.start + (range.end - range.start) * unit as $t
            }
        }
        impl Standard for $t {
            fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
                ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as $t
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The per-thread generator handle.
#[derive(Debug, Clone)]
pub struct ThreadRng(u64);

thread_local! {
    static SEED: Cell<u64> = const { Cell::new(0x9E3779B97F4A7C15) };
}

/// Returns a deterministic per-thread generator (seeded once per
/// thread; successive calls continue the same stream).
pub fn thread_rng() -> ThreadRng {
    ThreadRng(SEED.with(|s| {
        let v = s.get();
        s.set(v.wrapping_add(0xA0761D6478BD642F));
        v
    }))
}

impl Rng for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        // xorshift64* — nonzero state guaranteed by the seeding scheme.
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// One draw of a primitive type from the thread generator.
pub fn random<T: Standard>() -> T {
    thread_rng().gen::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respected() {
        let mut rng = thread_rng();
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = thread_rng();
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
