//! Offline stand-in for the `criterion` crate.
//!
//! Implements the surface this workspace's benches use —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], and
//! [`Bencher::iter`] — as a plain wall-clock harness: each benchmark
//! runs a short calibration pass, then a fixed measurement pass, and
//! prints mean time per iteration. No statistics, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group: {}", name.into());
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }
}

/// A named benchmark parameterisation.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the measurement sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        b.report(&id.to_string());
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        b.report(&id.to_string());
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the configured sample count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration keeps caches/allocators out of the numbers.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = self.samples as u64;
    }

    fn report(&self, name: &str) {
        let per_iter = if self.iters == 0 {
            Duration::ZERO
        } else {
            self.total / self.iters as u32
        };
        println!("  {name}: {per_iter:?}/iter over {} iters", self.iters);
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    criterion_group!(smoke, trivial_bench);
    fn trivial_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        g.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 3)
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        smoke();
    }
}
