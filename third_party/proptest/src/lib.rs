//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro over `name in strategy` argument lists,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, numeric-range
//! and tuple strategies, [`collection::vec`], [`sample::select`], and
//! [`sample::subsequence`].
//!
//! Differences from real proptest, by design:
//!
//! * each property runs [`NUM_CASES`] cases from a PRNG seeded by the
//!   test's name — fully deterministic across runs and machines;
//! * there is **no shrinking**: a failing case reports its inputs via
//!   the assertion message only;
//! * strategies are sampled directly (no value trees).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Cases per property. Real proptest defaults to 256; the heavier
/// properties here compile and simulate whole graphs per case, so the
/// stub trades case count for wall-clock.
pub const NUM_CASES: usize = 48;

/// Deterministic splitmix64 PRNG driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from a test name so every property gets its own stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h | 1)
    }

    /// Next raw draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, n)`; `n = 0` yields 0.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// A source of values for one property argument.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u128;
                (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.next_unit() as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E)
);

/// A size bound for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below(self.hi_inclusive - self.lo + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end.saturating_sub(1).max(r.start),
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: (*r.end()).max(*r.start()),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a size range, e.g. `vec(0u8..6, 1..25)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy choosing one element of a vector.
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    /// Uniform choice from a non-empty vector.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from an empty vector");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }

    /// Strategy choosing an in-order subsequence of a vector.
    #[derive(Debug, Clone)]
    pub struct Subsequence<T> {
        options: Vec<T>,
        size: SizeRange,
    }

    /// An in-order subsequence with size drawn from `size` (clamped to
    /// the vector's length).
    pub fn subsequence<T: Clone>(options: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            options,
            size: size.into(),
        }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn sample(&self, rng: &mut TestRng) -> Vec<T> {
            let want = self.size.sample(rng).min(self.options.len());
            // Reservoir-free ordered pick: walk the options, keeping each
            // with the probability that fills the remaining quota.
            let mut out = Vec::with_capacity(want);
            let mut remaining = self.options.len();
            for item in &self.options {
                let need = want - out.len();
                if need == 0 {
                    break;
                }
                if rng.below(remaining) < need {
                    out.push(item.clone());
                }
                remaining -= 1;
            }
            out
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec(..)` etc.).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Strategy, TestRng};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies: `proptest! { #[test] fn f(x in 0u8..4) { .. } }`.
///
/// Each property runs [`NUM_CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a property-test name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn ranges_and_vecs(
            n in 1usize..9,
            xs in prop::collection::vec(-1.0f32..1.0, 0..16),
            pick in prop::sample::select(vec![2u8, 4, 8]),
            sub in prop::sample::subsequence((0..5usize).collect::<Vec<_>>(), 0..=5),
        ) {
            prop_assert!((1..9).contains(&n));
            prop_assert!(xs.len() < 16);
            prop_assert!(xs.iter().all(|x| (-1.0..1.0).contains(x)));
            prop_assert!([2u8, 4, 8].contains(&pick));
            // Subsequences stay in order.
            prop_assert!(sub.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
